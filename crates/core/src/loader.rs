//! Bulk loading from LAS / laz-lite files.
//!
//! The binary path of §3.2: every input file is decoded and transposed
//! into one little-endian binary dump per column; the dumps are appended
//! to the flat table with `COPY BINARY`. File decode + transpose is
//! CPU-bound and embarrassingly parallel, so it fans out over scoped
//! worker threads; the appends are serialised in file order to keep loads
//! deterministic.
//!
//! The CSV path formats the same records to text and parses them back —
//! the cost "most of the systems" pay that the paper's loader avoids.
//!
//! # Fault isolation
//!
//! A survey-scale load ingests tens of thousands of tiles, and some of
//! them *will* be bad. Each file is therefore an isolation unit:
//!
//! * worker panics are caught per file and surface as
//!   [`CoreError::WorkerPanic`] instead of tearing the load down;
//! * under [`LoadPolicy::SkipCorrupt`], transient I/O errors are retried
//!   a bounded number of times, and files that still fail are
//!   **quarantined** — the other files load, and the [`LoadReport`] names
//!   every quarantined file with its error;
//! * under [`LoadPolicy::FailFast`] (the default) the first failing file
//!   in deterministic file order aborts the load with a typed error; the
//!   binary path appends nothing in that case (the CSV comparison path is
//!   row-at-a-time by design, so files before the bad one stay loaded).

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use lidardb_las::read_las_file;

use crate::csv;
use crate::error::CoreError;
use crate::fault::{FaultInjector, FaultKind, FaultStage};
use crate::pointcloud::PointCloud;
use crate::soa::ColumnArrays;

/// Which ingestion path to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMethod {
    /// Decode → binary column dumps → `COPY BINARY` (the paper's loader).
    Binary,
    /// Decode → CSV text → parse → row-at-a-time append (the comparison).
    Csv,
}

/// How the loader reacts to a file that fails to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadPolicy {
    /// Abort on the first bad file (in file order); the table receives
    /// nothing. The right default for reproducible experiments.
    #[default]
    FailFast,
    /// Retry transient I/O errors up to `max_retries` times per file,
    /// then quarantine files that still fail and load the rest. The
    /// right choice for survey-scale ingestion where a bad tile must not
    /// cost the other fifty thousand.
    SkipCorrupt {
        /// Bounded retries per file for transient errors.
        max_retries: u32,
    },
}

/// Outcome of a bulk load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStats {
    /// Files ingested.
    pub files: usize,
    /// Points ingested.
    pub points: usize,
    /// Seconds spent decoding files (includes laz-lite decompression).
    pub decode_seconds: f64,
    /// Seconds spent converting (transpose / CSV format+parse).
    pub convert_seconds: f64,
    /// Seconds spent appending into the table.
    pub append_seconds: f64,
    /// End-to-end wall clock (can be less than the sum of the phases when
    /// the binary path overlaps them across worker threads).
    pub wall_seconds: f64,
}

impl LoadStats {
    /// Points per second of end-to-end wall clock.
    pub fn points_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.points as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Extrapolated wall-clock days to load `n` points at this rate — the
    /// number E1 compares with the paper's "less than one day" for the
    /// 640-billion-point AHN2.
    pub fn projected_days(&self, n: u64) -> f64 {
        n as f64 / self.points_per_second() / 86_400.0
    }
}

/// What happened to one input file.
#[derive(Debug, Clone, PartialEq)]
pub enum FileOutcome {
    /// Decoded and appended to the table.
    Loaded,
    /// Failed after retries and was skipped; the table never saw it.
    Quarantined(String),
}

/// Per-file record in a [`LoadReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct FileReport {
    /// The input file.
    pub path: PathBuf,
    /// Loaded or quarantined.
    pub outcome: FileOutcome,
    /// Transient-error retries this file consumed.
    pub retries: u32,
    /// Points contributed (0 if quarantined).
    pub points: usize,
    /// File size in bytes (0 if unreadable).
    pub bytes: u64,
}

/// Structured outcome of a bulk load: aggregate stats plus a per-file
/// audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Aggregate throughput numbers (files counts only loaded files).
    pub stats: LoadStats,
    /// One entry per input file, in file order.
    pub files: Vec<FileReport>,
}

impl LoadReport {
    /// Paths of every quarantined file, in file order.
    pub fn quarantined(&self) -> Vec<&Path> {
        self.files
            .iter()
            .filter(|f| matches!(f.outcome, FileOutcome::Quarantined(_)))
            .map(|f| f.path.as_path())
            .collect()
    }

    /// Number of files that loaded.
    pub fn loaded(&self) -> usize {
        self.files
            .iter()
            .filter(|f| f.outcome == FileOutcome::Loaded)
            .count()
    }

    /// Total retries consumed across all files.
    pub fn total_retries(&self) -> u32 {
        self.files.iter().map(|f| f.retries).sum()
    }

    /// Total input bytes decoded (loaded files only).
    pub fn bytes_loaded(&self) -> u64 {
        self.files
            .iter()
            .filter(|f| f.outcome == FileOutcome::Loaded)
            .map(|f| f.bytes)
            .sum()
    }

    /// Input megabytes per second of wall clock (loaded files only).
    pub fn mb_per_second(&self) -> f64 {
        if self.stats.wall_seconds > 0.0 {
            self.bytes_loaded() as f64 / 1e6 / self.stats.wall_seconds
        } else {
            0.0
        }
    }
}

/// Bulk loader configuration.
#[derive(Debug, Clone)]
pub struct Loader {
    method: LoadMethod,
    threads: usize,
    policy: LoadPolicy,
    fault: Option<Arc<FaultInjector>>,
}

/// Result of decoding one file: per-column dumps, point count, decode and
/// convert seconds.
type Decoded = (Vec<Vec<u8>>, usize, f64, f64);

impl Loader {
    /// A loader using `method`, one worker per available core, and the
    /// [`LoadPolicy::FailFast`] policy.
    pub fn new(method: LoadMethod) -> Self {
        Loader {
            method,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            policy: LoadPolicy::default(),
            fault: None,
        }
    }

    /// Override the worker count (the CSV path is single-threaded by
    /// design — it models row-at-a-time text ingestion).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Override the error-handling policy.
    pub fn with_policy(mut self, policy: LoadPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attach fault-injection hooks (tests only).
    pub fn with_fault_injector(mut self, fi: Arc<FaultInjector>) -> Self {
        self.fault = Some(fi);
        self
    }

    /// Load every file into `pc`. Files are applied in the given order.
    /// Returns aggregate stats; use [`Loader::load_files_report`] for the
    /// per-file breakdown.
    pub fn load_files(
        &self,
        pc: &mut PointCloud,
        paths: &[PathBuf],
    ) -> Result<LoadStats, CoreError> {
        self.load_files_report(pc, paths).map(|r| r.stats)
    }

    /// Load every file into `pc`, returning the full [`LoadReport`].
    pub fn load_files_report(
        &self,
        pc: &mut PointCloud,
        paths: &[PathBuf],
    ) -> Result<LoadReport, CoreError> {
        let mut lspan = crate::trace::span(crate::trace::SpanKind::Stage(
            crate::metrics::Stage::PersistLoad,
        ));
        let wall = Instant::now();
        let mut report = match self.method {
            LoadMethod::Binary => self.load_binary(pc, paths)?,
            LoadMethod::Csv => self.load_csv_path(pc, paths)?,
        };
        report.stats.wall_seconds = wall.elapsed().as_secs_f64();
        lspan.set_rows(paths.len() as u64, report.stats.points as u64);
        if report
            .files
            .iter()
            .any(|f| matches!(f.outcome, FileOutcome::Quarantined(_)))
        {
            lspan.add_flags(crate::trace::FLAG_FAULT);
        }
        // Bulk ingestion is bytes → table, the same stage taxonomy slot as
        // `open_dir` (see DESIGN.md "Observability").
        let m = crate::metrics::MetricsRegistry::global();
        m.record_stage(
            crate::metrics::Stage::PersistLoad,
            report.stats.points,
            wall.elapsed(),
        );
        m.files_loaded.add(report.stats.files as u64);
        m.points_loaded.add(report.stats.points as u64);
        m.files_quarantined.add(
            report
                .files
                .iter()
                .filter(|f| matches!(f.outcome, FileOutcome::Quarantined(_)))
                .count() as u64,
        );
        Ok(report)
    }

    /// Convenience: load every `.las`/`.lazl` file of a directory in
    /// lexicographic order.
    pub fn load_dir(&self, pc: &mut PointCloud, dir: &Path) -> Result<LoadStats, CoreError> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(lidardb_las::LasError::Io)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                matches!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("las" | "laz" | "lazl")
                )
            })
            .collect();
        paths.sort();
        self.load_files(pc, &paths)
    }

    /// Decode one file with fault hooks, panic containment, and bounded
    /// retries for transient errors.
    fn decode_one(&self, path: &Path) -> (Result<Decoded, CoreError>, u32) {
        let max_retries = match self.policy {
            LoadPolicy::FailFast => 0,
            LoadPolicy::SkipCorrupt { max_retries } => max_retries,
        };
        let name = path.to_string_lossy();
        let mut retries = 0;
        loop {
            let t0 = Instant::now();
            let attempt: std::thread::Result<Result<Decoded, CoreError>> =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Some(kind) =
                        self.fault.as_deref().and_then(|fi| fi.fire(FaultStage::LoadDecode, &name))
                    {
                        match kind {
                            FaultKind::Crash => panic!("injected worker panic for {name}"),
                            FaultKind::IoError => {
                                return Err(lidardb_las::LasError::Io(kind.to_io_error()).into())
                            }
                            _ => {
                                return Err(CoreError::Corrupt(format!(
                                    "injected decode corruption in {name}"
                                )))
                            }
                        }
                    }
                    let (_, records) = read_las_file(path)?;
                    let decode = t0.elapsed().as_secs_f64();
                    let t1 = Instant::now();
                    let dumps = ColumnArrays::from_records(&records).to_dumps();
                    Ok((dumps, records.len(), decode, t1.elapsed().as_secs_f64()))
                }));
            let result = match attempt {
                Ok(r) => r,
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    Err(CoreError::WorkerPanic(format!("{name}: {msg}")))
                }
            };
            match result {
                Err(e) if e.is_transient() && retries < max_retries => retries += 1,
                other => return (other, retries),
            }
        }
    }

    fn load_binary(
        &self,
        pc: &mut PointCloud,
        paths: &[PathBuf],
    ) -> Result<LoadReport, CoreError> {
        // Fan out decode+transpose, keep results indexed by file position.
        type Slot = (Result<Decoded, CoreError>, u32);
        let mut slots: Vec<Option<Slot>> = Vec::new();
        slots.resize_with(paths.len(), || None);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots_mutex = parking_lot::Mutex::new(&mut slots);
        std::thread::scope(|s| {
            for _ in 0..self.threads.min(paths.len().max(1)) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= paths.len() {
                        break;
                    }
                    // decode_one contains panics, so this write always
                    // happens and every slot is filled when the scope ends.
                    let outcome = self.decode_one(&paths[i]);
                    slots_mutex.lock()[i] = Some(outcome);
                });
            }
        });
        let mut stats = LoadStats {
            files: 0,
            points: 0,
            decode_seconds: 0.0,
            convert_seconds: 0.0,
            append_seconds: 0.0,
            wall_seconds: 0.0,
        };
        let mut files = Vec::with_capacity(paths.len());
        // First pass: under FailFast any failure aborts before the table
        // is touched, keeping "error ⇒ table unchanged".
        if self.policy == LoadPolicy::FailFast {
            if let Some(pos) = slots
                .iter()
                .position(|s| matches!(s, Some((Err(_), _))))
            {
                let (result, _) = slots[pos].take().expect("position just matched");
                return Err(CoreError::FileLoad {
                    path: paths[pos].clone(),
                    source: Box::new(result.expect_err("position matched an Err slot")),
                });
            }
        }
        for (i, slot) in slots.into_iter().enumerate() {
            let (result, retries) = slot.expect("worker scope filled every slot");
            let bytes = std::fs::metadata(&paths[i]).map(|m| m.len()).unwrap_or(0);
            match result {
                Ok((dumps, n, decode, convert)) => {
                    stats.decode_seconds += decode;
                    stats.convert_seconds += convert;
                    let t0 = Instant::now();
                    pc.append_dumps(&dumps)?;
                    stats.append_seconds += t0.elapsed().as_secs_f64();
                    stats.points += n;
                    stats.files += 1;
                    files.push(FileReport {
                        path: paths[i].clone(),
                        outcome: FileOutcome::Loaded,
                        retries,
                        points: n,
                        bytes,
                    });
                }
                Err(e) => files.push(FileReport {
                    path: paths[i].clone(),
                    outcome: FileOutcome::Quarantined(e.to_string()),
                    retries,
                    points: 0,
                    bytes,
                }),
            }
        }
        Ok(LoadReport { stats, files })
    }

    fn load_csv_path(
        &self,
        pc: &mut PointCloud,
        paths: &[PathBuf],
    ) -> Result<LoadReport, CoreError> {
        let mut stats = LoadStats {
            files: 0,
            points: 0,
            decode_seconds: 0.0,
            convert_seconds: 0.0,
            append_seconds: 0.0,
            wall_seconds: 0.0,
        };
        let mut files = Vec::with_capacity(paths.len());
        for path in paths {
            let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            let (result, retries) = self.decode_csv_one(pc, path, &mut stats);
            match result {
                Ok(points) => {
                    stats.files += 1;
                    stats.points += points;
                    files.push(FileReport {
                        path: path.clone(),
                        outcome: FileOutcome::Loaded,
                        retries,
                        points,
                        bytes,
                    });
                }
                Err(e) if self.policy == LoadPolicy::FailFast => {
                    return Err(CoreError::FileLoad {
                        path: path.clone(),
                        source: Box::new(e),
                    })
                }
                Err(e) => files.push(FileReport {
                    path: path.clone(),
                    outcome: FileOutcome::Quarantined(e.to_string()),
                    retries,
                    points: 0,
                    bytes,
                }),
            }
        }
        Ok(LoadReport { stats, files })
    }

    /// One file through the CSV path, with the same retry policy as the
    /// binary path.
    fn decode_csv_one(
        &self,
        pc: &mut PointCloud,
        path: &Path,
        stats: &mut LoadStats,
    ) -> (Result<usize, CoreError>, u32) {
        let max_retries = match self.policy {
            LoadPolicy::FailFast => 0,
            LoadPolicy::SkipCorrupt { max_retries } => max_retries,
        };
        let name = path.to_string_lossy();
        let mut retries = 0;
        loop {
            let result: Result<usize, CoreError> = (|| {
                if let Some(kind) =
                    self.fault.as_deref().and_then(|fi| fi.fire(FaultStage::LoadDecode, &name))
                {
                    return Err(match kind {
                        FaultKind::IoError => lidardb_las::LasError::Io(kind.to_io_error()).into(),
                        _ => CoreError::Corrupt(format!("injected decode corruption in {name}")),
                    });
                }
                let t0 = Instant::now();
                let (_, records) = read_las_file(path)?;
                stats.decode_seconds += t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                let text = csv::records_to_csv(&records);
                stats.convert_seconds += t1.elapsed().as_secs_f64();
                let t2 = Instant::now();
                let n = csv::load_csv(pc, &text)?;
                stats.append_seconds += t2.elapsed().as_secs_f64();
                Ok(n)
            })();
            match result {
                Err(e) if e.is_transient() && retries < max_retries => retries += 1,
                other => return (other, retries),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidardb_las::{write_las_file, Compression, LasHeader, PointRecord};

    fn make_files(dir: &Path, files: usize, per_file: usize) -> Vec<PathBuf> {
        std::fs::create_dir_all(dir).unwrap();
        let mut paths = Vec::new();
        for f in 0..files {
            let recs: Vec<PointRecord> = (0..per_file)
                .map(|i| PointRecord {
                    x: (f * per_file + i) as f64 * 0.1,
                    y: 50.0,
                    z: 2.0,
                    classification: 2,
                    gps_time: (f * per_file + i) as f64,
                    ..Default::default()
                })
                .collect();
            let path = dir.join(format!("t{f:02}.las"));
            write_las_file(
                &path,
                LasHeader::builder().compression(Compression::None).build(),
                &recs,
            )
            .unwrap();
            paths.push(path);
        }
        paths
    }

    #[test]
    fn binary_and_csv_paths_load_identical_tables() {
        let dir = std::env::temp_dir().join("lidardb_loader_test_a");
        let paths = make_files(&dir, 4, 500);
        let mut a = PointCloud::new();
        let sa = Loader::new(LoadMethod::Binary)
            .load_files(&mut a, &paths)
            .unwrap();
        let mut b = PointCloud::new();
        let sb = Loader::new(LoadMethod::Csv)
            .load_files(&mut b, &paths)
            .unwrap();
        assert_eq!(sa.points, 2000);
        assert_eq!(sb.points, 2000);
        assert_eq!(a.num_points(), b.num_points());
        // Spot-check equality (CSV roundtrips exactly for these values).
        for row in [0usize, 999, 1999] {
            assert_eq!(a.record(row), b.record(row), "row {row}");
        }
        // Deterministic file order: gps_time monotone across files.
        let gps = a.f64_column("gps_time").unwrap();
        assert!(gps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn parallel_matches_single_threaded() {
        let dir = std::env::temp_dir().join("lidardb_loader_test_b");
        let paths = make_files(&dir, 8, 300);
        let mut a = PointCloud::new();
        Loader::new(LoadMethod::Binary)
            .with_threads(1)
            .load_files(&mut a, &paths)
            .unwrap();
        let mut b = PointCloud::new();
        Loader::new(LoadMethod::Binary)
            .with_threads(8)
            .load_files(&mut b, &paths)
            .unwrap();
        assert_eq!(a.num_points(), b.num_points());
        let ga = a.f64_column("gps_time").unwrap();
        let gb = b.f64_column("gps_time").unwrap();
        assert_eq!(ga, gb, "file order preserved under parallel decode");
    }

    #[test]
    fn load_dir_filters_and_sorts() {
        let dir = std::env::temp_dir().join("lidardb_loader_test_c");
        let _ = std::fs::remove_dir_all(&dir);
        make_files(&dir, 3, 100);
        std::fs::write(dir.join("README.txt"), "not a las file").unwrap();
        let mut pc = PointCloud::new();
        let stats = Loader::new(LoadMethod::Binary)
            .load_dir(&mut pc, &dir)
            .unwrap();
        assert_eq!(stats.files, 3);
        assert_eq!(pc.num_points(), 300);
    }

    #[test]
    fn stats_are_plausible() {
        let dir = std::env::temp_dir().join("lidardb_loader_test_d");
        let paths = make_files(&dir, 2, 2000);
        let mut pc = PointCloud::new();
        let s = Loader::new(LoadMethod::Binary)
            .load_files(&mut pc, &paths)
            .unwrap();
        assert!(s.points_per_second() > 0.0);
        assert!(s.wall_seconds > 0.0);
        let days = s.projected_days(640_000_000_000);
        assert!(days.is_finite() && days > 0.0);
    }

    #[test]
    fn missing_file_errors() {
        let mut pc = PointCloud::new();
        let err = Loader::new(LoadMethod::Binary)
            .load_files(&mut pc, &[PathBuf::from("/nonexistent/file.las")])
            .unwrap_err();
        match &err {
            CoreError::FileLoad { path, source } => {
                assert!(path.ends_with("file.las"));
                assert!(matches!(**source, CoreError::Las(_)));
            }
            other => panic!("expected FileLoad, got {other}"),
        }
    }

    #[test]
    fn fail_fast_aborts_on_first_bad_file_in_order() {
        let dir = std::env::temp_dir().join("lidardb_loader_test_ff");
        let _ = std::fs::remove_dir_all(&dir);
        let mut paths = make_files(&dir, 5, 50);
        // Corrupt file index 1 (garbage) and index 3 (truncated).
        std::fs::write(&paths[1], b"not a las file at all").unwrap();
        let bytes = std::fs::read(&paths[3]).unwrap();
        std::fs::write(&paths[3], &bytes[..40]).unwrap();
        let mut pc = PointCloud::new();
        let err = Loader::new(LoadMethod::Binary)
            .load_files(&mut pc, &paths)
            .unwrap_err();
        // The typed error names the *first* bad file in input order.
        match &err {
            CoreError::FileLoad { path, .. } => assert_eq!(path, &paths[1]),
            other => panic!("expected FileLoad, got {other}"),
        }
        assert_eq!(pc.num_points(), 0, "binary FailFast appends nothing on error");
        // The CSV comparison path also fails fast (it appends
        // row-at-a-time, so files before the bad one stay loaded).
        let mut pc_csv = PointCloud::new();
        let err = Loader::new(LoadMethod::Csv)
            .load_files(&mut pc_csv, &paths)
            .unwrap_err();
        match &err {
            CoreError::FileLoad { path, .. } => assert_eq!(path, &paths[1]),
            other => panic!("expected FileLoad, got {other}"),
        }
        // Drop the corrupt files and confirm the batch loads clean.
        paths.remove(3);
        paths.remove(1);
        Loader::new(LoadMethod::Binary)
            .load_files(&mut pc, &paths)
            .unwrap();
        assert_eq!(pc.num_points(), 150);
    }

    #[test]
    fn skip_corrupt_quarantines_and_loads_the_rest() {
        let dir = std::env::temp_dir().join("lidardb_loader_test_sc");
        let _ = std::fs::remove_dir_all(&dir);
        let paths = make_files(&dir, 6, 80);
        std::fs::write(&paths[2], b"garbage").unwrap();
        let mut pc = PointCloud::new();
        let report = Loader::new(LoadMethod::Binary)
            .with_policy(LoadPolicy::SkipCorrupt { max_retries: 2 })
            .load_files_report(&mut pc, &paths)
            .unwrap();
        assert_eq!(pc.num_points(), 5 * 80);
        assert_eq!(report.loaded(), 5);
        assert_eq!(report.quarantined(), vec![paths[2].as_path()]);
        assert_eq!(report.stats.files, 5);
        assert_eq!(report.stats.points, 400);
        assert!(report.bytes_loaded() > 0);
        let q = &report.files[2];
        assert!(matches!(&q.outcome, FileOutcome::Quarantined(msg) if !msg.is_empty()));
        assert_eq!(q.retries, 0, "structural corruption is not retried");
        // File order of the loaded remainder is preserved.
        let gps = pc.f64_column("gps_time").unwrap();
        assert!(gps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn transient_errors_are_retried_with_bound() {
        let dir = std::env::temp_dir().join("lidardb_loader_test_retry");
        let _ = std::fs::remove_dir_all(&dir);
        let paths = make_files(&dir, 3, 40);
        // Two transient failures on file 1, then it succeeds.
        let fi = Arc::new(FaultInjector::new());
        fi.inject_n(FaultStage::LoadDecode, Some("t01"), FaultKind::IoError, 0, 2);
        let mut pc = PointCloud::new();
        let report = Loader::new(LoadMethod::Binary)
            .with_policy(LoadPolicy::SkipCorrupt { max_retries: 3 })
            .with_fault_injector(Arc::clone(&fi))
            .load_files_report(&mut pc, &paths)
            .unwrap();
        assert_eq!(pc.num_points(), 120, "all files loaded after retries");
        assert_eq!(report.files[1].retries, 2);
        assert_eq!(report.files[1].outcome, FileOutcome::Loaded);
        // More transient failures than the budget → quarantined.
        let fi = Arc::new(FaultInjector::new());
        fi.inject_n(FaultStage::LoadDecode, Some("t00"), FaultKind::IoError, 0, 99);
        let mut pc = PointCloud::new();
        let report = Loader::new(LoadMethod::Binary)
            .with_policy(LoadPolicy::SkipCorrupt { max_retries: 2 })
            .with_fault_injector(fi)
            .load_files_report(&mut pc, &paths)
            .unwrap();
        assert_eq!(report.files[0].retries, 2, "retry budget respected");
        assert!(matches!(report.files[0].outcome, FileOutcome::Quarantined(_)));
        assert_eq!(pc.num_points(), 80);
    }

    #[test]
    fn worker_panic_becomes_typed_error() {
        let dir = std::env::temp_dir().join("lidardb_loader_test_panic");
        let _ = std::fs::remove_dir_all(&dir);
        let paths = make_files(&dir, 4, 30);
        let fi = Arc::new(FaultInjector::new());
        fi.inject(FaultStage::LoadDecode, Some("t02"), FaultKind::Crash);
        // FailFast: the panic surfaces as WorkerPanic naming the file.
        let mut pc = PointCloud::new();
        let err = Loader::new(LoadMethod::Binary)
            .with_fault_injector(Arc::clone(&fi))
            .load_files(&mut pc, &paths)
            .unwrap_err();
        match &err {
            CoreError::FileLoad { path, source } => {
                assert!(path.ends_with("t02.las"), "{}", path.display());
                assert!(matches!(**source, CoreError::WorkerPanic(_)), "{source}");
            }
            other => panic!("expected FileLoad(WorkerPanic), got {other}"),
        }
        assert_eq!(pc.num_points(), 0);
        // SkipCorrupt: the panicking file is quarantined, others load.
        let fi = Arc::new(FaultInjector::new());
        fi.inject(FaultStage::LoadDecode, Some("t02"), FaultKind::Crash);
        let report = Loader::new(LoadMethod::Binary)
            .with_policy(LoadPolicy::SkipCorrupt { max_retries: 1 })
            .with_fault_injector(fi)
            .load_files_report(&mut pc, &paths)
            .unwrap();
        assert_eq!(pc.num_points(), 90);
        assert_eq!(report.quarantined().len(), 1);
        assert!(matches!(
            &report.files[2].outcome,
            FileOutcome::Quarantined(msg) if msg.contains("panicked")
        ));
    }
}
