//! The flat point-cloud table with its lazy imprint cache.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use lidardb_imprints::ColumnImprints;
use lidardb_las::{point_schema, PointRecord};
use lidardb_storage::{Column, FlatTable};

use crate::error::CoreError;
use crate::soa::ColumnArrays;

/// A point cloud stored as a flat 26-column table (§3.1 of the paper).
///
/// Imprint indexes are built lazily: *"Its creation is triggered when it
/// encounters a range query for the first time"* (§3.2). The cache is
/// internally synchronised, so a `&PointCloud` can serve queries from
/// several threads.
pub struct PointCloud {
    table: FlatTable,
    imprints: RwLock<HashMap<String, Arc<ColumnImprints>>>,
    fault: Option<Arc<crate::fault::FaultInjector>>,
    parallelism: crate::exec::Parallelism,
    tracing: std::sync::atomic::AtomicBool,
    /// Default statement timeout in milliseconds; 0 = none.
    default_deadline_ms: std::sync::atomic::AtomicU64,
    /// Default per-query memory budget in bytes; 0 = unlimited.
    mem_budget_bytes: std::sync::atomic::AtomicU64,
    /// Admission controller queries on this cloud pass through; `None`
    /// falls back to the process-wide controller (unlimited by default).
    admission: Option<Arc<crate::governor::AdmissionController>>,
}

impl std::fmt::Debug for PointCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PointCloud")
            .field("points", &self.num_points())
            .field("indexed_columns", &self.imprints.read().len())
            .finish()
    }
}

impl Default for PointCloud {
    fn default() -> Self {
        Self::new()
    }
}

impl PointCloud {
    /// An empty point cloud.
    pub fn new() -> Self {
        PointCloud {
            table: FlatTable::new(point_schema()),
            imprints: RwLock::new(HashMap::new()),
            fault: None,
            parallelism: crate::exec::Parallelism::default(),
            tracing: std::sync::atomic::AtomicBool::new(false),
            default_deadline_ms: std::sync::atomic::AtomicU64::new(0),
            mem_budget_bytes: std::sync::atomic::AtomicU64::new(0),
            admission: None,
        }
    }

    /// Set the default statement timeout applied to every query on this
    /// cloud (`None` clears it). Sub-millisecond durations round up to
    /// 1 ms — a zero would mean "no deadline" in the atomic encoding.
    pub fn set_default_deadline(&self, d: Option<std::time::Duration>) {
        let ms = d.map_or(0, |d| (d.as_millis() as u64).max(1));
        self.default_deadline_ms
            .store(ms, std::sync::atomic::Ordering::Relaxed);
    }

    /// The cloud's default statement timeout, if any.
    pub fn default_deadline(&self) -> Option<std::time::Duration> {
        match self
            .default_deadline_ms
            .load(std::sync::atomic::Ordering::Relaxed)
        {
            0 => None,
            ms => Some(std::time::Duration::from_millis(ms)),
        }
    }

    /// Set the default per-query memory budget in bytes (`None` = off).
    /// Queries whose materialised selections would exceed it are
    /// cancelled with [`crate::CancelReason::MemBudget`] instead of
    /// allocating unboundedly.
    pub fn set_mem_budget(&self, bytes: Option<u64>) {
        self.mem_budget_bytes
            .store(bytes.map_or(0, |b| b.max(1)), std::sync::atomic::Ordering::Relaxed);
    }

    /// The cloud's default per-query memory budget, if any.
    pub fn mem_budget(&self) -> Option<u64> {
        match self.mem_budget_bytes.load(std::sync::atomic::Ordering::Relaxed) {
            0 => None,
            b => Some(b),
        }
    }

    /// Route queries on this cloud through an explicit admission
    /// controller (overload shedding; see [`crate::governor`]).
    pub fn set_admission(&mut self, adm: Arc<crate::governor::AdmissionController>) {
        self.admission = Some(adm);
    }

    /// The admission controller queries pass through: the instance one if
    /// set, else the process-wide default (unlimited out of the box).
    pub(crate) fn admission(&self) -> &crate::governor::AdmissionController {
        match &self.admission {
            Some(a) => a,
            None => crate::governor::AdmissionController::global(),
        }
    }

    /// Cooperatively cancel a running query by id (from
    /// [`Self::running_queries`] or SQL `SHOW QUERIES`). Returns whether
    /// the id named a live query; the query itself unwinds with
    /// [`CoreError::Cancelled`] at its next checkpoint.
    pub fn kill_query(&self, id: crate::governor::QueryId) -> bool {
        crate::governor::QueryRegistry::global().kill(id)
    }

    /// Snapshot of queries currently in flight (process-wide registry,
    /// like [`Self::metrics`]).
    pub fn running_queries(&self) -> Vec<crate::governor::QueryInfo> {
        crate::governor::QueryRegistry::global().list()
    }

    /// The cloud's fault injector, if one is attached (query-checkpoint
    /// fault rules fire through the governance context).
    pub(crate) fn fault_injector(&self) -> Option<Arc<crate::fault::FaultInjector>> {
        self.fault.clone()
    }

    /// Turn per-query span tracing on or off for queries against this
    /// cloud (`&self`: the flag is atomic, so a shared cloud can be
    /// toggled mid-serving). Process-wide and per-thread activation live
    /// in [`crate::trace`].
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether this cloud's per-instance tracing toggle is on.
    pub fn tracing(&self) -> bool {
        self.tracing.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The K worst traced queries by wall time, worst first, with their
    /// span trees. Queries enter the log only while traced; the log is
    /// process-wide (shared across clouds, like [`Self::metrics`]).
    pub fn slow_queries(&self) -> Vec<crate::trace::SlowQuery> {
        crate::trace::SlowQueryLog::global().worst()
    }

    /// Attach fault-injection hooks for the imprint-build path (tests
    /// only; see [`crate::fault`]).
    pub fn set_fault_injector(&mut self, fi: Arc<crate::fault::FaultInjector>) {
        self.fault = Some(fi);
    }

    /// Set the worker-count policy queries on this cloud use by default
    /// (per-call overrides via `select_query_with` / `aggregate_with`).
    pub fn set_parallelism(&mut self, p: crate::exec::Parallelism) {
        self.parallelism = p;
    }

    /// The cloud's default worker-count policy.
    pub fn parallelism(&self) -> crate::exec::Parallelism {
        self.parallelism
    }

    /// The process-wide metrics registry the engine records into —
    /// programmatic access to cumulative counters, stage timings and the
    /// JSON snapshot ([`crate::metrics::MetricsRegistry::snapshot_json`]).
    pub fn metrics(&self) -> &'static crate::metrics::MetricsRegistry {
        crate::metrics::MetricsRegistry::global()
    }

    /// Number of points (rows).
    pub fn num_points(&self) -> usize {
        self.table.num_rows()
    }

    /// Raw column payload bytes (storage accounting, E2).
    pub fn data_bytes(&self) -> usize {
        self.table.byte_len()
    }

    /// Total bytes of all imprint indexes built so far (E2).
    pub fn index_bytes(&self) -> usize {
        self.imprints.read().values().map(|i| i.byte_size()).sum()
    }

    /// The underlying flat table.
    pub fn table(&self) -> &FlatTable {
        &self.table
    }

    /// Append a batch of decoded records (transposes, then bulk-appends).
    ///
    /// Invalidates the imprint cache — appending changes cacheline
    /// contents, and the paper's workload is bulk-load-then-query.
    pub fn append_records(&mut self, records: &[PointRecord]) -> Result<usize, CoreError> {
        let soa = ColumnArrays::from_records(records);
        let dumps = soa.to_dumps();
        self.append_dumps(&dumps)
    }

    /// `COPY BINARY`: append one little-endian dump per column.
    pub fn append_dumps(&mut self, dumps: &[Vec<u8>]) -> Result<usize, CoreError> {
        let refs: Vec<&[u8]> = dumps.iter().map(Vec::as_slice).collect();
        let n = self.table.copy_binary(&refs)?;
        self.imprints.get_mut().clear();
        let m = crate::metrics::MetricsRegistry::global();
        m.table_rows.set(self.table.num_rows() as u64);
        m.indexed_columns.set(0);
        Ok(n)
    }

    /// Append one row the slow way (CSV path).
    pub(crate) fn push_row_values(&mut self, row: &[lidardb_storage::Value]) {
        self.table.push_row(row);
        self.imprints.get_mut().clear();
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column, CoreError> {
        Ok(self.table.column_by_name(name)?)
    }

    /// Typed view of an `f64` column (x, y, z, gps_time).
    pub fn f64_column(&self, name: &str) -> Result<&[f64], CoreError> {
        Ok(self.column(name)?.as_slice::<f64>()?)
    }

    /// The imprint index of a column, building it on first use.
    pub fn imprints_for(&self, name: &str) -> Result<Arc<ColumnImprints>, CoreError> {
        self.imprints_for_timed(name).map(|(imp, _)| imp)
    }

    /// [`imprints_for`](Self::imprints_for), also reporting the wall-clock
    /// spent building the index — zero on a cache hit. The query engine
    /// uses this to keep `Explain.t_imprints` probe-only.
    pub fn imprints_for_timed(&self, name: &str) -> Result<(Arc<ColumnImprints>, f64), CoreError> {
        let metrics = crate::metrics::MetricsRegistry::global();
        if let Some(imp) = self.imprints.read().get(name) {
            metrics.imprint_cache_hits.inc();
            return Ok((Arc::clone(imp), 0.0));
        }
        metrics.imprint_cache_misses.inc();
        // Build outside any lock (cheap to race: both builds are identical
        // and the second insert wins harmlessly).
        let mut bspan = crate::trace::span(crate::trace::SpanKind::Stage(
            crate::metrics::Stage::ImprintBuild,
        ));
        let t0 = std::time::Instant::now();
        let col = self.table.column_by_name(name)?;
        if let Some(fi) = &self.fault {
            if let Some(kind) = fi.fire(crate::fault::FaultStage::ImprintBuild, name) {
                bspan.add_flags(crate::trace::FLAG_FAULT);
                return Err(crate::error::CoreError::Corrupt(format!(
                    "injected imprint-build failure on column {name}: {kind:?}"
                )));
            }
        }
        let imp = Arc::new(ColumnImprints::build(col)?);
        let built = t0.elapsed();
        bspan.set_rows(imp.len() as u64, imp.len() as u64);
        drop(bspan);
        // The authoritative imprint_build recording site: every lazy build
        // lands here, whether triggered by a query or a direct call.
        metrics.record_stage(crate::metrics::Stage::ImprintBuild, imp.len(), built);
        let mut cache = self.imprints.write();
        cache.entry(name.to_string()).or_insert_with(|| Arc::clone(&imp));
        metrics.indexed_columns.set(cache.len() as u64);
        Ok((imp, built.as_secs_f64()))
    }

    /// Whether a column already has an imprint index (observability for
    /// the lazy-build tests and the EXPLAIN output).
    pub fn has_imprints(&self, name: &str) -> bool {
        self.imprints.read().contains_key(name)
    }

    /// Per-column imprint statistics for every index built so far.
    pub fn imprint_stats(&self) -> Vec<(String, lidardb_imprints::ImprintStats)> {
        let mut out: Vec<(String, _)> = self
            .imprints
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.stats()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Materialise one record back from the table (cold path: result
    /// sets, tests, rendering).
    pub fn record(&self, row: usize) -> Option<PointRecord> {
        let vals = self.table.row(row)?;
        let f = |i: usize| vals[i].as_f64();
        Some(PointRecord {
            x: f(0),
            y: f(1),
            z: f(2),
            intensity: f(3) as u16,
            return_number: f(4) as u8,
            number_of_returns: f(5) as u8,
            scan_direction: f(6) as u8,
            edge_of_flight_line: f(7) as u8,
            classification: f(8) as u8,
            synthetic: f(9) as u8,
            key_point: f(10) as u8,
            withheld: f(11) as u8,
            scan_angle_rank: f(12) as i8,
            user_data: f(13) as u8,
            point_source_id: f(14) as u16,
            gps_time: f(15),
            red: f(16) as u16,
            green: f(17) as u16,
            blue: f(18) as u16,
            wave_packet_index: f(19) as u8,
            wave_offset: f(20) as u64,
            wave_size: f(21) as u32,
            wave_return_loc: f(22) as f32,
            wave_xt: f(23) as f32,
            wave_yt: f(24) as f32,
            wave_zt: f(25) as f32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records(n: usize) -> Vec<PointRecord> {
        (0..n)
            .map(|i| PointRecord {
                x: i as f64,
                y: (n - i) as f64,
                z: (i % 30) as f64,
                classification: (i % 10) as u8,
                intensity: i as u16,
                gps_time: i as f64 * 0.01,
                ..Default::default()
            })
            .collect()
    }

    #[test]
    fn append_and_read_back() {
        let mut pc = PointCloud::new();
        pc.append_records(&sample_records(1000)).unwrap();
        assert_eq!(pc.num_points(), 1000);
        let xs = pc.f64_column("x").unwrap();
        assert_eq!(xs[7], 7.0);
        let rec = pc.record(7).unwrap();
        assert_eq!(rec.x, 7.0);
        assert_eq!(rec.y, 993.0);
        assert_eq!(rec.classification, 7);
        assert!(pc.record(1000).is_none());
    }

    #[test]
    fn imprints_are_lazy_and_cached() {
        let mut pc = PointCloud::new();
        pc.append_records(&sample_records(5000)).unwrap();
        assert!(!pc.has_imprints("x"));
        let a = pc.imprints_for("x").unwrap();
        assert!(pc.has_imprints("x"));
        let b = pc.imprints_for("x").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call hits the cache");
        assert!(!pc.has_imprints("y"), "only the probed column is indexed");
    }

    #[test]
    fn append_invalidates_imprints() {
        let mut pc = PointCloud::new();
        pc.append_records(&sample_records(100)).unwrap();
        pc.imprints_for("x").unwrap();
        assert!(pc.has_imprints("x"));
        pc.append_records(&sample_records(100)).unwrap();
        assert!(!pc.has_imprints("x"), "cache cleared by append");
        let imp = pc.imprints_for("x").unwrap();
        assert_eq!(imp.len(), 200);
    }

    #[test]
    fn storage_accounting() {
        let mut pc = PointCloud::new();
        pc.append_records(&sample_records(10_000)).unwrap();
        assert_eq!(pc.index_bytes(), 0);
        pc.imprints_for("x").unwrap();
        pc.imprints_for("y").unwrap();
        assert!(pc.index_bytes() > 0);
        let stats = pc.imprint_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, "x");
        // Row bytes: 81 bytes of unpacked payload per point in the flat
        // table (the LAS bit-fields each get their own u8 column).
        assert_eq!(pc.data_bytes(), 10_000 * 81);
    }

    #[test]
    fn unknown_column_errors() {
        let pc = PointCloud::new();
        assert!(pc.column("wibble").is_err());
        assert!(pc.imprints_for("wibble").is_err());
        assert!(pc.f64_column("classification").is_err(), "type mismatch");
    }
}
