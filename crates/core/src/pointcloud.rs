//! The flat point-cloud table with its lazy imprint cache and the
//! streaming-ingest state (WAL + visibility watermark).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use lidardb_imprints::ColumnImprints;
use lidardb_las::{point_schema, PointRecord};
use lidardb_storage::{Column, FlatTable};

use crate::error::CoreError;
use crate::soa::ColumnArrays;
use crate::wal::{self, Durability, RecoveryReport, WalWriter};

/// A point cloud stored as a flat 26-column table (§3.1 of the paper).
///
/// Imprint indexes are built lazily: *"Its creation is triggered when it
/// encounters a range query for the first time"* (§3.2). The cache is
/// internally synchronised, so a `&PointCloud` can serve queries from
/// several threads.
pub struct PointCloud {
    table: FlatTable,
    imprints: RwLock<HashMap<String, Arc<ColumnImprints>>>,
    fault: Option<Arc<crate::fault::FaultInjector>>,
    parallelism: crate::exec::Parallelism,
    tracing: std::sync::atomic::AtomicBool,
    /// Default statement timeout in milliseconds; 0 = none.
    default_deadline_ms: std::sync::atomic::AtomicU64,
    /// Default per-query memory budget in bytes; 0 = unlimited.
    mem_budget_bytes: std::sync::atomic::AtomicU64,
    /// Admission controller queries on this cloud pass through; `None`
    /// falls back to the process-wide controller (unlimited by default).
    admission: Option<Arc<crate::governor::AdmissionController>>,
    /// Snapshot-isolation watermark: rows below it are visible to queries.
    /// Plain clouds keep it at `num_points`; ingesting clouds advance it
    /// only when the covering WAL frames are durable, so a reader can
    /// never observe a row that a crash would take back (no ghost rows).
    visible_rows: AtomicUsize,
    /// Read-only degraded mode: set when the device under the WAL or dump
    /// rejects a write (`ENOSPC`/`EIO`). Queries keep serving the durable
    /// snapshot; ingest is refused with a typed
    /// [`CoreError::StorageExhausted`] until an operator frees space and
    /// a successful [`Self::seal`] clears the flag.
    degraded: std::sync::atomic::AtomicBool,
    /// Streaming-ingest state (`None` for plain in-memory clouds).
    ingest: Option<IngestState>,
}

/// Acknowledgement of a (possibly idempotency-tagged) ingest batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestAck {
    /// Rows actually appended (0 when the batch was deduped).
    pub inserted: usize,
    /// Whether the batch — and every batch before it — is fsynced.
    pub durable: bool,
    /// Whether the batch's token was already logged: the rows were NOT
    /// appended again; the original append is acknowledged instead.
    pub deduped: bool,
}

/// Everything an ingesting cloud carries beyond the plain table.
struct IngestState {
    wal: WalWriter,
    /// The dump directory `seal` folds the WAL into.
    dir: PathBuf,
    /// What recovery found when this cloud was opened.
    recovery: RecoveryReport,
}

impl std::fmt::Debug for PointCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PointCloud")
            .field("points", &self.num_points())
            .field("indexed_columns", &self.imprints.read().len())
            .finish()
    }
}

impl Default for PointCloud {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for PointCloud {
    fn drop(&mut self) {
        // A dropped table no longer counts toward the process-wide
        // `degraded_tables` gauge.
        self.set_degraded(false);
    }
}

impl PointCloud {
    /// An empty point cloud.
    pub fn new() -> Self {
        PointCloud {
            table: FlatTable::new(point_schema()),
            imprints: RwLock::new(HashMap::new()),
            fault: None,
            parallelism: crate::exec::Parallelism::default(),
            tracing: std::sync::atomic::AtomicBool::new(false),
            default_deadline_ms: std::sync::atomic::AtomicU64::new(0),
            mem_budget_bytes: std::sync::atomic::AtomicU64::new(0),
            admission: None,
            visible_rows: AtomicUsize::new(0),
            degraded: std::sync::atomic::AtomicBool::new(false),
            ingest: None,
        }
    }

    /// Whether the table is in read-only degraded mode after a storage
    /// exhaustion (`ENOSPC`/`EIO`) failure. Queries still serve the
    /// durable snapshot; ingest is refused.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Flip the degraded flag, keeping the process-wide `degraded_tables`
    /// gauge in step (one inc/dec per actual transition).
    fn set_degraded(&self, on: bool) {
        let was = self.degraded.swap(on, Ordering::AcqRel);
        let g = &crate::metrics::MetricsRegistry::global().degraded_tables;
        match (was, on) {
            (false, true) => g.inc(),
            (true, false) => g.dec(),
            _ => {}
        }
    }

    /// Pass a WAL/persist result through, flipping this table into
    /// degraded mode when it reports storage exhaustion.
    fn note_storage<T>(&self, r: Result<T, CoreError>) -> Result<T, CoreError> {
        if matches!(r, Err(CoreError::StorageExhausted(_))) {
            self.set_degraded(true);
        }
        r
    }

    /// Set the default statement timeout applied to every query on this
    /// cloud (`None` clears it). Sub-millisecond durations round up to
    /// 1 ms — a zero would mean "no deadline" in the atomic encoding.
    pub fn set_default_deadline(&self, d: Option<std::time::Duration>) {
        let ms = d.map_or(0, |d| (d.as_millis() as u64).max(1));
        self.default_deadline_ms
            .store(ms, std::sync::atomic::Ordering::Relaxed);
    }

    /// The cloud's default statement timeout, if any.
    pub fn default_deadline(&self) -> Option<std::time::Duration> {
        match self
            .default_deadline_ms
            .load(std::sync::atomic::Ordering::Relaxed)
        {
            0 => None,
            ms => Some(std::time::Duration::from_millis(ms)),
        }
    }

    /// Set the default per-query memory budget in bytes (`None` = off).
    /// Queries whose materialised selections would exceed it are
    /// cancelled with [`crate::CancelReason::MemBudget`] instead of
    /// allocating unboundedly.
    pub fn set_mem_budget(&self, bytes: Option<u64>) {
        self.mem_budget_bytes
            .store(bytes.map_or(0, |b| b.max(1)), std::sync::atomic::Ordering::Relaxed);
    }

    /// The cloud's default per-query memory budget, if any.
    pub fn mem_budget(&self) -> Option<u64> {
        match self.mem_budget_bytes.load(std::sync::atomic::Ordering::Relaxed) {
            0 => None,
            b => Some(b),
        }
    }

    /// Route queries on this cloud through an explicit admission
    /// controller (overload shedding; see [`crate::governor`]).
    pub fn set_admission(&mut self, adm: Arc<crate::governor::AdmissionController>) {
        self.admission = Some(adm);
    }

    /// The admission controller queries pass through: the instance one if
    /// set, else the process-wide default (unlimited out of the box).
    /// Public so a session layer (the network server) can hold a permit
    /// across the whole statement lifetime — scan *and* result streaming —
    /// instead of only the scan.
    pub fn admission(&self) -> &crate::governor::AdmissionController {
        match &self.admission {
            Some(a) => a,
            None => crate::governor::AdmissionController::global(),
        }
    }

    /// Cooperatively cancel a running query by id (from
    /// [`Self::running_queries`] or SQL `SHOW QUERIES`). Returns whether
    /// the id named a live query; the query itself unwinds with
    /// [`CoreError::Cancelled`] at its next checkpoint.
    pub fn kill_query(&self, id: crate::governor::QueryId) -> bool {
        crate::governor::QueryRegistry::global().kill(id)
    }

    /// Snapshot of queries currently in flight (process-wide registry,
    /// like [`Self::metrics`]).
    pub fn running_queries(&self) -> Vec<crate::governor::QueryInfo> {
        crate::governor::QueryRegistry::global().list()
    }

    /// The cloud's fault injector, if one is attached (query-checkpoint
    /// fault rules fire through the governance context). Public so a
    /// session layer running queries through [`Self::select_query_ctx`]
    /// keeps the same fault surface as the in-process path.
    pub fn fault_injector(&self) -> Option<Arc<crate::fault::FaultInjector>> {
        self.fault.clone()
    }

    /// Turn per-query span tracing on or off for queries against this
    /// cloud (`&self`: the flag is atomic, so a shared cloud can be
    /// toggled mid-serving). Process-wide and per-thread activation live
    /// in [`crate::trace`].
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether this cloud's per-instance tracing toggle is on.
    pub fn tracing(&self) -> bool {
        self.tracing.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The K worst traced queries by wall time, worst first, with their
    /// span trees. Queries enter the log only while traced; the log is
    /// process-wide (shared across clouds, like [`Self::metrics`]).
    pub fn slow_queries(&self) -> Vec<crate::trace::SlowQuery> {
        crate::trace::SlowQueryLog::global().worst()
    }

    /// Attach fault-injection hooks for the imprint-build path (tests
    /// only; see [`crate::fault`]).
    pub fn set_fault_injector(&mut self, fi: Arc<crate::fault::FaultInjector>) {
        self.fault = Some(fi);
    }

    /// Set the worker-count policy queries on this cloud use by default
    /// (per-call overrides via `select_query_with` / `aggregate_with`).
    pub fn set_parallelism(&mut self, p: crate::exec::Parallelism) {
        self.parallelism = p;
    }

    /// The cloud's default worker-count policy.
    pub fn parallelism(&self) -> crate::exec::Parallelism {
        self.parallelism
    }

    /// The process-wide metrics registry the engine records into —
    /// programmatic access to cumulative counters, stage timings and the
    /// JSON snapshot ([`crate::metrics::MetricsRegistry::snapshot_json`]).
    pub fn metrics(&self) -> &'static crate::metrics::MetricsRegistry {
        crate::metrics::MetricsRegistry::global()
    }

    /// Number of points (rows).
    pub fn num_points(&self) -> usize {
        self.table.num_rows()
    }

    /// Raw column payload bytes (storage accounting, E2).
    pub fn data_bytes(&self) -> usize {
        self.table.byte_len()
    }

    /// Total bytes of all imprint indexes built so far (E2).
    pub fn index_bytes(&self) -> usize {
        self.imprints.read().values().map(|i| i.byte_size()).sum()
    }

    /// The underlying flat table.
    pub fn table(&self) -> &FlatTable {
        &self.table
    }

    /// Mutable table access for the in-place SFC reorder at seal time
    /// (`&mut self` guarantees no concurrent query holds a snapshot).
    pub(crate) fn table_mut(&mut self) -> &mut FlatTable {
        &mut self.table
    }

    /// Drop every cached imprint index. Required after a row reorder —
    /// the cached bit-vectors describe the old row order.
    pub(crate) fn clear_imprint_cache(&mut self) {
        self.imprints.get_mut().clear();
    }

    /// Append a batch of decoded records (transposes, then bulk-appends).
    ///
    /// On an ingesting cloud ([`Self::open_ingest`]) the batch is WAL-
    /// logged before it touches the table; on a plain cloud it is applied
    /// directly. Cached imprints are refreshed incrementally either way.
    pub fn append_records(&mut self, records: &[PointRecord]) -> Result<usize, CoreError> {
        let soa = ColumnArrays::from_records(records);
        let dumps = soa.to_dumps();
        self.append_dumps(&dumps)
    }

    /// [`Self::append_records`] returning the durability acknowledgement:
    /// `Ok(true)` means the batch — and every batch before it — is fsynced
    /// in the WAL and visible to queries. Under `Durability::GroupCommit`
    /// an `Ok(false)` batch becomes durable at the next group sync or an
    /// explicit [`Self::flush_wal`]. Plain clouds (no WAL) report `true`.
    pub fn ingest_records(&mut self, records: &[PointRecord]) -> Result<bool, CoreError> {
        self.ingest_records_tagged(records, 0).map(|a| a.durable)
    }

    /// [`Self::ingest_records`] with an idempotency token (0 = none): a
    /// batch whose token the WAL has already logged is acknowledged
    /// without being applied again, so a client retrying an INSERT after
    /// a lost acknowledgement cannot double-insert.
    pub fn ingest_records_tagged(
        &mut self,
        records: &[PointRecord],
        token: u64,
    ) -> Result<IngestAck, CoreError> {
        if self.degraded() {
            return Err(CoreError::StorageExhausted(format!(
                "table is read-only (degraded after a storage failure); \
                 {} rows refused — free space and seal() to recover",
                records.len()
            )));
        }
        if token != 0 {
            if let Some(ing) = &self.ingest {
                if ing.wal.token_seen(token).is_some() {
                    crate::metrics::MetricsRegistry::global()
                        .wal_dedup_hits
                        .inc();
                    return Ok(IngestAck {
                        inserted: 0,
                        durable: true,
                        deduped: true,
                    });
                }
            }
        }
        let soa = ColumnArrays::from_records(records);
        let dumps = soa.to_dumps();
        if self.ingest.is_none() {
            let n = self.append_dumps(&dumps)?;
            return Ok(IngestAck {
                inserted: n,
                durable: true,
                deduped: false,
            });
        }
        let (n, durable) = self.append_dumps_ingest_tagged(&dumps, token)?;
        Ok(IngestAck {
            inserted: n,
            durable,
            deduped: false,
        })
    }

    /// `COPY BINARY`: append one little-endian dump per column.
    pub fn append_dumps(&mut self, dumps: &[Vec<u8>]) -> Result<usize, CoreError> {
        if self.ingest.is_some() {
            return self.append_dumps_ingest_tagged(dumps, 0).map(|(n, _)| n);
        }
        let n = self.apply_dumps(dumps)?;
        self.publish_visible(self.table.num_rows());
        Ok(n)
    }

    /// WAL-first append: the batch is framed and logged, then applied to
    /// the table; the visibility watermark advances only when the WAL
    /// acknowledges durability (always under `Durability::Always`; at
    /// group boundaries under `GroupCommit`; immediately under `None`,
    /// which trades the no-ghost-rows guarantee for speed).
    fn append_dumps_ingest_tagged(
        &mut self,
        dumps: &[Vec<u8>],
        token: u64,
    ) -> Result<(usize, bool), CoreError> {
        let rows = dump_rows(dumps)?;
        if rows == 0 {
            return Ok((0, true));
        }
        let t0 = std::time::Instant::now();
        let append = self
            .ingest
            .as_mut()
            .expect("ingest state checked by caller")
            .wal
            .append_batch(dumps, rows, token);
        let durable = self.note_storage(append)?;
        let n = self.apply_dumps(dumps)?;
        let ing = self.ingest.as_ref().expect("ingest state");
        if durable || ing.wal.durability() == Durability::None {
            self.publish_visible(self.table.num_rows());
        }
        let m = crate::metrics::MetricsRegistry::global();
        m.wal_batches.inc();
        m.record_stage(crate::metrics::Stage::WalAppend, rows, t0.elapsed());
        self.publish_wal_backlog();
        Ok((n, durable))
    }

    /// Mirror the applied-but-not-yet-durable row count into the
    /// `wal_backlog_rows` gauge (last-writer-wins) so the recorder and
    /// `/healthz` can watch flush lag without touching the WAL lock.
    fn publish_wal_backlog(&self) {
        if let Some(ing) = &self.ingest {
            let backlog = self
                .table
                .num_rows()
                .saturating_sub(ing.wal.durable_rows() as usize);
            crate::metrics::MetricsRegistry::global()
                .wal_backlog_rows
                .set(backlog as u64);
        }
    }

    /// Apply dumps to the table and refresh every cached imprint with the
    /// appended tail — incremental `push_line` surgery on the index, not a
    /// wholesale invalidation, so append-while-query keeps its indexes.
    fn apply_dumps(&mut self, dumps: &[Vec<u8>]) -> Result<usize, CoreError> {
        let refs: Vec<&[u8]> = dumps.iter().map(Vec::as_slice).collect();
        let n = self.table.copy_binary(&refs)?;
        let cache = self.imprints.get_mut();
        let mut dead = Vec::new();
        for (name, imp) in cache.iter_mut() {
            match self.table.column_by_name(name) {
                // Clone-on-write: queries holding the old Arc keep probing
                // the pre-append index (consistent with their snapshot).
                Ok(col) if Arc::make_mut(imp).append_column(col).is_ok() => {}
                _ => dead.push(name.clone()),
            }
        }
        for name in dead {
            cache.remove(&name);
        }
        let m = crate::metrics::MetricsRegistry::global();
        m.table_rows.set(self.table.num_rows() as u64);
        m.indexed_columns.set(cache.len() as u64);
        Ok(n)
    }

    /// Append one row the slow way (CSV path; plain clouds only).
    pub(crate) fn push_row_values(&mut self, row: &[lidardb_storage::Value]) {
        debug_assert!(self.ingest.is_none(), "CSV path bypasses the WAL");
        self.table.push_row(row);
        self.imprints.get_mut().clear();
        self.publish_visible(self.table.num_rows());
    }

    /// Rows currently visible to queries. Equals [`Self::num_points`] on
    /// plain clouds; on ingesting clouds it lags `num_points` by the
    /// applied-but-unsynced batches.
    pub fn visible_rows(&self) -> usize {
        self.visible_rows.load(Ordering::Acquire)
    }

    fn publish_visible(&self, rows: usize) {
        self.visible_rows.store(rows, Ordering::Release);
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column, CoreError> {
        Ok(self.table.column_by_name(name)?)
    }

    /// Typed view of an `f64` column (x, y, z, gps_time).
    pub fn f64_column(&self, name: &str) -> Result<&[f64], CoreError> {
        Ok(self.column(name)?.as_slice::<f64>()?)
    }

    /// The imprint index of a column, building it on first use.
    pub fn imprints_for(&self, name: &str) -> Result<Arc<ColumnImprints>, CoreError> {
        self.imprints_for_timed(name).map(|(imp, _)| imp)
    }

    /// [`imprints_for`](Self::imprints_for), also reporting the wall-clock
    /// spent building the index — zero on a cache hit. The query engine
    /// uses this to keep `Explain.t_imprints` probe-only.
    pub fn imprints_for_timed(&self, name: &str) -> Result<(Arc<ColumnImprints>, f64), CoreError> {
        let metrics = crate::metrics::MetricsRegistry::global();
        if let Some(imp) = self.imprints.read().get(name) {
            metrics.imprint_cache_hits.inc();
            return Ok((Arc::clone(imp), 0.0));
        }
        metrics.imprint_cache_misses.inc();
        // Build outside any lock (cheap to race: both builds are identical
        // and the second insert wins harmlessly).
        let mut bspan = crate::trace::span(crate::trace::SpanKind::Stage(
            crate::metrics::Stage::ImprintBuild,
        ));
        let t0 = std::time::Instant::now();
        let col = self.table.column_by_name(name)?;
        if let Some(fi) = &self.fault {
            if let Some(kind) = fi.fire(crate::fault::FaultStage::ImprintBuild, name) {
                bspan.add_flags(crate::trace::FLAG_FAULT);
                return Err(crate::error::CoreError::Corrupt(format!(
                    "injected imprint-build failure on column {name}: {kind:?}"
                )));
            }
        }
        let imp = Arc::new(ColumnImprints::build(col)?);
        let built = t0.elapsed();
        bspan.set_rows(imp.len() as u64, imp.len() as u64);
        drop(bspan);
        // The authoritative imprint_build recording site: every lazy build
        // lands here, whether triggered by a query or a direct call.
        metrics.record_stage(crate::metrics::Stage::ImprintBuild, imp.len(), built);
        let mut cache = self.imprints.write();
        cache.entry(name.to_string()).or_insert_with(|| Arc::clone(&imp));
        metrics.indexed_columns.set(cache.len() as u64);
        Ok((imp, built.as_secs_f64()))
    }

    /// Whether a column already has an imprint index (observability for
    /// the lazy-build tests and the EXPLAIN output).
    pub fn has_imprints(&self, name: &str) -> bool {
        self.imprints.read().contains_key(name)
    }

    /// Per-column imprint statistics for every index built so far.
    pub fn imprint_stats(&self) -> Vec<(String, lidardb_imprints::ImprintStats)> {
        let mut out: Vec<(String, _)> = self
            .imprints
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.stats()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Materialise one record back from the table (cold path: result
    /// sets, tests, rendering).
    pub fn record(&self, row: usize) -> Option<PointRecord> {
        let vals = self.table.row(row)?;
        let f = |i: usize| vals[i].as_f64();
        Some(PointRecord {
            x: f(0),
            y: f(1),
            z: f(2),
            intensity: f(3) as u16,
            return_number: f(4) as u8,
            number_of_returns: f(5) as u8,
            scan_direction: f(6) as u8,
            edge_of_flight_line: f(7) as u8,
            classification: f(8) as u8,
            synthetic: f(9) as u8,
            key_point: f(10) as u8,
            withheld: f(11) as u8,
            scan_angle_rank: f(12) as i8,
            user_data: f(13) as u8,
            point_source_id: f(14) as u16,
            gps_time: f(15),
            red: f(16) as u16,
            green: f(17) as u16,
            blue: f(18) as u16,
            wave_packet_index: f(19) as u8,
            wave_offset: f(20) as u64,
            wave_size: f(21) as u32,
            wave_return_loc: f(22) as f32,
            wave_xt: f(23) as f32,
            wave_yt: f(24) as f32,
            wave_zt: f(25) as f32,
        })
    }

    // ---- streaming ingest (WAL + recovery + seal) ----------------------

    /// Open `dir` for crash-safe streaming ingestion.
    ///
    /// Recovery path: stale commit debris next to `dir` is cleaned (or
    /// rolled back), the last dump is loaded, and the committed prefix of
    /// the sibling WAL (`<dir>.wal`) is replayed on top — frames the dump
    /// already contains are skipped (idempotent replay, covering a `seal`
    /// that crashed between its dump rename and its WAL truncate), and a
    /// torn or corrupt tail is truncated, never mis-replayed. The findings
    /// are reported via [`Self::recovery_report`].
    ///
    /// A missing `dir` starts an empty ingesting cloud (the WAL alone
    /// carries it until the first [`Self::seal`]).
    pub fn open_ingest(
        dir: impl AsRef<Path>,
        durability: Durability,
    ) -> Result<Self, CoreError> {
        Self::open_ingest_with_faults(dir, durability, None)
    }

    /// [`Self::open_ingest`] with fault-injection hooks (tests only).
    pub fn open_ingest_with_faults(
        dir: impl AsRef<Path>,
        durability: Durability,
        fault: Option<Arc<crate::fault::FaultInjector>>,
    ) -> Result<Self, CoreError> {
        let t0 = std::time::Instant::now();
        let dir = dir.as_ref();
        crate::persist::recover_stale_dirs(dir)?;
        let mut pc = if dir.exists() {
            Self::open_dir_with_faults(dir, fault.as_deref())?
        } else {
            Self::new()
        };
        if let Some(fi) = &fault {
            pc.set_fault_injector(Arc::clone(fi));
        }
        let base = pc.num_points();
        let wal_path = wal::wal_path_for(dir);
        let scan = wal::scan_file(&wal_path, fault.as_deref())?;
        let mut report = RecoveryReport {
            base_rows: base,
            wal_frames: scan.frames.len(),
            truncated_bytes: scan.tail_bytes,
            torn_tail: scan.tail_bytes > 0,
            ..Default::default()
        };
        for frame in &scan.frames {
            if frame.end_rows <= base as u64 {
                report.skipped_frames += 1;
                continue;
            }
            let before = pc.num_points();
            pc.apply_dumps(&frame.dumps)?;
            report.replayed_frames += 1;
            report.replayed_rows += pc.num_points() - before;
            if pc.num_points() as u64 != frame.end_rows {
                return Err(CoreError::Corrupt(format!(
                    "wal replay: frame {} claims {} cumulative rows, table has {}",
                    frame.seq,
                    frame.end_rows,
                    pc.num_points()
                )));
            }
        }
        let mut wal = wal::open_writer(
            &wal_path,
            pc.num_points() as u64,
            durability,
            fault.clone(),
        )?;
        if report.replayed_frames == 0 {
            // Every logged frame (if any) is already inside the dump — a
            // seal crashed between the dump rename and the log truncate.
            // Finish that truncate so the frame chain restarts at the
            // dump's base.
            wal.reset(pc.num_points() as u64)?;
        }
        report.total_rows = pc.num_points();
        report.seconds = t0.elapsed().as_secs_f64();
        pc.publish_visible(pc.num_points());
        let m = crate::metrics::MetricsRegistry::global();
        m.wal_recoveries.inc();
        m.record_stage(
            crate::metrics::Stage::Recover,
            report.replayed_rows,
            t0.elapsed(),
        );
        pc.ingest = Some(IngestState {
            wal,
            dir: dir.to_path_buf(),
            recovery: report,
        });
        Ok(pc)
    }

    /// What recovery found when this cloud was opened for ingest; `None`
    /// on plain clouds. Rendered by SQL `SHOW RECOVERY`.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.ingest.as_ref().map(|i| &i.recovery)
    }

    /// The ingest durability policy, `None` for plain clouds.
    pub fn ingest_durability(&self) -> Option<Durability> {
        self.ingest.as_ref().map(|i| i.wal.durability())
    }

    /// Rows covered by fsynced WAL frames (`None` on plain clouds).
    pub fn durable_rows(&self) -> Option<usize> {
        self.ingest.as_ref().map(|i| i.wal.durable_rows() as usize)
    }

    /// Force a WAL group-commit sync: every appended batch becomes durable
    /// and visible. No-op on plain clouds.
    pub fn flush_wal(&mut self) -> Result<(), CoreError> {
        if let Some(ing) = self.ingest.as_mut() {
            let r = ing.wal.sync();
            self.note_storage(r)?;
            self.publish_visible(self.table.num_rows());
            self.publish_wal_backlog();
        }
        Ok(())
    }

    /// Checkpoint: flush the WAL, fold the whole table into a fresh
    /// atomic + durable dump (staged rename), then truncate the WAL to a
    /// new base. A crash anywhere inside leaves a recoverable state —
    /// in the window between the dump commit and the WAL truncate, replay
    /// skips the frames the dump already contains.
    pub fn seal(&mut self) -> Result<(), CoreError> {
        let Some((dir, durability)) = self
            .ingest
            .as_ref()
            .map(|i| (i.dir.clone(), i.wal.durability()))
        else {
            return Err(CoreError::InvalidQuery(
                "seal: cloud was not opened for ingest".into(),
            ));
        };
        self.flush_wal()?;
        let saved = self.save_dir_inner(&dir, self.fault.as_deref(), durability);
        self.note_storage(saved)?;
        if let Some(fi) = &self.fault {
            if let Some(kind) = fi.fire(crate::fault::FaultStage::Seal, "truncate") {
                // Crash after the dump committed but before the WAL
                // truncate: the log still holds frames the dump now
                // contains — exactly the window idempotent replay covers.
                return Err(CoreError::Corrupt(format!(
                    "injected {kind:?} during seal before wal truncate"
                )));
            }
        }
        let n = self.table.num_rows() as u64;
        self.ingest
            .as_mut()
            .expect("ingest state checked above")
            .wal
            .reset(n)?;
        // The full table just reached stable storage: if the device had
        // been exhausted, the operator has freed space — leave degraded
        // mode and accept ingest again.
        self.set_degraded(false);
        Ok(())
    }

    /// [`Self::seal`], but folding the table into a **tiled** (v3) dump:
    /// rows are SFC-sorted in place, cut into tiles with per-column zone
    /// maps, and written as one v2 dump per tile under the ingest
    /// directory. Returns the tile count. The directory then opens either
    /// eagerly ([`Self::open_dir`] / [`Self::open_ingest`], which keep
    /// working) or lazily and out-of-core
    /// ([`crate::segment::TiledCloud::open`]).
    pub fn seal_to_tiles(
        &mut self,
        opts: &crate::segment::TileOptions,
    ) -> Result<usize, CoreError> {
        let Some((dir, durability)) = self
            .ingest
            .as_ref()
            .map(|i| (i.dir.clone(), i.wal.durability()))
        else {
            return Err(CoreError::InvalidQuery(
                "seal_to_tiles: cloud was not opened for ingest".into(),
            ));
        };
        self.flush_wal()?;
        let tm = crate::segment::sort_and_plan(self, opts)?;
        let tiles = tm.tiles.len();
        let saved = crate::persist::save_tiled_inner(self, &dir, &tm, durability);
        self.note_storage(saved)?;
        let n = self.table.num_rows() as u64;
        self.ingest
            .as_mut()
            .expect("ingest state checked above")
            .wal
            .reset(n)?;
        self.set_degraded(false);
        Ok(tiles)
    }

    /// Write the table as a tiled (v3) dump at `dir`, SFC-sorting the rows
    /// in place first. For plain (non-ingest) clouds — ingesting clouds
    /// should use [`Self::seal_to_tiles`], which also checkpoints the WAL.
    /// Returns the tile count.
    pub fn save_tiled(
        &mut self,
        dir: impl AsRef<std::path::Path>,
        opts: &crate::segment::TileOptions,
    ) -> Result<usize, CoreError> {
        let tm = crate::segment::sort_and_plan(self, opts)?;
        crate::persist::save_tiled_inner(self, dir.as_ref(), &tm, Durability::Always)?;
        Ok(tm.tiles.len())
    }
}

/// Row count of a per-column dump set, validating its shape against the
/// point schema *before* anything is WAL-logged: every column must hold
/// exactly `rows * type_size` bytes, so a malformed batch can never reach
/// the log (where its replay would poison recovery).
fn dump_rows(dumps: &[Vec<u8>]) -> Result<usize, CoreError> {
    let schema = point_schema();
    if dumps.len() != schema.width() {
        return Err(CoreError::Corrupt(format!(
            "dump set has {} columns, schema has {}",
            dumps.len(),
            schema.width()
        )));
    }
    let rows = dumps[0].len() / schema.fields()[0].ptype.size();
    for (d, f) in dumps.iter().zip(schema.fields()) {
        if d.len() != rows * f.ptype.size() {
            return Err(CoreError::Corrupt(format!(
                "column {} dump has {} bytes, {} rows need {}",
                f.name,
                d.len(),
                rows,
                rows * f.ptype.size()
            )));
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records(n: usize) -> Vec<PointRecord> {
        (0..n)
            .map(|i| PointRecord {
                x: i as f64,
                y: (n - i) as f64,
                z: (i % 30) as f64,
                classification: (i % 10) as u8,
                intensity: i as u16,
                gps_time: i as f64 * 0.01,
                ..Default::default()
            })
            .collect()
    }

    #[test]
    fn append_and_read_back() {
        let mut pc = PointCloud::new();
        pc.append_records(&sample_records(1000)).unwrap();
        assert_eq!(pc.num_points(), 1000);
        let xs = pc.f64_column("x").unwrap();
        assert_eq!(xs[7], 7.0);
        let rec = pc.record(7).unwrap();
        assert_eq!(rec.x, 7.0);
        assert_eq!(rec.y, 993.0);
        assert_eq!(rec.classification, 7);
        assert!(pc.record(1000).is_none());
    }

    #[test]
    fn imprints_are_lazy_and_cached() {
        let mut pc = PointCloud::new();
        pc.append_records(&sample_records(5000)).unwrap();
        assert!(!pc.has_imprints("x"));
        let a = pc.imprints_for("x").unwrap();
        assert!(pc.has_imprints("x"));
        let b = pc.imprints_for("x").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call hits the cache");
        assert!(!pc.has_imprints("y"), "only the probed column is indexed");
    }

    #[test]
    fn append_refreshes_imprints_incrementally() {
        let mut pc = PointCloud::new();
        pc.append_records(&sample_records(100)).unwrap();
        pc.imprints_for("x").unwrap();
        assert!(pc.has_imprints("x"));
        pc.append_records(&sample_records(100)).unwrap();
        assert!(
            pc.has_imprints("x"),
            "append extends the cached index instead of invalidating it"
        );
        let imp = pc.imprints_for("x").unwrap();
        assert_eq!(imp.len(), 200, "index covers the appended rows");
        // x repeats 0..100 in each batch: a point probe must surface the
        // matching row in *both* the old and the appended region.
        let cand = imp.probe_f64(50.0, 50.0);
        assert!(cand.contains(50) && cand.contains(150));
    }

    #[test]
    fn visible_rows_tracks_appends_on_plain_clouds() {
        let mut pc = PointCloud::new();
        assert_eq!(pc.visible_rows(), 0);
        pc.append_records(&sample_records(64)).unwrap();
        assert_eq!(pc.visible_rows(), 64);
        assert_eq!(pc.recovery_report(), None);
        assert_eq!(pc.ingest_durability(), None);
        assert!(pc.seal().is_err(), "plain clouds have nothing to seal");
    }

    #[test]
    fn storage_accounting() {
        let mut pc = PointCloud::new();
        pc.append_records(&sample_records(10_000)).unwrap();
        assert_eq!(pc.index_bytes(), 0);
        pc.imprints_for("x").unwrap();
        pc.imprints_for("y").unwrap();
        assert!(pc.index_bytes() > 0);
        let stats = pc.imprint_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, "x");
        // Row bytes: 81 bytes of unpacked payload per point in the flat
        // table (the LAS bit-fields each get their own u8 column).
        assert_eq!(pc.data_bytes(), 10_000 * 81);
    }

    fn tdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("lidardb_ingest_{name}"));
        let _ = std::fs::remove_dir_all(&d);
        let _ = std::fs::remove_file(wal::wal_path_for(&d));
        std::fs::create_dir_all(d.parent().unwrap()).unwrap();
        d
    }

    #[test]
    fn ingest_survives_reopen_without_seal() {
        let dir = tdir("reopen");
        let mut pc = PointCloud::open_ingest(&dir, Durability::Always).unwrap();
        assert_eq!(pc.num_points(), 0);
        assert!(pc.ingest_records(&sample_records(100)).unwrap());
        assert!(pc.ingest_records(&sample_records(50)).unwrap());
        assert_eq!(pc.visible_rows(), 150);
        drop(pc); // "crash": no seal, the WAL alone carries the rows
        let pc = PointCloud::open_ingest(&dir, Durability::Always).unwrap();
        assert_eq!(pc.num_points(), 150);
        let rep = pc.recovery_report().unwrap();
        assert_eq!(rep.replayed_rows, 150);
        assert_eq!(rep.replayed_frames, 2);
        assert_eq!(rep.base_rows, 0);
        assert!(!rep.torn_tail);
        assert_eq!(pc.record(107).unwrap().x, 7.0, "payload intact");
    }

    #[test]
    fn seal_folds_wal_into_dump_and_truncates() {
        let dir = tdir("seal");
        let mut pc = PointCloud::open_ingest(&dir, Durability::Always).unwrap();
        pc.ingest_records(&sample_records(80)).unwrap();
        pc.seal().unwrap();
        let wal_len = std::fs::metadata(wal::wal_path_for(&dir)).unwrap().len();
        assert!(wal_len < 64, "WAL truncated to header, got {wal_len} bytes");
        // More appends after the seal land in the fresh log.
        pc.ingest_records(&sample_records(20)).unwrap();
        drop(pc);
        let pc = PointCloud::open_ingest(&dir, Durability::Always).unwrap();
        assert_eq!(pc.num_points(), 100);
        let rep = pc.recovery_report().unwrap();
        assert_eq!(rep.base_rows, 80, "dump carries the sealed prefix");
        assert_eq!(rep.replayed_rows, 20, "log carries the rest");
    }

    #[test]
    fn group_commit_defers_visibility_until_flush() {
        let dir = tdir("groupvis");
        let mut pc = PointCloud::open_ingest(
            &dir,
            Durability::GroupCommit {
                max_batches: 100,
                max_delay: std::time::Duration::from_secs(3600),
            },
        )
        .unwrap();
        assert!(!pc.ingest_records(&sample_records(60)).unwrap());
        assert_eq!(pc.num_points(), 60, "applied to the table");
        assert_eq!(pc.visible_rows(), 0, "but not visible until durable");
        assert_eq!(pc.durable_rows(), Some(0));
        // A query sees the empty snapshot, not the in-flight batch.
        let sel = pc
            .select_query(None, &[], Default::default())
            .unwrap();
        assert_eq!(sel.rows.len(), 0, "no ghost rows");
        pc.flush_wal().unwrap();
        assert_eq!(pc.visible_rows(), 60);
        assert_eq!(pc.durable_rows(), Some(60));
        let sel = pc.select_query(None, &[], Default::default()).unwrap();
        assert_eq!(sel.rows.len(), 60, "visible after the group commit");
    }

    #[test]
    fn durability_none_is_visible_immediately() {
        let dir = tdir("nonevis");
        let mut pc = PointCloud::open_ingest(&dir, Durability::None).unwrap();
        assert!(!pc.ingest_records(&sample_records(10)).unwrap());
        assert_eq!(pc.visible_rows(), 10, "None trades safety for speed");
    }

    #[test]
    fn ingest_rejects_malformed_dumps_before_logging() {
        let dir = tdir("malformed");
        let mut pc = PointCloud::open_ingest(&dir, Durability::Always).unwrap();
        // Wrong column count.
        assert!(pc.append_dumps(&[vec![0u8; 8]]).is_err());
        // Right count, torn byte length in one column.
        let soa = ColumnArrays::from_records(&sample_records(4));
        let mut dumps = soa.to_dumps();
        dumps[3].pop();
        assert!(pc.append_dumps(&dumps).is_err());
        // Nothing reached the WAL: a reopen recovers zero rows.
        drop(pc);
        let pc = PointCloud::open_ingest(&dir, Durability::Always).unwrap();
        assert_eq!(pc.num_points(), 0);
        assert_eq!(pc.recovery_report().unwrap().wal_frames, 0);
    }

    #[test]
    fn unknown_column_errors() {
        let pc = PointCloud::new();
        assert!(pc.column("wibble").is_err());
        assert!(pc.imprints_for("wibble").is_err());
        assert!(pc.f64_column("classification").is_err(), "type mismatch");
    }
}
