//! Crash-safe streaming ingestion: the checksummed write-ahead log.
//!
//! Atomic dumps ([`crate::persist`]) make *bulk* state durable, but every
//! point appended since the last `save_dir` lived only in memory. This
//! module closes that gap for the paper's live-navigation workload: each
//! `append_records`/`append_dumps` batch is framed, CRC-32-checksummed and
//! appended to a WAL *before* it touches the in-memory table, so a crash
//! loses at most the batches that were never acknowledged as durable.
//!
//! # Frame format (v02)
//!
//! ```text
//! header:  "LDBWAL02" | base_rows u64 | ledger_count u32
//!          | [token u64]*ledger_count | crc32(everything before)
//! frame:   payload_len u32 | crc32 u32 | seq u64 | end_rows u64
//!          | token u64 | payload
//! payload: rows u32 | column dumps, little-endian, in schema order
//! ```
//!
//! The frame CRC covers `seq ‖ end_rows ‖ token ‖ payload`. Every length
//! field is untrusted (PR 3 decoder discipline): `payload_len` is checked
//! against the bytes actually remaining in the file and a hard cap before
//! any allocation, `ledger_count` against [`LEDGER_CAP`] and the header
//! bytes present, `rows` against the derived per-column dump sizes, and
//! `end_rows` against the running row count — so a torn, truncated or
//! bit-flipped tail is detected and cleanly truncated at recovery, never
//! mis-replayed.
//!
//! # Idempotency ledger
//!
//! `token` (0 = none) is a client-chosen idempotency token for the batch:
//! the writer keeps a bounded ledger of recent tokens so a client that
//! retries an INSERT after a lost acknowledgement cannot double-insert.
//! Tokens ride in the frame header (replayed into the ledger during
//! recovery) and survive `seal()` through the header's ledger snapshot —
//! written when the log resets, since the frames that carried them are
//! folded into the dump and truncated away. Eviction is bounded
//! ([`LEDGER_CAP`]) but never drops a token whose covering frame is not
//! yet durable: an undurable batch is exactly the one a client may still
//! be retrying.
//!
//! # Group commit and visibility
//!
//! [`Durability`] picks when appended frames are fsynced: every batch
//! (`Always`), when a batch count/delay threshold is crossed
//! (`GroupCommit`), or never (`None`, benchmarks). The table's visibility
//! watermark (`PointCloud::visible_rows`) advances only when the covering
//! frames are durable, giving concurrent queries snapshot isolation with
//! no ghost rows: a row a reader can see is a row recovery will replay.
//!
//! # Idempotent replay
//!
//! `seal()` folds the WAL into a fresh atomic dump and then truncates the
//! log. A crash *between* those two steps leaves a dump that already
//! contains every logged row; frames carry their cumulative `end_rows`
//! exactly so replay can skip the prefix the dump already covers.

use std::collections::VecDeque;
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lidardb_las::point_schema;

use crate::crc::crc32;
use crate::error::{is_storage_exhausted_io, CoreError};
use crate::fault::{FaultInjector, FaultKind, FaultStage};

/// WAL header magic (8 bytes, versioned).
const MAGIC: &[u8; 8] = b"LDBWAL02";

/// Minimum header size (empty ledger): magic + base_rows + ledger_count
/// + crc. A header carrying `n` ledger tokens is `HEADER_LEN + 8n` bytes.
const HEADER_LEN: u64 = 8 + 8 + 4 + 4;

/// Frame header size: payload_len + crc + seq + end_rows + token.
const FRAME_HEADER_LEN: u64 = 4 + 4 + 8 + 8 + 8;

/// Hard cap on a single frame payload (64 MiB ≈ 800k points); a declared
/// length beyond it is rejected before any allocation.
const MAX_PAYLOAD: u32 = 64 << 20;

/// Soft capacity of the idempotency ledger. Eviction kicks in past this
/// size but never drops an entry whose frame is not yet durable, so the
/// true bound is `LEDGER_CAP` + the group-commit window.
pub const LEDGER_CAP: usize = 1024;

fn io_err(e: std::io::Error) -> CoreError {
    CoreError::Las(lidardb_las::LasError::Io(e))
}

/// Map a WAL write-path I/O failure: device exhaustion (`ENOSPC`/`EIO`)
/// becomes the typed [`CoreError::StorageExhausted`] so the owning table
/// can flip into read-only degraded mode; anything else stays a plain
/// I/O error.
fn write_err(op: &str, e: std::io::Error) -> CoreError {
    if is_storage_exhausted_io(&e) {
        CoreError::StorageExhausted(format!("{op}: {e}"))
    } else {
        io_err(e)
    }
}

fn corrupt(msg: impl Into<String>) -> CoreError {
    CoreError::Corrupt(msg.into())
}

/// When acknowledged ingest batches become durable (and therefore visible
/// to queries — the watermark never runs ahead of durability).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// fsync the WAL after every batch. Zero loss of acknowledged writes;
    /// slowest.
    Always,
    /// fsync once `max_batches` appends accumulate or `max_delay` passes
    /// since the last sync, whichever first. A crash can lose at most the
    /// unsynced group — which was never acknowledged as durable.
    GroupCommit {
        /// Batches per group before a forced sync.
        max_batches: usize,
        /// Maximum time a batch waits for its group sync.
        max_delay: Duration,
    },
    /// Never fsync (the OS flushes when it pleases). For benchmarks and
    /// bulk loads that end with an explicit [`seal`](crate::PointCloud::seal);
    /// rows become visible immediately and recovery is best-effort.
    None,
}

impl Default for Durability {
    fn default() -> Self {
        Durability::GroupCommit {
            max_batches: 32,
            max_delay: Duration::from_millis(50),
        }
    }
}

impl Durability {
    /// Display name for reports and benchmarks.
    pub fn name(&self) -> &'static str {
        match self {
            Durability::Always => "always",
            Durability::GroupCommit { .. } => "group_commit",
            Durability::None => "none",
        }
    }
}

/// What `open_ingest` found and did while recovering a WAL, rendered by
/// SQL `SHOW RECOVERY`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Rows in the base dump the WAL was replayed on top of.
    pub base_rows: usize,
    /// Well-formed frames found in the WAL.
    pub wal_frames: usize,
    /// Frames replayed into the table (the rest were already folded into
    /// the dump by a `seal` that crashed before truncating the log).
    pub replayed_frames: usize,
    /// Frames skipped as already contained in the dump.
    pub skipped_frames: usize,
    /// Rows the replay appended.
    pub replayed_rows: usize,
    /// Total rows after recovery.
    pub total_rows: usize,
    /// Bytes of torn/corrupt tail truncated from the log.
    pub truncated_bytes: u64,
    /// Whether the scan stopped at a damaged tail (vs. clean EOF).
    pub torn_tail: bool,
    /// Wall-clock seconds the recovery took.
    pub seconds: f64,
}

impl RecoveryReport {
    /// Render as aligned `name value` lines (the SQL `SHOW RECOVERY`
    /// payload).
    pub fn render(&self) -> String {
        format!(
            "base_rows {}\nwal_frames {}\nreplayed_frames {}\nskipped_frames {}\n\
             replayed_rows {}\ntotal_rows {}\ntruncated_bytes {}\ntorn_tail {}\nseconds {:.6}",
            self.base_rows,
            self.wal_frames,
            self.replayed_frames,
            self.skipped_frames,
            self.replayed_rows,
            self.total_rows,
            self.truncated_bytes,
            self.torn_tail,
            self.seconds,
        )
    }
}

/// One decoded WAL frame.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    /// Monotonic frame sequence number.
    pub seq: u64,
    /// Cumulative row count (base + all frames through this one).
    pub end_rows: u64,
    /// Idempotency token the batch was stamped with (0 = none).
    pub token: u64,
    /// Per-column little-endian dumps in schema order.
    pub dumps: Vec<Vec<u8>>,
}

/// Encode a batch as one frame. `end_rows` is the cumulative row count
/// after the batch; `token` is the batch's idempotency token (0 = none).
fn encode_frame(seq: u64, end_rows: u64, token: u64, rows: u32, dumps: &[Vec<u8>]) -> Vec<u8> {
    let payload_len: usize = 4 + dumps.iter().map(Vec::len).sum::<usize>();
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN as usize + payload_len);
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]); // crc, patched below
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&end_rows.to_le_bytes());
    buf.extend_from_slice(&token.to_le_bytes());
    buf.extend_from_slice(&rows.to_le_bytes());
    for d in dumps {
        buf.extend_from_slice(d);
    }
    // The CRC'd region (seq ‖ end_rows ‖ token ‖ payload) is contiguous
    // on disk, so verification needs no reassembly copy.
    let crc = crc32(&buf[8..]);
    buf[4..8].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// Encode a WAL header for a log restarting at `base_rows`, embedding a
/// snapshot of (at most the newest [`LEDGER_CAP`]) idempotency tokens.
fn encode_header(base_rows: u64, tokens: &[u64]) -> Vec<u8> {
    let keep = tokens.len().min(LEDGER_CAP);
    let tokens = &tokens[tokens.len() - keep..];
    let mut hdr = Vec::with_capacity(HEADER_LEN as usize + keep * 8);
    hdr.extend_from_slice(MAGIC);
    hdr.extend_from_slice(&base_rows.to_le_bytes());
    hdr.extend_from_slice(&(keep as u32).to_le_bytes());
    for t in tokens {
        hdr.extend_from_slice(&t.to_le_bytes());
    }
    let hcrc = crc32(&hdr);
    hdr.extend_from_slice(&hcrc.to_le_bytes());
    hdr
}

/// Byte size of `rows` rows across the point schema (81 bytes/row today,
/// but derived, not hard-coded).
fn schema_row_bytes() -> usize {
    point_schema().fields().iter().map(|f| f.ptype.size()).sum()
}

/// Split a validated payload into per-column dumps. Returns `None` when
/// the declared row count does not reproduce the payload length exactly.
fn decode_payload(payload: &[u8]) -> Option<(u32, Vec<Vec<u8>>)> {
    if payload.len() < 4 {
        return None;
    }
    let rows = u32::from_le_bytes(payload[..4].try_into().ok()?) as usize;
    let expect = rows.checked_mul(schema_row_bytes())?.checked_add(4)?;
    if expect != payload.len() {
        return None;
    }
    let mut dumps = Vec::new();
    let mut at = 4usize;
    for field in point_schema().fields() {
        let sz = rows * field.ptype.size();
        dumps.push(payload[at..at + sz].to_vec());
        at += sz;
    }
    debug_assert_eq!(at, payload.len());
    Some((rows as u32, dumps))
}

/// The WAL of one streaming-ingest point cloud.
///
/// Owned by `PointCloud`'s ingest state; appends are framed + checksummed,
/// syncs follow the [`Durability`] policy, and `durable_rows` is the row
/// watermark covered by fsynced frames.
#[derive(Debug)]
pub struct WalWriter {
    file: std::fs::File,
    path: PathBuf,
    durability: Durability,
    /// Next frame sequence number.
    seq: u64,
    /// Cumulative rows covered by appended frames (incl. the dump base).
    rows: u64,
    /// Rows covered by *fsynced* frames — the durability watermark.
    durable_rows: u64,
    /// Appends since the last sync (group-commit trigger).
    pending: usize,
    last_sync: Instant,
    /// Idempotency ledger: `(token, end_rows)` of recent tagged batches,
    /// oldest first. Bounded by [`LEDGER_CAP`] + the undurable window.
    ledger: VecDeque<(u64, u64)>,
    fault: Option<Arc<FaultInjector>>,
}

impl WalWriter {
    /// Open (or create) the WAL at `path` for a table currently holding
    /// `base_rows` rows, positioned after `valid_len` bytes of verified
    /// frames covering `wal_rows` rows at sequence `seq`, with the
    /// idempotency ledger recovered from the scan.
    #[allow(clippy::too_many_arguments)]
    fn open_at(
        path: &Path,
        base_rows: u64,
        valid_len: u64,
        rows: u64,
        seq: u64,
        durability: Durability,
        ledger: VecDeque<(u64, u64)>,
        fault: Option<Arc<FaultInjector>>,
    ) -> Result<WalWriter, CoreError> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io_err)?;
        let len = file.metadata().map_err(io_err)?.len();
        if len < HEADER_LEN {
            // Fresh (or sub-header) log: write the header for this base.
            file.set_len(0).map_err(io_err)?;
            let tokens: Vec<u64> = ledger.iter().map(|&(t, _)| t).collect();
            let hdr = encode_header(base_rows, &tokens);
            file.write_all(&hdr).map_err(|e| write_err("wal header", e))?;
            file.sync_all().map_err(|e| write_err("wal header sync", e))?;
        } else if len > valid_len {
            // Recovery truncation: drop the torn/corrupt tail so the next
            // append starts at a verified frame boundary.
            file.set_len(valid_len).map_err(io_err)?;
            file.sync_all().map_err(io_err)?;
        }
        file.seek(std::io::SeekFrom::End(0)).map_err(io_err)?;
        let mut w = WalWriter {
            file,
            path: path.to_path_buf(),
            durability,
            seq,
            rows: rows.max(base_rows),
            durable_rows: rows.max(base_rows),
            pending: 0,
            last_sync: Instant::now(),
            ledger,
            fault,
        };
        w.trim_ledger();
        Ok(w)
    }

    /// The log's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rows covered by fsynced frames (the visibility watermark source).
    pub fn durable_rows(&self) -> u64 {
        self.durable_rows
    }

    /// Rows covered by all appended frames, synced or not.
    pub fn appended_rows(&self) -> u64 {
        self.rows
    }

    /// The sync policy.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// If `token` (≠ 0) was already logged, return the cumulative row
    /// count its batch ended at — the dedup signal for idempotent replay.
    pub fn token_seen(&self, token: u64) -> Option<u64> {
        if token == 0 {
            return None;
        }
        self.ledger
            .iter()
            .rev()
            .find(|&&(t, _)| t == token)
            .map(|&(_, end)| end)
    }

    /// Current ledger size (tests and `sys.wal`).
    pub fn ledger_len(&self) -> usize {
        self.ledger.len()
    }

    /// Evict oldest ledger entries past [`LEDGER_CAP`] — but only those
    /// whose frames are durable. An undurable batch is exactly the one a
    /// disconnected client may still be retrying; its token must survive
    /// until the covering frame is fsynced.
    fn trim_ledger(&mut self) {
        while self.ledger.len() > LEDGER_CAP {
            match self.ledger.front() {
                Some(&(_, end)) if end <= self.durable_rows => {
                    self.ledger.pop_front();
                }
                _ => break,
            }
        }
    }

    /// Append one batch (per-column dumps, `rows` rows) as a frame, then
    /// sync per the durability policy. `token` (0 = none) is the batch's
    /// idempotency token, recorded in the ledger on success — the caller
    /// is responsible for checking [`token_seen`](Self::token_seen) first.
    /// Returns whether the frame (and all before it) is durable on return.
    pub fn append_batch(
        &mut self,
        dumps: &[Vec<u8>],
        rows: usize,
        token: u64,
    ) -> Result<bool, CoreError> {
        let seq = self.seq;
        let end_rows = self.rows + rows as u64;
        let mut frame = encode_frame(seq, end_rows, token, rows as u32, dumps);
        if let Some(kind) = self
            .fault
            .as_ref()
            .and_then(|fi| fi.fire(FaultStage::WalAppend, &format!("frame:{seq}")))
        {
            match kind {
                FaultKind::DiskFull => {
                    // The device rejected the write before any byte
                    // landed; surface the typed exhaustion error so the
                    // table degrades instead of crashing.
                    return Err(CoreError::StorageExhausted(format!(
                        "wal append of frame {seq}: {}",
                        kind.to_io_error()
                    )));
                }
                FaultKind::IoError => return Err(io_err(kind.to_io_error())),
                FaultKind::Crash => {
                    // Process died before any byte of the frame reached
                    // the file.
                    return Err(corrupt("injected crash before wal append"));
                }
                _ => {
                    // Torn/short/bit-flipped write: the damaged bytes are
                    // what lands on disk, then the process dies.
                    kind.corrupt(&mut frame);
                    let _ = self.file.write_all(&frame);
                    let _ = self.file.sync_all();
                    return Err(corrupt(format!(
                        "injected {kind:?} during wal append of frame {seq}"
                    )));
                }
            }
        }
        self.file
            .write_all(&frame)
            .map_err(|e| write_err(&format!("wal append of frame {seq}"), e))?;
        self.seq += 1;
        self.rows = end_rows;
        self.pending += 1;
        if token != 0 {
            self.ledger.push_back((token, end_rows));
            self.trim_ledger();
        }
        let due = match self.durability {
            Durability::Always => true,
            Durability::GroupCommit {
                max_batches,
                max_delay,
            } => self.pending >= max_batches || self.last_sync.elapsed() >= max_delay,
            Durability::None => false,
        };
        if due {
            self.sync()?;
        }
        Ok(self.durable_rows == self.rows)
    }

    /// Force a group-commit fsync; everything appended becomes durable.
    pub fn sync(&mut self) -> Result<(), CoreError> {
        if self.durable_rows == self.rows && self.pending == 0 {
            return Ok(());
        }
        let seq = self.seq;
        if let Some(kind) = self
            .fault
            .as_ref()
            .and_then(|fi| fi.fire(FaultStage::WalSync, &format!("sync:{seq}")))
        {
            match kind {
                FaultKind::DiskFull => {
                    // The device refused the fsync: appended frames stay
                    // in the page cache, durability cannot advance.
                    return Err(CoreError::StorageExhausted(format!(
                        "wal sync at seq {seq}: {}",
                        kind.to_io_error()
                    )));
                }
                FaultKind::IoError => return Err(io_err(kind.to_io_error())),
                _ => {
                    // A crash at (or instead of) the fsync: unsynced page
                    // cache is lost. Simulate by cutting the file back to
                    // the durable boundary — wholly (`Crash`) or keeping a
                    // damaged prefix of the unsynced tail (`TornWrite`).
                    let durable_len = self.durable_len()?;
                    let full = self.file.metadata().map_err(io_err)?.len();
                    let mut tail = vec![0u8; (full - durable_len) as usize];
                    self.file
                        .seek(std::io::SeekFrom::Start(durable_len))
                        .map_err(io_err)?;
                    self.file.read_exact(&mut tail).map_err(io_err)?;
                    kind.corrupt(&mut tail);
                    if kind == FaultKind::Crash {
                        tail.clear();
                    }
                    self.file.set_len(durable_len).map_err(io_err)?;
                    self.file
                        .seek(std::io::SeekFrom::Start(durable_len))
                        .map_err(io_err)?;
                    self.file.write_all(&tail).map_err(io_err)?;
                    let _ = self.file.sync_all();
                    return Err(corrupt(format!(
                        "injected {kind:?} during wal sync at seq {seq}"
                    )));
                }
            }
        }
        self.file
            .sync_all()
            .map_err(|e| write_err("wal sync", e))?;
        self.durable_rows = self.rows;
        self.pending = 0;
        self.last_sync = Instant::now();
        self.trim_ledger();
        crate::metrics::MetricsRegistry::global().wal_syncs.inc();
        Ok(())
    }

    /// Byte length of the durable (fsynced) frame prefix, recomputed by
    /// scanning — only used on the injected-crash path, where exactness
    /// matters more than speed.
    fn durable_len(&mut self) -> Result<u64, CoreError> {
        let durable = self.durable_rows;
        self.file.seek(std::io::SeekFrom::Start(0)).map_err(io_err)?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes).map_err(io_err)?;
        let scan = scan_frames(&bytes, None)?;
        let mut at = scan.header_len;
        for (f, flen) in scan.frames.iter().zip(scan.frame_lens.iter()) {
            if f.end_rows > durable {
                break;
            }
            at += flen;
        }
        Ok(at)
    }

    /// Reset the log after a successful seal: the dump now holds
    /// `base_rows` rows, so the log restarts empty at that base. The
    /// idempotency ledger is snapshotted into the fresh header — the
    /// frames that carried the tokens are being truncated away, but a
    /// client replaying a pre-seal INSERT must still be deduped.
    pub fn reset(&mut self, base_rows: u64) -> Result<(), CoreError> {
        self.file.set_len(0).map_err(io_err)?;
        self.file.seek(std::io::SeekFrom::Start(0)).map_err(io_err)?;
        let tokens: Vec<u64> = self.ledger.iter().map(|&(t, _)| t).collect();
        let hdr = encode_header(base_rows, &tokens);
        self.file
            .write_all(&hdr)
            .map_err(|e| write_err("wal reset header", e))?;
        self.file
            .sync_all()
            .map_err(|e| write_err("wal reset sync", e))?;
        self.seq = 0;
        self.rows = base_rows;
        self.durable_rows = base_rows;
        self.pending = 0;
        self.last_sync = Instant::now();
        // Every logged row is now in the dump: clamp ledger watermarks to
        // the new base so the eviction rule keeps working.
        for e in self.ledger.iter_mut() {
            e.1 = e.1.min(base_rows);
        }
        self.trim_ledger();
        Ok(())
    }
}

/// Result of scanning a WAL byte image: the committed frame prefix plus
/// where (and whether) the scan hit a damaged tail.
pub(crate) struct WalScan {
    /// The log's base row count from the header (0 for an empty/absent log).
    pub base_rows: u64,
    /// Idempotency tokens snapshotted into the header by the last `seal`.
    pub ledger_tokens: Vec<u64>,
    /// On-disk byte length of the (variable-size) header.
    pub header_len: u64,
    /// Verified frames, in order.
    pub frames: Vec<Frame>,
    /// On-disk byte length of each verified frame.
    pub frame_lens: Vec<u64>,
    /// Bytes of verified prefix (header + frames).
    pub valid_len: u64,
    /// Bytes past the verified prefix (torn tail to truncate).
    pub tail_bytes: u64,
}

/// Scan a WAL image, verifying every length and checksum. Stops cleanly
/// at the first short, torn or corrupt frame — everything before it is
/// the committed prefix, everything after is an untrusted tail.
pub(crate) fn scan_frames(bytes: &[u8], fi: Option<&FaultInjector>) -> Result<WalScan, CoreError> {
    if bytes.is_empty() {
        return Ok(WalScan {
            base_rows: 0,
            ledger_tokens: Vec::new(),
            header_len: 0,
            frames: Vec::new(),
            frame_lens: Vec::new(),
            valid_len: 0,
            tail_bytes: 0,
        });
    }
    if bytes.len() < HEADER_LEN as usize || &bytes[..8] != MAGIC {
        return Err(corrupt("wal: bad header"));
    }
    let base_rows = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    // `ledger_count` is untrusted: bound it by the cap and by the bytes
    // actually present before slicing anything.
    let ledger_count = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    if ledger_count > LEDGER_CAP {
        return Err(corrupt("wal: header ledger count exceeds cap"));
    }
    let header_len = HEADER_LEN as usize + ledger_count * 8;
    if bytes.len() < header_len {
        return Err(corrupt("wal: short header"));
    }
    if crc32(&bytes[..header_len - 4])
        != u32::from_le_bytes(bytes[header_len - 4..header_len].try_into().unwrap())
    {
        return Err(corrupt("wal: bad header"));
    }
    let ledger_tokens: Vec<u64> = (0..ledger_count)
        .map(|i| u64::from_le_bytes(bytes[20 + i * 8..28 + i * 8].try_into().unwrap()))
        .collect();
    let mut frames = Vec::new();
    let mut frame_lens = Vec::new();
    let mut at = header_len;
    let mut prev_end = base_rows;
    let mut prev_seq: Option<u64> = None;
    while at < bytes.len() {
        let remaining = bytes.len() - at;
        if remaining < FRAME_HEADER_LEN as usize {
            break; // short header: torn tail
        }
        let payload_len =
            u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        // Untrusted length: capped and checked against the bytes actually
        // present before anything is sliced or allocated.
        if payload_len > MAX_PAYLOAD
            || (payload_len as usize) > remaining - FRAME_HEADER_LEN as usize
        {
            break;
        }
        let declared_crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        let seq = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap());
        let end_rows = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap());
        let token = u64::from_le_bytes(bytes[at + 24..at + 32].try_into().unwrap());
        let payload = &bytes[at + 32..at + 32 + payload_len as usize];
        if crc32(&bytes[at + 8..at + 32 + payload_len as usize]) != declared_crc {
            break;
        }
        if let Some(kind) = fi.and_then(|fi| fi.fire(FaultStage::Recover, &format!("frame:{seq}")))
        {
            return Err(match kind {
                FaultKind::IoError => io_err(kind.to_io_error()),
                other => corrupt(format!("injected {other:?} during wal replay of frame {seq}")),
            });
        }
        // Structural checks beyond the checksum: sequence and row
        // bookkeeping must chain. (A valid CRC over nonsense frames —
        // e.g. spliced from another log — must not replay.)
        if prev_seq.is_some_and(|p| seq != p + 1) || (prev_seq.is_none() && seq != 0) {
            break;
        }
        let Some((rows, dumps)) = decode_payload(payload) else {
            break;
        };
        if end_rows != prev_end + rows as u64 {
            break;
        }
        prev_seq = Some(seq);
        prev_end = end_rows;
        frames.push(Frame {
            seq,
            end_rows,
            token,
            dumps,
        });
        let flen = FRAME_HEADER_LEN + payload_len as u64;
        frame_lens.push(flen);
        at += flen as usize;
    }
    Ok(WalScan {
        base_rows,
        ledger_tokens,
        header_len: header_len as u64,
        frames,
        frame_lens,
        valid_len: at as u64,
        tail_bytes: (bytes.len() - at) as u64,
    })
}

/// Scan the WAL at `path` (absent = empty), returning the verified scan.
pub(crate) fn scan_file(path: &Path, fi: Option<&FaultInjector>) -> Result<WalScan, CoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err(e)),
    };
    scan_frames(&bytes, fi)
}

/// Open a [`WalWriter`] positioned after the verified prefix of `path`
/// (truncating any torn tail), for a table currently holding `table_rows`
/// rows.
pub(crate) fn open_writer(
    path: &Path,
    table_rows: u64,
    durability: Durability,
    fault: Option<Arc<FaultInjector>>,
) -> Result<WalWriter, CoreError> {
    let scan = scan_file(path, None)?;
    let (rows, seq) = match scan.frames.last() {
        Some(f) => (f.end_rows, f.seq + 1),
        None => (scan.base_rows.max(table_rows), 0),
    };
    // Rebuild the idempotency ledger: header snapshot first (those tokens
    // predate the log, so their rows are covered by the dump base), then
    // every tagged frame in scan order.
    let mut ledger: VecDeque<(u64, u64)> = scan
        .ledger_tokens
        .iter()
        .map(|&t| (t, scan.base_rows))
        .collect();
    for f in &scan.frames {
        if f.token != 0 {
            ledger.push_back((f.token, f.end_rows));
        }
    }
    WalWriter::open_at(
        path,
        table_rows,
        scan.valid_len,
        rows,
        seq,
        durability,
        ledger,
        fault,
    )
}

/// The conventional WAL path for a dump directory: a sibling file, not a
/// child — `seal()` replaces the directory wholesale with one rename, and
/// the log must survive that swap.
pub fn wal_path_for(dir: &Path) -> PathBuf {
    let name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "table".to_string());
    dir.with_file_name(format!("{name}.wal"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dumps_of(rows: usize, salt: u8) -> Vec<Vec<u8>> {
        point_schema()
            .fields()
            .iter()
            .enumerate()
            .map(|(ci, f)| {
                (0..rows * f.ptype.size())
                    .map(|i| (i as u8).wrapping_mul(31) ^ salt ^ ci as u8)
                    .collect()
            })
            .collect()
    }

    fn twal(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("lidardb_wal_{name}.wal"));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn frame_roundtrip_and_scan() {
        let p = twal("roundtrip");
        let mut w = open_writer(&p, 100, Durability::Always, None).unwrap();
        assert!(w.append_batch(&dumps_of(10, 1), 10, 0).unwrap());
        assert!(w.append_batch(&dumps_of(3, 2), 3, 0).unwrap());
        assert_eq!(w.durable_rows(), 113);
        let scan = scan_file(&p, None).unwrap();
        assert_eq!(scan.base_rows, 100);
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.tail_bytes, 0);
        assert_eq!(scan.frames[0].end_rows, 110);
        assert_eq!(scan.frames[1].end_rows, 113);
        assert_eq!(scan.frames[1].dumps, dumps_of(3, 2));
    }

    #[test]
    fn torn_tail_is_detected_and_prefix_survives() {
        let p = twal("torn");
        let mut w = open_writer(&p, 0, Durability::Always, None).unwrap();
        w.append_batch(&dumps_of(8, 1), 8, 0).unwrap();
        w.append_batch(&dumps_of(8, 2), 8, 0).unwrap();
        drop(w);
        let full = std::fs::read(&p).unwrap();
        // Cut the file mid-second-frame at every possible byte boundary:
        // the scan must always recover exactly frame 1 (or 0 or 2 at the
        // clean boundaries) and flag the tail.
        let scan = scan_frames(&full, None).unwrap();
        let f1_end = (HEADER_LEN + scan.frame_lens[0]) as usize;
        for cut in [f1_end + 1, f1_end + 7, full.len() - 1] {
            let scan = scan_frames(&full[..cut], None).unwrap();
            assert_eq!(scan.frames.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len as usize, f1_end);
            assert!(scan.tail_bytes > 0);
        }
    }

    #[test]
    fn bit_flip_anywhere_in_a_frame_is_detected() {
        let p = twal("bitflip");
        let mut w = open_writer(&p, 0, Durability::Always, None).unwrap();
        w.append_batch(&dumps_of(4, 9), 4, 0).unwrap();
        drop(w);
        let good = std::fs::read(&p).unwrap();
        // Flip one bit at a spread of offsets within the frame; the frame
        // must never survive the scan. (Offsets in the length field can
        // also legitimately yield a "short tail" — either way, 0 frames.)
        for off in (HEADER_LEN as usize..good.len()).step_by(37) {
            let mut evil = good.clone();
            evil[off] ^= 0x04;
            let scan = scan_frames(&evil, None).unwrap();
            assert_eq!(scan.frames.len(), 0, "bit flip at {off} replayed!");
        }
    }

    #[test]
    fn header_corruption_is_an_error_not_a_replay() {
        let p = twal("hdr");
        let mut w = open_writer(&p, 42, Durability::Always, None).unwrap();
        w.append_batch(&dumps_of(2, 3), 2, 0).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[9] ^= 0xFF; // base_rows byte — caught by the header CRC
        assert!(scan_frames(&bytes, None).is_err());
        bytes[9] ^= 0xFF;
        bytes[0] = b'X'; // magic
        assert!(scan_frames(&bytes, None).is_err());
    }

    #[test]
    fn forged_giant_length_rejected_without_allocating() {
        let p = twal("forged");
        let mut w = open_writer(&p, 0, Durability::Always, None).unwrap();
        w.append_batch(&dumps_of(2, 4), 2, 0).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&p).unwrap();
        let at = HEADER_LEN as usize;
        bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        // Must terminate instantly treating it as a torn tail — not try
        // to allocate 4 GiB.
        let scan = scan_frames(&bytes, None).unwrap();
        assert_eq!(scan.frames.len(), 0);
        assert!(scan.tail_bytes > 0);
    }

    #[test]
    fn spliced_frames_with_valid_crcs_do_not_replay() {
        // Frames copied from another log have valid CRCs but broken
        // seq/row chains; the structural checks must stop the replay.
        let p1 = twal("splice1");
        let mut w = open_writer(&p1, 0, Durability::Always, None).unwrap();
        w.append_batch(&dumps_of(2, 1), 2, 0).unwrap();
        w.append_batch(&dumps_of(2, 2), 2, 0).unwrap();
        drop(w);
        let bytes = std::fs::read(&p1).unwrap();
        let scan = scan_frames(&bytes, None).unwrap();
        let f1 = (HEADER_LEN + scan.frame_lens[0]) as usize;
        // Duplicate frame 2 (seq gap: 0,1,1) — second copy must not replay.
        let mut spliced = bytes.clone();
        spliced.extend_from_slice(&bytes[f1..]);
        let scan = scan_frames(&spliced, None).unwrap();
        assert_eq!(scan.frames.len(), 2, "duplicated frame must not replay");
        // Drop frame 1, keeping frame 2 (starts at seq 1): nothing replays.
        let mut gapped = bytes[..HEADER_LEN as usize].to_vec();
        gapped.extend_from_slice(&bytes[f1..]);
        let scan = scan_frames(&gapped, None).unwrap();
        assert_eq!(scan.frames.len(), 0, "gapped sequence must not replay");
    }

    #[test]
    fn group_commit_defers_durability_until_threshold_or_flush() {
        let p = twal("group");
        let mut w = open_writer(
            &p,
            0,
            Durability::GroupCommit {
                max_batches: 3,
                max_delay: Duration::from_secs(3600),
            },
            None,
        )
        .unwrap();
        assert!(!w.append_batch(&dumps_of(1, 1), 1, 0).unwrap());
        assert!(!w.append_batch(&dumps_of(1, 2), 1, 0).unwrap());
        assert_eq!(w.durable_rows(), 0);
        assert!(w.append_batch(&dumps_of(1, 3), 1, 0).unwrap(), "3rd trips");
        assert_eq!(w.durable_rows(), 3);
        assert!(!w.append_batch(&dumps_of(1, 4), 1, 0).unwrap());
        w.sync().unwrap();
        assert_eq!(w.durable_rows(), 4);
    }

    #[test]
    fn writer_resumes_after_reopen_with_torn_tail() {
        let p = twal("resume");
        let mut w = open_writer(&p, 0, Durability::Always, None).unwrap();
        w.append_batch(&dumps_of(5, 1), 5, 0).unwrap();
        w.append_batch(&dumps_of(5, 2), 5, 0).unwrap();
        drop(w);
        // Tear the second frame.
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 3]).unwrap();
        let mut w = open_writer(&p, 5, Durability::Always, None).unwrap();
        assert_eq!(w.durable_rows(), 5, "resumes at the committed prefix");
        w.append_batch(&dumps_of(2, 3), 2, 0).unwrap();
        drop(w);
        let scan = scan_file(&p, None).unwrap();
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.frames[1].seq, 1, "sequence continues the prefix");
        assert_eq!(scan.frames[1].end_rows, 7);
        assert_eq!(scan.tail_bytes, 0, "torn tail was truncated on reopen");
    }

    #[test]
    fn reset_restarts_the_log_at_a_new_base() {
        let p = twal("reset");
        let mut w = open_writer(&p, 0, Durability::Always, None).unwrap();
        w.append_batch(&dumps_of(6, 1), 6, 0).unwrap();
        w.reset(6).unwrap();
        assert_eq!(w.durable_rows(), 6);
        w.append_batch(&dumps_of(2, 2), 2, 0).unwrap();
        let scan = scan_file(&p, None).unwrap();
        assert_eq!(scan.base_rows, 6);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.frames[0].seq, 0);
        assert_eq!(scan.frames[0].end_rows, 8);
    }

    #[test]
    fn wal_path_is_a_sibling_of_the_dump_dir() {
        let p = wal_path_for(Path::new("/data/clouds/tbl"));
        assert_eq!(p, Path::new("/data/clouds/tbl.wal"));
    }

    #[test]
    fn tokens_ride_frames_and_rebuild_the_ledger_on_reopen() {
        let p = twal("tokens");
        let mut w = open_writer(&p, 0, Durability::Always, None).unwrap();
        w.append_batch(&dumps_of(3, 1), 3, 71).unwrap();
        w.append_batch(&dumps_of(2, 2), 2, 0).unwrap(); // untagged
        w.append_batch(&dumps_of(4, 3), 4, 72).unwrap();
        assert_eq!(w.token_seen(71), Some(3));
        assert_eq!(w.token_seen(72), Some(9));
        assert_eq!(w.token_seen(0), None, "0 is the no-token sentinel");
        assert_eq!(w.token_seen(99), None);
        assert_eq!(w.ledger_len(), 2, "untagged frames take no ledger slot");
        drop(w);
        let scan = scan_file(&p, None).unwrap();
        assert_eq!(scan.frames[0].token, 71);
        assert_eq!(scan.frames[1].token, 0);
        assert_eq!(scan.frames[2].token, 72);
        // Reopen: the ledger comes back from the scanned frames.
        let w = open_writer(&p, 9, Durability::Always, None).unwrap();
        assert_eq!(w.token_seen(71), Some(3));
        assert_eq!(w.token_seen(72), Some(9));
    }

    #[test]
    fn reset_snapshots_the_ledger_into_the_header() {
        let p = twal("ledger_reset");
        let mut w = open_writer(&p, 0, Durability::Always, None).unwrap();
        w.append_batch(&dumps_of(5, 1), 5, 1001).unwrap();
        w.append_batch(&dumps_of(5, 2), 5, 1002).unwrap();
        // Seal: frames truncated away, tokens must survive in the header.
        w.reset(10).unwrap();
        assert!(w.token_seen(1001).is_some(), "token survives reset");
        assert!(w.token_seen(1002).is_some());
        drop(w);
        let scan = scan_file(&p, None).unwrap();
        assert_eq!(scan.ledger_tokens, vec![1001, 1002]);
        assert_eq!(scan.frames.len(), 0);
        // Reopen after the (sealed) restart: replayed tokens still dedup.
        let w = open_writer(&p, 10, Durability::Always, None).unwrap();
        assert_eq!(w.token_seen(1001), Some(10), "clamped to the new base");
        assert_eq!(w.token_seen(1002), Some(10));
    }

    #[test]
    fn ledger_eviction_respects_the_durable_watermark() {
        let p = twal("ledger_evict");
        let mut w = open_writer(
            &p,
            0,
            Durability::GroupCommit {
                max_batches: usize::MAX,
                max_delay: Duration::from_secs(3600),
            },
            None,
        )
        .unwrap();
        // Overfill the ledger with undurable tagged batches: nothing may
        // be evicted — a disconnected client could still retry any one.
        for i in 0..LEDGER_CAP + 10 {
            w.append_batch(&dumps_of(1, i as u8), 1, 10_000 + i as u64)
                .unwrap();
        }
        assert_eq!(
            w.ledger_len(),
            LEDGER_CAP + 10,
            "undurable tokens are never evicted"
        );
        // Once durable, the overflow is trimmed back to the cap…
        w.sync().unwrap();
        assert_eq!(w.ledger_len(), LEDGER_CAP);
        // …dropping the oldest tokens, keeping the newest.
        assert_eq!(w.token_seen(10_000), None, "oldest evicted");
        assert!(w.token_seen(10_000 + (LEDGER_CAP as u64 + 9)).is_some());
    }

    #[test]
    fn forged_ledger_count_is_rejected_without_allocating() {
        let p = twal("ledger_forged");
        let mut w = open_writer(&p, 7, Durability::Always, None).unwrap();
        w.append_batch(&dumps_of(2, 1), 2, 5).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&p).unwrap();
        // Forge a giant ledger count; must be rejected by the cap check
        // before any slice or allocation (and before the CRC even runs).
        bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(scan_frames(&bytes, None).is_err());
        // A count within the cap but past EOF is a short header, also an
        // error rather than a replay.
        bytes[16..20].copy_from_slice(&64u32.to_le_bytes());
        assert!(scan_frames(&bytes, None).is_err());
    }

    #[test]
    fn injected_disk_full_is_typed_storage_exhaustion() {
        let p = twal("diskfull");
        let fi = Arc::new(FaultInjector::new());
        fi.inject(FaultStage::WalAppend, None, FaultKind::DiskFull);
        let mut w = open_writer(&p, 0, Durability::Always, Some(fi.clone())).unwrap();
        let err = w.append_batch(&dumps_of(2, 1), 2, 0).unwrap_err();
        assert!(
            matches!(err, CoreError::StorageExhausted(_)),
            "got {err:?}"
        );
        assert!(!err.is_transient());
        // Nothing reached the medium: the next append succeeds cleanly
        // and the log has no damaged bytes.
        w.append_batch(&dumps_of(2, 2), 2, 0).unwrap();
        let scan = scan_file(&p, None).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.tail_bytes, 0);
    }
}
