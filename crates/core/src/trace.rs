//! Per-query span tracing: a lock-free, bounded ring-buffer tracer.
//!
//! [`metrics`](crate::metrics) answers *"how much time does stage X take
//! across the process?"*; this module answers *"what did **this** query
//! do?"*. Every traced query yields a tree of timed spans — one root
//! `query` span with one child per taxonomy [`Stage`] it executed, plus
//! per-morsel worker spans under the bbox scan — each carrying the thread
//! that ran it and its key attributes (rows in/out, degraded-probe and
//! fault-injection flags, stage-specific auxiliary counts).
//!
//! ## Ring buffer
//!
//! Finished spans land in a fixed-capacity ring ([`Tracer`]). Writers are
//! lock-free: a slot is claimed with one `fetch_add` on the head counter
//! and published with a per-slot sequence word (seqlock style: odd while
//! the words are being written, `2·claim+2` once stable). When the ring
//! wraps, the oldest spans are silently evicted — readers detect a lapped
//! slot because its sequence no longer matches the claim they are
//! scanning. [`Tracer::snapshot`] copies the stable suffix out without
//! blocking writers; torn slots are skipped, never mis-read.
//!
//! ## Lifecycle and cost
//!
//! Spans are RAII guards ([`SpanGuard`]): creation snapshots the parent
//! context from a thread-local, drop computes the duration and pushes one
//! record. Tracing is **off by default** and the disabled path is one
//! relaxed atomic load plus two thread-local reads per *stage* (never per
//! row — the scan kernels stay untouched, same discipline as the batched
//! `note_scans` counter flushes). Compiling the `trace` feature out
//! (`--no-default-features`) pins [`enabled`] to `false` so every guard
//! constant-folds to a no-op.
//!
//! Tracing turns on three ways, any of which activates a query root:
//! * process-wide: [`set_enabled`] (the harness does this for E9);
//! * per [`PointCloud`](crate::PointCloud): `pc.set_tracing(true)`;
//! * per thread/session: [`force_thread`] — the SQL layer holds this
//!   guard while executing a statement after `SET TRACE = ON`.
//!
//! Nested spans (imprint builds inside a probe, morsels inside a bbox
//! scan) activate automatically whenever an enclosing span is live on the
//! thread; worker threads adopt the spawning query's context explicitly
//! via [`adopt_parent`].
//!
//! ## Consumers
//!
//! * [`TraceSink::to_chrome_json`] — Chrome trace-event JSON (an array of
//!   `ph:"X"` duration events), loadable in `ui.perfetto.dev`; harness E9
//!   writes it as `BENCH_trace.json`.
//! * [`SlowQueryLog`] — a bounded ring of the K worst queries by wall
//!   time, each with its [`QueryProfile`] and span tree; surfaced via
//!   `PointCloud::slow_queries()` and SQL `SHOW SLOW QUERIES`.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::metrics::{QueryProfile, Stage};

/// Span flag: at least one imprint probe degraded to an exact scan.
pub const FLAG_DEGRADED: u64 = 1;
/// Span flag: a fault injection fired inside this span.
pub const FLAG_FAULT: u64 = 2;
/// Span flag: the query was cooperatively cancelled (deadline, `KILL`, or
/// memory-budget trip) inside or below this span.
pub const FLAG_CANCELLED: u64 = 4;

/// Spans the global ring holds before evicting the oldest. 16Ki spans ≈
/// 1.4 MiB; a traced 12M-point E9 query emits ~40 spans, so the window
/// covers hundreds of queries.
pub const DEFAULT_CAPACITY: usize = 16_384;

/// How many worst-by-wall-time queries [`SlowQueryLog`] retains.
pub const SLOW_LOG_K: usize = 8;

// ---------------------------------------------------------------------------
// Span identity
// ---------------------------------------------------------------------------

/// What a span measures: the query root or one taxonomy stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The root span of one query.
    Query,
    /// One execution of a taxonomy stage.
    Stage(Stage),
}

impl SpanKind {
    /// Display/export name (the stage name, or `"query"` for the root).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Stage(s) => s.name(),
        }
    }

    fn code(self) -> u64 {
        match self {
            SpanKind::Query => u8::MAX as u64,
            SpanKind::Stage(s) => Stage::ALL
                .iter()
                .position(|x| *x == s)
                .expect("stage in ALL") as u64,
        }
    }

    fn from_code(c: u64) -> Option<SpanKind> {
        if c == u8::MAX as u64 {
            return Some(SpanKind::Query);
        }
        Stage::ALL.get(c as usize).copied().map(SpanKind::Stage)
    }
}

/// One finished span as read back from the ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// The span's claim number in the ring — a process-wide, monotonically
    /// increasing record index (eviction order).
    pub seq: u64,
    /// Which query this span belongs to.
    pub trace_id: u64,
    /// Unique id of this span.
    pub span_id: u64,
    /// The enclosing span's id, `0` for roots.
    pub parent_id: u64,
    /// What the span measures.
    pub kind: SpanKind,
    /// Small dense id of the thread that ran the span.
    pub thread: u64,
    /// Start, in nanoseconds since the tracer epoch (first span ever).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Rows handed to the span (stage-specific; see DESIGN.md §3.7).
    pub rows_in: u64,
    /// Rows surviving the span.
    pub rows_out: u64,
    /// [`FLAG_DEGRADED`] / [`FLAG_FAULT`] / [`FLAG_CANCELLED`] bits.
    pub flags: u64,
    /// Stage-specific extra count: imprint probes answered (probe spans),
    /// scan-kernel rows examined (bbox spans), zero elsewhere.
    pub aux: u64,
}

// ---------------------------------------------------------------------------
// The ring
// ---------------------------------------------------------------------------

const SLOT_WORDS: usize = 11;

struct Slot {
    /// Seqlock word: `2·claim+1` while the slot is being written,
    /// `2·claim+2` once stable, `1` after [`Tracer::clear`].
    seq: AtomicU64,
    data: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(1),
            data: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bounded, lock-free span ring. One global instance
/// ([`Tracer::global`]) receives every span; tests build small private
/// rings with [`Tracer::with_capacity`] to exercise wrap-around.
pub struct Tracer {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

static GLOBAL_TRACER: OnceLock<Tracer> = OnceLock::new();

impl Tracer {
    /// A private ring holding at most `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Tracer {
        let capacity = capacity.max(1);
        Tracer {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// The process-wide ring every [`SpanGuard`] records into.
    pub fn global() -> &'static Tracer {
        GLOBAL_TRACER.get_or_init(|| Tracer::with_capacity(DEFAULT_CAPACITY))
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans recorded since process start (or the last [`Tracer::clear`]),
    /// including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Push one finished span. Lock-free: one `fetch_add` to claim a slot
    /// plus plain word stores published by the slot's sequence.
    pub fn push(&self, r: &SpanRecord) {
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(claim % self.slots.len() as u64) as usize];
        slot.seq.store(2 * claim + 1, Ordering::Release);
        let words = [
            r.trace_id,
            r.span_id,
            r.parent_id,
            r.kind.code(),
            r.thread,
            r.start_ns,
            r.dur_ns,
            r.rows_in,
            r.rows_out,
            r.flags,
            r.aux,
        ];
        for (cell, w) in slot.data.iter().zip(words) {
            cell.store(w, Ordering::Relaxed);
        }
        slot.seq.store(2 * claim + 2, Ordering::Release);
    }

    /// Copy the stable contents out, oldest first, without blocking
    /// writers. Slots being overwritten concurrently are skipped (they
    /// belong to spans newer than the observed head), never torn.
    pub fn snapshot(&self) -> TraceSink {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let mut spans = Vec::new();
        for claim in head.saturating_sub(cap)..head {
            let slot = &self.slots[(claim % cap) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != 2 * claim + 2 {
                continue; // mid-write, lapped, or cleared
            }
            let w: [u64; SLOT_WORDS] =
                std::array::from_fn(|i| slot.data[i].load(Ordering::Relaxed));
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq {
                continue; // overwritten while copying
            }
            let Some(kind) = SpanKind::from_code(w[3]) else {
                continue;
            };
            spans.push(SpanRecord {
                seq: claim,
                trace_id: w[0],
                span_id: w[1],
                parent_id: w[2],
                kind,
                thread: w[4],
                start_ns: w[5],
                dur_ns: w[6],
                rows_in: w[7],
                rows_out: w[8],
                flags: w[9],
                aux: w[10],
            });
        }
        TraceSink { spans }
    }

    /// Drop every recorded span and restart claim numbering. Like
    /// `MetricsRegistry::reset`, not linearisable against concurrent
    /// writers — for benchmarks and tests.
    pub fn clear(&self) {
        self.head.store(0, Ordering::Release);
        for s in self.slots.iter() {
            s.seq.store(1, Ordering::Release);
        }
    }
}

// ---------------------------------------------------------------------------
// Activation
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_TAG: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// The innermost live span on this thread: `(trace_id, span_id)`,
    /// `(0, 0)` when none.
    static CURRENT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
    /// Nesting depth of [`force_thread`] guards.
    static FORCED: Cell<u32> = const { Cell::new(0) };
    /// Small dense thread id, assigned on first span.
    static THREAD_TAG: Cell<u64> = const { Cell::new(0) };
}

/// Turn process-wide tracing on or off at runtime.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether process-wide tracing is on. Constant `false` when the `trace`
/// feature is compiled out.
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "trace") && ENABLED.load(Ordering::Relaxed)
}

/// RAII guard from [`force_thread`]: tracing stays active on this thread
/// until the guard drops.
#[derive(Debug)]
pub struct ThreadTraceGuard(());

impl Drop for ThreadTraceGuard {
    fn drop(&mut self) {
        FORCED.with(|f| f.set(f.get().saturating_sub(1)));
    }
}

/// Activate tracing for the current thread (nests). The SQL session layer
/// holds this guard while executing statements after `SET TRACE = ON`.
pub fn force_thread() -> ThreadTraceGuard {
    FORCED.with(|f| f.set(f.get() + 1));
    ThreadTraceGuard(())
}

/// Whether a span started now on this thread would record: the feature is
/// compiled in and the process flag, a thread guard, or an enclosing live
/// span activates it.
#[inline]
fn is_active() -> bool {
    cfg!(feature = "trace")
        && (ENABLED.load(Ordering::Relaxed)
            || CURRENT.with(|c| c.get().1 != 0)
            || FORCED.with(|f| f.get() > 0))
}

fn thread_tag() -> u64 {
    THREAD_TAG.with(|t| {
        let mut v = t.get();
        if v == 0 {
            v = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
            t.set(v);
        }
        v
    })
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

// ---------------------------------------------------------------------------
// Span guards
// ---------------------------------------------------------------------------

struct ActiveSpan {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    kind: SpanKind,
    start: Instant,
    start_ns: u64,
    rows_in: u64,
    rows_out: u64,
    flags: u64,
    aux: u64,
    prev: (u64, u64),
}

/// RAII span handle: finishing (drop) computes the duration and records
/// into the global ring. Inert — a handful of no-op method calls — when
/// tracing is not active.
#[derive(Default)]
pub struct SpanGuard(Option<ActiveSpan>);

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(a) => write!(f, "SpanGuard({} #{})", a.kind.name(), a.span_id),
            None => write!(f, "SpanGuard(inert)"),
        }
    }
}

fn span_impl(kind: SpanKind, force: bool) -> SpanGuard {
    if !cfg!(feature = "trace") || !(force || is_active()) {
        return SpanGuard(None);
    }
    let prev = CURRENT.with(Cell::get);
    let trace_id = if prev.0 != 0 {
        prev.0
    } else {
        NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
    };
    let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    CURRENT.with(|c| c.set((trace_id, span_id)));
    let e = epoch();
    SpanGuard(Some(ActiveSpan {
        trace_id,
        span_id,
        parent_id: prev.1,
        kind,
        start: Instant::now(),
        start_ns: e.elapsed().as_nanos() as u64,
        rows_in: 0,
        rows_out: 0,
        flags: 0,
        aux: 0,
        prev,
    }))
}

/// Open a span. Records only if tracing is active on this thread (process
/// flag, thread guard, or an enclosing live span).
pub fn span(kind: SpanKind) -> SpanGuard {
    span_impl(kind, false)
}

/// Open a root span, additionally activated by a caller-side flag (the
/// per-`PointCloud` toggle): records if `force` *or* tracing is active.
pub fn root_span_if(force: bool, kind: SpanKind) -> SpanGuard {
    span_impl(kind, force)
}

/// An always-inert guard, for sites that only sometimes have a span.
pub fn inert() -> SpanGuard {
    SpanGuard(None)
}

impl SpanGuard {
    /// Whether this guard will record on drop.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// `(trace_id, span_id)` for handing to worker threads, `None` when
    /// inert.
    pub fn ctx(&self) -> Option<(u64, u64)> {
        self.0.as_ref().map(|a| (a.trace_id, a.span_id))
    }

    /// The query this span belongs to, `None` when inert.
    pub fn trace_id(&self) -> Option<u64> {
        self.0.as_ref().map(|a| a.trace_id)
    }

    /// Record input/output cardinalities.
    pub fn set_rows(&mut self, rows_in: u64, rows_out: u64) {
        if let Some(a) = &mut self.0 {
            a.rows_in = rows_in;
            a.rows_out = rows_out;
        }
    }

    /// Record the stage-specific auxiliary count.
    pub fn set_aux(&mut self, aux: u64) {
        if let Some(a) = &mut self.0 {
            a.aux = aux;
        }
    }

    /// Set [`FLAG_DEGRADED`] / [`FLAG_FAULT`] bits.
    pub fn add_flags(&mut self, flags: u64) {
        if let Some(a) = &mut self.0 {
            a.flags |= flags;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.0.take() {
            CURRENT.with(|c| c.set(a.prev));
            Tracer::global().push(&SpanRecord {
                seq: 0, // assigned by the ring
                trace_id: a.trace_id,
                span_id: a.span_id,
                parent_id: a.parent_id,
                kind: a.kind,
                thread: thread_tag(),
                start_ns: a.start_ns,
                dur_ns: a.start.elapsed().as_nanos() as u64,
                rows_in: a.rows_in,
                rows_out: a.rows_out,
                flags: a.flags,
                aux: a.aux,
            });
        }
    }
}

/// RAII guard from [`adopt_parent`].
#[derive(Debug)]
pub struct ParentScope {
    prev: (u64, u64),
}

impl Drop for ParentScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Adopt a span context on the current thread — worker threads call this
/// so their morsel spans parent under the spawning query's stage span.
pub fn adopt_parent(trace_id: u64, span_id: u64) -> ParentScope {
    ParentScope {
        prev: CURRENT.with(|c| c.replace((trace_id, span_id))),
    }
}

// ---------------------------------------------------------------------------
// Consumers
// ---------------------------------------------------------------------------

/// A copied-out set of spans with exporters.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    /// Spans in ring (claim) order, oldest first.
    pub spans: Vec<SpanRecord>,
}

impl TraceSink {
    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the sink holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Only the spans of one query.
    pub fn for_trace(&self, trace_id: u64) -> TraceSink {
        TraceSink {
            spans: self
                .spans
                .iter()
                .filter(|s| s.trace_id == trace_id)
                .copied()
                .collect(),
        }
    }

    /// Render as Chrome trace-event JSON: an array of `ph:"X"` complete
    /// duration events with `pid`/`tid`/`ts`/`dur` (microseconds) and the
    /// span attributes under `args`. Loadable in `ui.perfetto.dev` or
    /// `chrome://tracing`. Hand-rolled — the tree deliberately has no
    /// serde.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 * self.spans.len() + 8);
        out.push_str("[\n");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"cat\": \"lidardb\", \"ph\": \"X\", \"pid\": 1, \
                 \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\
                 \"trace_id\": {}, \"span_id\": {}, \"parent_id\": {}, \
                 \"rows_in\": {}, \"rows_out\": {}, \"degraded\": {}, \
                 \"fault\": {}, \"cancelled\": {}, \"aux\": {}}}}}{}\n",
                s.kind.name(),
                s.thread,
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
                s.trace_id,
                s.span_id,
                s.parent_id,
                s.rows_in,
                s.rows_out,
                u64::from(s.flags & FLAG_DEGRADED != 0),
                u64::from(s.flags & FLAG_FAULT != 0),
                u64::from(s.flags & FLAG_CANCELLED != 0),
                s.aux,
                if i + 1 < self.spans.len() { "," } else { "" }
            ));
        }
        out.push_str("]\n");
        out
    }

    /// Compact single-line tree rendering: spans in record order, each
    /// prefixed with one `>` per ancestor *present in the sink*, as
    /// `name:rows_out r:milliseconds` (cancelled spans carry a trailing
    /// `[cancelled]`). Parents evicted from the ring simply contribute no
    /// depth — links never dangle into wrong nodes.
    pub fn render_tree(&self) -> String {
        use std::collections::HashMap;
        let depth_of: HashMap<u64, usize> = {
            let mut m = HashMap::new();
            // Record order is close-time order, so parents may close after
            // children; resolve depths by walking ancestors on demand.
            let by_id: HashMap<u64, &SpanRecord> =
                self.spans.iter().map(|s| (s.span_id, s)).collect();
            for s in &self.spans {
                let mut d = 0;
                let mut p = s.parent_id;
                while p != 0 {
                    match by_id.get(&p) {
                        Some(ps) => {
                            d += 1;
                            p = ps.parent_id;
                        }
                        None => break, // evicted ancestor
                    }
                }
                m.insert(s.span_id, d);
            }
            m
        };
        let mut parts = Vec::with_capacity(self.spans.len());
        for s in &self.spans {
            parts.push(format!(
                "{}{}:{}r:{:.1}ms{}",
                ">".repeat(depth_of.get(&s.span_id).copied().unwrap_or(0)),
                s.kind.name(),
                s.rows_out,
                s.dur_ns as f64 / 1e6,
                if s.flags & FLAG_CANCELLED != 0 { "[cancelled]" } else { "" },
            ));
        }
        parts.join(" ")
    }
}

/// One entry of the slow-query log.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The query's trace id.
    pub trace_id: u64,
    /// Total wall-clock seconds (the ranking key).
    pub seconds: f64,
    /// Seconds spent waiting in the admission queue before execution
    /// started — part of `seconds`, recorded separately so a slow entry
    /// can be attributed to queueing vs scanning.
    pub queue_wait_seconds: f64,
    /// Result cardinality.
    pub result_rows: usize,
    /// The query's full profile (Explain + stage samples).
    pub profile: QueryProfile,
    /// The query's span tree as captured at completion.
    pub spans: Vec<SpanRecord>,
}

/// A bounded log of the K worst queries by wall time. Queries are entered
/// only while traced — the untraced path never touches the log's lock.
#[derive(Debug)]
pub struct SlowQueryLog {
    entries: parking_lot::Mutex<Vec<SlowQuery>>,
    k: usize,
}

static GLOBAL_SLOW_LOG: OnceLock<SlowQueryLog> = OnceLock::new();

impl SlowQueryLog {
    /// A private log keeping the `k` worst entries.
    pub fn with_capacity(k: usize) -> SlowQueryLog {
        SlowQueryLog {
            entries: parking_lot::Mutex::new(Vec::new()),
            k: k.max(1),
        }
    }

    /// The process-wide log traced queries report into.
    pub fn global() -> &'static SlowQueryLog {
        GLOBAL_SLOW_LOG.get_or_init(|| SlowQueryLog::with_capacity(SLOW_LOG_K))
    }

    /// Enter one finished query; keeps the K worst by `seconds`.
    pub fn record(&self, q: SlowQuery) {
        let mut entries = self.entries.lock();
        entries.push(q);
        entries.sort_by(|a, b| b.seconds.total_cmp(&a.seconds));
        entries.truncate(self.k);
    }

    /// The retained queries, worst first.
    pub fn worst(&self) -> Vec<SlowQuery> {
        self.entries.lock().clone()
    }

    /// Drop every entry (benchmarks and tests).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq_hint: u64, trace_id: u64, span_id: u64, parent_id: u64) -> SpanRecord {
        SpanRecord {
            seq: seq_hint,
            trace_id,
            span_id,
            parent_id,
            kind: SpanKind::Stage(Stage::BboxScan),
            thread: 1,
            start_ns: span_id * 100,
            dur_ns: 50,
            rows_in: 10,
            rows_out: 5,
            flags: 0,
            aux: 0,
        }
    }

    #[test]
    fn kind_codes_round_trip() {
        for k in Stage::ALL.map(SpanKind::Stage).into_iter().chain([SpanKind::Query]) {
            assert_eq!(SpanKind::from_code(k.code()), Some(k), "{}", k.name());
        }
        assert_eq!(SpanKind::from_code(99), None);
    }

    #[test]
    fn ring_round_trips_below_capacity() {
        let t = Tracer::with_capacity(16);
        for i in 1..=5u64 {
            t.push(&rec(0, 1, i, i - 1));
        }
        let sink = t.snapshot();
        assert_eq!(sink.len(), 5);
        assert_eq!(
            sink.spans.iter().map(|s| s.span_id).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5],
            "oldest first"
        );
        assert_eq!(sink.spans[0].seq, 0);
        assert_eq!(sink.spans[4].parent_id, 4);
    }

    #[test]
    fn ring_wraps_and_evicts_oldest() {
        // The satellite regression test: a capacity-8 ring fed a 20-span
        // parent chain keeps exactly the newest 8, and the surviving
        // parent links still form a consistent (suffix of the) tree.
        let t = Tracer::with_capacity(8);
        for i in 1..=20u64 {
            t.push(&rec(0, 7, i, i - 1)); // span i's parent is span i-1
        }
        assert_eq!(t.recorded(), 20);
        let sink = t.snapshot();
        assert_eq!(sink.len(), 8, "bounded at capacity");
        let ids: Vec<u64> = sink.spans.iter().map(|s| s.span_id).collect();
        assert_eq!(ids, (13..=20).collect::<Vec<_>>(), "oldest 12 evicted");
        assert_eq!(
            sink.spans.iter().map(|s| s.seq).collect::<Vec<_>>(),
            (12..20).collect::<Vec<_>>(),
            "claim numbers keep counting across the wrap"
        );
        // Parent-link consistency after the wrap: every surviving span's
        // parent is either also present (and older) or evicted — never a
        // newer span, never a bogus id.
        for s in &sink.spans {
            if let Some(p) = sink.spans.iter().find(|p| p.span_id == s.parent_id) {
                assert!(p.seq < s.seq, "parent recorded before child");
            } else {
                assert!(
                    s.parent_id < 13,
                    "absent parent {} must be an evicted (older) span",
                    s.parent_id
                );
            }
        }
        // The tree renderer treats evicted ancestors as depth roots.
        let tree = sink.render_tree();
        assert!(tree.starts_with("bbox_scan:5r:"), "{tree}");
        assert!(tree.contains(">bbox_scan"), "{tree}");
    }

    #[test]
    fn clear_resets_claims_and_contents() {
        let t = Tracer::with_capacity(4);
        for i in 1..=9u64 {
            t.push(&rec(0, 1, i, 0));
        }
        t.clear();
        assert_eq!(t.snapshot().len(), 0);
        assert_eq!(t.recorded(), 0);
        t.push(&rec(0, 1, 42, 0));
        let sink = t.snapshot();
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.spans[0].span_id, 42);
        assert_eq!(sink.spans[0].seq, 0);
    }

    #[test]
    fn concurrent_pushes_are_not_torn() {
        // 4 threads × 2000 pushes through a 64-slot ring: every record a
        // snapshot returns must be internally consistent (all words from
        // the same push), and the final snapshot holds exactly the last
        // `capacity` claims.
        let t = Tracer::with_capacity(64);
        std::thread::scope(|s| {
            for th in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..2000u64 {
                        let id = th * 10_000 + i;
                        t.push(&SpanRecord {
                            seq: 0,
                            trace_id: id,
                            span_id: id,
                            parent_id: id,
                            kind: SpanKind::Query,
                            thread: th,
                            start_ns: id,
                            dur_ns: id,
                            rows_in: id,
                            rows_out: id,
                            flags: 0,
                            aux: id,
                        });
                    }
                });
            }
        });
        assert_eq!(t.recorded(), 8000);
        let sink = t.snapshot();
        assert_eq!(sink.len(), 64);
        for s in &sink.spans {
            // Internal consistency: every field carries the same id.
            let id = s.trace_id;
            assert!(
                s.span_id == id
                    && s.parent_id == id
                    && s.start_ns == id
                    && s.dur_ns == id
                    && s.rows_in == id
                    && s.rows_out == id
                    && s.aux == id,
                "torn record: {s:?}"
            );
        }
    }

    #[test]
    fn span_guards_nest_and_record() {
        let _g = force_thread();
        let before = Tracer::global().recorded();
        let trace_id;
        {
            let mut root = span(SpanKind::Query);
            assert!(root.is_recording());
            trace_id = root.trace_id().unwrap();
            root.set_rows(100, 10);
            {
                let mut child = span(SpanKind::Stage(Stage::ImprintProbe));
                assert_eq!(child.trace_id(), Some(trace_id), "inherits the trace");
                child.add_flags(FLAG_DEGRADED);
            }
        }
        assert!(Tracer::global().recorded() >= before + 2);
        let sink = Tracer::global().snapshot().for_trace(trace_id);
        assert_eq!(sink.len(), 2);
        let child = &sink.spans[0]; // children close first
        let root = &sink.spans[1];
        assert_eq!(root.kind, SpanKind::Query);
        assert_eq!(root.parent_id, 0);
        assert_eq!(root.rows_in, 100);
        assert_eq!(child.kind, SpanKind::Stage(Stage::ImprintProbe));
        assert_eq!(child.parent_id, root.span_id);
        assert_eq!(child.flags, FLAG_DEGRADED);
    }

    #[test]
    fn spans_are_inert_when_inactive() {
        // No global flag, no thread guard, no enclosing span on this
        // thread: the guard must not record.
        let g = span(SpanKind::Query);
        assert!(!g.is_recording());
        assert_eq!(g.ctx(), None);
    }

    #[test]
    fn adopt_parent_links_across_threads() {
        let _g = force_thread();
        let root = span(SpanKind::Query);
        let (tid, sid) = root.ctx().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                let _p = adopt_parent(tid, sid);
                let m = span(SpanKind::Stage(Stage::Morsel));
                assert_eq!(m.trace_id(), Some(tid));
            });
        });
        drop(root);
        let sink = Tracer::global().snapshot().for_trace(tid);
        let morsel = sink
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Stage(Stage::Morsel))
            .expect("worker span present");
        assert_eq!(morsel.parent_id, sid);
        let root_rec = sink.spans.iter().find(|s| s.kind == SpanKind::Query).unwrap();
        assert_ne!(morsel.thread, root_rec.thread, "worker ran on its own thread");
    }

    #[test]
    fn chrome_json_shape() {
        let sink = TraceSink {
            spans: vec![rec(3, 9, 2, 1)],
        };
        let json = sink.to_chrome_json();
        assert!(json.trim_start().starts_with('['), "{json}");
        assert!(json.contains("\"name\": \"bbox_scan\""), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(json.contains("\"pid\": 1"), "{json}");
        assert!(json.contains("\"tid\": 1"), "{json}");
        assert!(json.contains("\"ts\": 0.200"), "{json}");
        assert!(json.contains("\"dur\": 0.050"), "{json}");
        assert!(json.contains("\"rows_out\": 5"), "{json}");
        assert!(json.contains("\"cancelled\": 0"), "{json}");
    }

    #[test]
    fn cancelled_flag_renders_in_json_and_tree() {
        let mut r = rec(0, 9, 2, 0);
        r.flags = FLAG_CANCELLED | FLAG_FAULT;
        let sink = TraceSink { spans: vec![r] };
        let json = sink.to_chrome_json();
        assert!(json.contains("\"cancelled\": 1"), "{json}");
        assert!(json.contains("\"fault\": 1"), "{json}");
        assert!(json.contains("\"degraded\": 0"), "{json}");
        let tree = sink.render_tree();
        assert!(tree.contains("[cancelled]"), "{tree}");
    }

    #[test]
    fn slow_log_keeps_k_worst() {
        let log = SlowQueryLog::with_capacity(3);
        for (i, secs) in [0.5, 0.1, 0.9, 0.3, 0.7].into_iter().enumerate() {
            log.record(SlowQuery {
                trace_id: i as u64 + 1,
                seconds: secs,
                queue_wait_seconds: secs / 10.0,
                result_rows: i,
                profile: QueryProfile::default(),
                spans: Vec::new(),
            });
        }
        let worst = log.worst();
        assert_eq!(worst.len(), 3);
        let secs: Vec<f64> = worst.iter().map(|q| q.seconds).collect();
        assert_eq!(secs, vec![0.9, 0.7, 0.5], "worst first, 0.1/0.3 dropped");
        log.clear();
        assert!(log.worst().is_empty());
    }
}
