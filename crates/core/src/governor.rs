//! Query lifecycle governance: deadlines, cooperative cancellation,
//! per-query memory budgets, and admission control / load shedding.
//!
//! Three cooperating pieces (DESIGN.md §3.8):
//!
//! * [`CancelToken`] — a shareable cancellation handle combining a wall
//!   clock deadline, a manual kill switch (`KILL <id>`), and a
//!   memory-budget trip. The query path polls it at bounded-stride
//!   checkpoints — morsel boundaries in `core::exec` and
//!   [`CHECKPOINT_STRIDE`]-row chunks inside the serial scan/refine
//!   loops — so cancellation latency is bounded by one stride of work,
//!   never by the whole query.
//! * [`MemBudget`] — byte accounting charged at the query's
//!   materialisation sites (candidate runs, selection rows, grid-refine
//!   buffers); exceeding the budget trips the token and the query
//!   returns [`CoreError::Cancelled`] instead of OOM-ing the process.
//! * [`AdmissionController`] — a process-wide in-flight cap with a
//!   bounded FIFO wait queue (ticketed, so admission order is fair); a
//!   full queue sheds immediately with [`CoreError::Overloaded`], and a
//!   queued entry whose wait deadline expires is shed the same way.
//!
//! Everything here is plain `std::sync` state: the module compiles, and
//! the checkpoints stay live, with the `trace` feature off.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::error::{CancelReason, CoreError};
use crate::fault::{FaultInjector, FaultKind, FaultStage};
use crate::metrics::{MetricsRegistry, Stage};

/// Maximum rows a scan/refine loop may process between two cancellation
/// checkpoints. One stride of the cheapest kernel (the exact bbox scan)
/// is well under a millisecond, which bounds cancellation latency.
pub const CHECKPOINT_STRIDE: usize = 1 << 16;

// ------------------------------------------------------------ CancelToken

const LIVE: u8 = 0;

fn reason_to_code(r: CancelReason) -> u8 {
    match r {
        CancelReason::Deadline => 1,
        CancelReason::Killed => 2,
        CancelReason::MemBudget => 3,
    }
}

fn code_to_reason(c: u8) -> Option<CancelReason> {
    match c {
        1 => Some(CancelReason::Deadline),
        2 => Some(CancelReason::Killed),
        3 => Some(CancelReason::MemBudget),
        _ => None,
    }
}

#[derive(Debug)]
struct TokenInner {
    start: Instant,
    /// Deadline as nanoseconds after `start`; 0 = none.
    deadline_ns: AtomicU64,
    /// [`LIVE`] or a `CancelReason` code. First trip wins.
    tripped: AtomicU8,
    /// Memory budget in bytes; 0 = unlimited.
    budget: AtomicU64,
    /// Bytes charged against the budget so far.
    charged: AtomicU64,
}

/// Shareable cancellation handle for one query.
///
/// Cheap to clone (one `Arc`); every execution thread of the query polls
/// the same token. The fast path of [`CancelToken::check`] is one relaxed
/// load plus, when a deadline is set, one `Instant::now()` — called only
/// at bounded strides, never per row.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A live token with no deadline and no memory budget.
    pub fn new() -> Self {
        Self::with(None, None)
    }

    /// A live token with an optional deadline and memory budget.
    pub fn with(deadline: Option<Duration>, budget: Option<u64>) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                start: Instant::now(),
                deadline_ns: AtomicU64::new(
                    deadline.map_or(0, |d| (d.as_nanos() as u64).max(1)),
                ),
                tripped: AtomicU8::new(LIVE),
                budget: AtomicU64::new(budget.unwrap_or(0)),
                charged: AtomicU64::new(0),
            }),
        }
    }

    /// Time since the token (and its query) started.
    pub fn elapsed(&self) -> Duration {
        self.inner.start.elapsed()
    }

    /// Trip the token with `reason`. The first trip wins; later trips are
    /// no-ops. Returns whether this call performed the transition (the
    /// governor metrics are bumped exactly once, here).
    pub fn trip(&self, reason: CancelReason) -> bool {
        let won = self
            .inner
            .tripped
            .compare_exchange(LIVE, reason_to_code(reason), Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if won {
            let m = MetricsRegistry::global();
            match reason {
                CancelReason::Deadline => m.queries_timed_out.inc(),
                CancelReason::Killed => m.queries_killed.inc(),
                CancelReason::MemBudget => m.budget_trips.inc(),
            }
        }
        won
    }

    /// Manually kill the query (`KILL <id>`, [`crate::PointCloud::kill_query`]).
    pub fn kill(&self) -> bool {
        self.trip(CancelReason::Killed)
    }

    /// Why the token tripped, if it has.
    pub fn reason(&self) -> Option<CancelReason> {
        code_to_reason(self.inner.tripped.load(Ordering::Acquire))
    }

    /// Whether the token has tripped (without constructing the error).
    pub fn is_cancelled(&self) -> bool {
        self.reason().is_some()
    }

    /// Poll the token: `Ok(())` while live, the query's terminal
    /// [`CoreError::Cancelled`] once tripped. Also trips the token itself
    /// when the deadline has expired, so deadline enforcement needs no
    /// background thread.
    pub fn check(&self, partial_rows: usize) -> Result<(), CoreError> {
        let code = self.inner.tripped.load(Ordering::Relaxed);
        if code == LIVE {
            let d = self.inner.deadline_ns.load(Ordering::Relaxed);
            if d == 0 || (self.elapsed().as_nanos() as u64) < d {
                return Ok(());
            }
            self.trip(CancelReason::Deadline);
        }
        Err(self.cancelled(partial_rows))
    }

    /// Charge `bytes` against the memory budget; `false` trips the token.
    fn try_charge(&self, bytes: u64) -> bool {
        let budget = self.inner.budget.load(Ordering::Relaxed);
        if budget == 0 {
            return true;
        }
        let prev = self.inner.charged.fetch_add(bytes, Ordering::Relaxed);
        if prev.saturating_add(bytes) > budget {
            self.trip(CancelReason::MemBudget);
            return false;
        }
        true
    }

    /// The byte-accounting view of this token.
    pub fn budget(&self) -> MemBudget {
        MemBudget {
            token: self.clone(),
        }
    }

    /// Build the terminal error for this token. Display deliberately
    /// omits `elapsed` (carried for programmatic use) so a serial and a
    /// parallel cancellation of the same query render identically.
    pub fn cancelled(&self, partial_rows: usize) -> CoreError {
        CoreError::Cancelled {
            reason: self.reason().unwrap_or(CancelReason::Killed),
            elapsed: self.elapsed(),
            partial_rows,
        }
    }
}

// -------------------------------------------------------------- MemBudget

/// Byte-accounting handle for one query's materialisations.
///
/// Charge sites (see `core::query`): the candidate-run list after the
/// imprint probe, the selection `rows` vector after the exact scan and
/// after refinement, and the per-row cell-id buffer of the grid refiner.
/// The very allocation that would burst the budget is charged *before*
/// the next stage grows it further, so peak overshoot is bounded by one
/// stage's materialisation.
#[derive(Clone, Debug)]
pub struct MemBudget {
    token: CancelToken,
}

impl MemBudget {
    /// Charge `bytes`; on an exceeded budget the token trips and the
    /// query's [`CoreError::Cancelled`] comes back.
    pub fn charge(&self, bytes: u64, partial_rows: usize) -> Result<(), CoreError> {
        if self.token.try_charge(bytes) {
            Ok(())
        } else {
            Err(self.token.cancelled(partial_rows))
        }
    }

    /// Bytes charged so far.
    pub fn used(&self) -> u64 {
        self.token.inner.charged.load(Ordering::Relaxed)
    }

    /// The configured limit (0 = unlimited).
    pub fn limit(&self) -> u64 {
        self.token.inner.budget.load(Ordering::Relaxed)
    }
}

// -------------------------------------------------------------- GovernCtx

/// Per-query governance context threaded through the execution paths.
///
/// Bundles the [`CancelToken`], the optional [`FaultInjector`] (so the
/// `Cancel`/`Stall` fault kinds fire at real checkpoints), and a shared
/// partial-row counter that gives `CoreError::Cancelled::partial_rows`
/// a meaningful value from any thread.
#[derive(Clone, Debug, Default)]
pub struct GovernCtx {
    token: CancelToken,
    fault: Option<Arc<FaultInjector>>,
    partial: Arc<AtomicUsize>,
    queue_wait: Duration,
}

impl GovernCtx {
    /// Context for a governed query.
    pub fn new(token: CancelToken, fault: Option<Arc<FaultInjector>>) -> Self {
        GovernCtx {
            token,
            fault,
            partial: Arc::new(AtomicUsize::new(0)),
            queue_wait: Duration::ZERO,
        }
    }

    /// Attach the admission queue wait this query paid before starting
    /// (from [`AdmissionPermit::queue_wait`]), so the slow-query log and
    /// `sys.queries` can separate "slow because queued" from "slow
    /// because scanning".
    pub fn with_queue_wait(mut self, wait: Duration) -> Self {
        self.queue_wait = wait;
        self
    }

    /// Admission queue wait paid before this query started.
    pub fn queue_wait(&self) -> Duration {
        self.queue_wait
    }

    /// Context with no limits and no faults — the ungoverned default.
    /// Checkpoints against it are one relaxed load.
    pub fn ungoverned() -> Self {
        Self::default()
    }

    /// The query's cancellation token.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// The query's memory budget handle.
    pub fn mem(&self) -> MemBudget {
        self.token.budget()
    }

    /// Record `n` rows materialised toward `partial_rows`.
    pub fn add_rows(&self, n: usize) {
        if n > 0 {
            self.partial.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Rows materialised so far.
    pub fn partial_rows(&self) -> usize {
        self.partial.load(Ordering::Relaxed)
    }

    /// One cooperative checkpoint. `site` names the surrounding stage for
    /// fault-rule targeting (`FaultStage::QueryCheckpoint`): an armed
    /// `Cancel` rule kills the token here, a `Stall(ms)` rule sleeps so a
    /// deadline expires deterministically mid-stage.
    pub fn checkpoint(&self, site: &str) -> Result<(), CoreError> {
        if let Some(fi) = &self.fault {
            match fi.fire(FaultStage::QueryCheckpoint, site) {
                Some(FaultKind::Cancel) => {
                    self.token.trip(CancelReason::Killed);
                }
                Some(FaultKind::Stall(ms)) => {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                _ => {}
            }
        }
        self.token.check(self.partial_rows())
    }

    /// Charge `bytes` against the memory budget at this point of the
    /// query (see [`MemBudget`] for the charge sites).
    pub fn charge(&self, bytes: u64) -> Result<(), CoreError> {
        self.mem().charge(bytes, self.partial_rows())
    }
}

// ---------------------------------------------------- AdmissionController

/// RAII in-flight slot; dropping it releases the slot and wakes the next
/// queued query.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    controller: Option<&'a AdmissionController>,
    queue_wait: Duration,
}

impl AdmissionPermit<'_> {
    /// How long this query waited in the admission queue before getting
    /// its slot ([`Duration::ZERO`] when it was admitted immediately).
    pub fn queue_wait(&self) -> Duration {
        self.queue_wait
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        if let Some(c) = self.controller {
            let mut st = c.state.lock().unwrap();
            st.in_flight = st.in_flight.saturating_sub(1);
            publish_admission_gauges(&st);
            drop(st);
            c.cv.notify_all();
        }
    }
}

/// Mirror the admission state into the metrics gauges (last-writer-wins,
/// same convention as `table_rows`): the recorder and `/metrics` read
/// queue depth without taking the admission lock.
fn publish_admission_gauges(st: &AdmState) {
    let m = MetricsRegistry::global();
    m.admission_in_flight.set(st.in_flight as u64);
    m.admission_queued.set(st.queue.len() as u64);
}

#[derive(Default)]
struct AdmState {
    in_flight: usize,
    /// Tickets of waiting queries, FIFO.
    queue: VecDeque<u64>,
    next_ticket: u64,
}

/// Process-wide semaphore-style admission control with a bounded FIFO
/// wait queue.
///
/// * `max_in_flight` queries run; the rest wait in ticket order.
/// * At most `max_queue` queries wait; beyond that, [`admit`] sheds
///   immediately with [`CoreError::Overloaded`].
/// * A queued entry whose `queue_deadline` expires is shed the same way
///   (it never starts, so it cannot return a partial result).
///
/// The [global](AdmissionController::global) instance starts unlimited;
/// callers opt in via [`set_limits`](AdmissionController::set_limits) or
/// by installing a private controller on a `PointCloud`.
pub struct AdmissionController {
    max_in_flight: AtomicUsize,
    max_queue: AtomicUsize,
    state: Mutex<AdmState>,
    cv: Condvar,
}

impl fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdmissionController")
            .field("max_in_flight", &self.max_in_flight.load(Ordering::Relaxed))
            .field("max_queue", &self.max_queue.load(Ordering::Relaxed))
            .field("in_flight", &self.in_flight())
            .field("queued", &self.queued())
            .finish()
    }
}

impl AdmissionController {
    /// A controller admitting `max_in_flight` concurrent queries with a
    /// wait queue of `max_queue` entries.
    pub fn new(max_in_flight: usize, max_queue: usize) -> Self {
        AdmissionController {
            max_in_flight: AtomicUsize::new(max_in_flight.max(1)),
            max_queue: AtomicUsize::new(max_queue),
            state: Mutex::new(AdmState::default()),
            cv: Condvar::new(),
        }
    }

    /// A controller that admits everything (no cap, no queue, no lock on
    /// the admit fast path).
    pub fn unlimited() -> Self {
        AdmissionController {
            max_in_flight: AtomicUsize::new(usize::MAX),
            max_queue: AtomicUsize::new(0),
            state: Mutex::new(AdmState::default()),
            cv: Condvar::new(),
        }
    }

    /// The process-wide controller (unlimited until configured).
    pub fn global() -> &'static AdmissionController {
        static GLOBAL: OnceLock<AdmissionController> = OnceLock::new();
        GLOBAL.get_or_init(AdmissionController::unlimited)
    }

    /// Reconfigure the caps. `usize::MAX` in-flight disables admission
    /// control entirely.
    pub fn set_limits(&self, max_in_flight: usize, max_queue: usize) {
        self.max_in_flight
            .store(max_in_flight.max(1), Ordering::Relaxed);
        self.max_queue.store(max_queue, Ordering::Relaxed);
        self.cv.notify_all();
    }

    /// Queries currently executing under this controller.
    pub fn in_flight(&self) -> usize {
        self.state.lock().unwrap().in_flight
    }

    /// Queries currently waiting in the queue.
    pub fn queued(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// The configured `(max_in_flight, max_queue)` caps. `usize::MAX`
    /// in-flight means admission control is disabled.
    pub fn limits(&self) -> (usize, usize) {
        (
            self.max_in_flight.load(Ordering::Relaxed),
            self.max_queue.load(Ordering::Relaxed),
        )
    }

    /// Acquire an execution slot, waiting in FIFO order for at most
    /// `queue_deadline` (forever if `None`). Sheds with
    /// [`CoreError::Overloaded`] when the queue is full or the wait
    /// deadline expires. Waits longer than zero are recorded under the
    /// `governor` stage so queueing shows up in the latency histograms.
    pub fn admit(&self, queue_deadline: Option<Duration>) -> Result<AdmissionPermit<'_>, CoreError> {
        if self.max_in_flight.load(Ordering::Relaxed) == usize::MAX {
            return Ok(AdmissionPermit {
                controller: None,
                queue_wait: Duration::ZERO,
            });
        }
        let give_up_at = queue_deadline.map(|d| Instant::now() + d);
        let mut st = self.state.lock().unwrap();
        if st.queue.is_empty() && st.in_flight < self.max_in_flight.load(Ordering::Relaxed) {
            st.in_flight += 1;
            publish_admission_gauges(&st);
            return Ok(AdmissionPermit {
                controller: Some(self),
                queue_wait: Duration::ZERO,
            });
        }
        if st.queue.len() >= self.max_queue.load(Ordering::Relaxed) {
            MetricsRegistry::global().queries_shed.inc();
            return Err(CoreError::Overloaded);
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        publish_admission_gauges(&st);
        let waited_from = Instant::now();
        loop {
            if st.queue.front() == Some(&ticket)
                && st.in_flight < self.max_in_flight.load(Ordering::Relaxed)
            {
                st.queue.pop_front();
                st.in_flight += 1;
                publish_admission_gauges(&st);
                drop(st);
                self.cv.notify_all();
                let waited = waited_from.elapsed();
                MetricsRegistry::global().record_stage(Stage::Governor, 0, waited);
                return Ok(AdmissionPermit {
                    controller: Some(self),
                    queue_wait: waited,
                });
            }
            match give_up_at {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        st.queue.retain(|&t| t != ticket);
                        publish_admission_gauges(&st);
                        drop(st);
                        self.cv.notify_all();
                        MetricsRegistry::global().queries_shed.inc();
                        return Err(CoreError::Overloaded);
                    }
                    st = self.cv.wait_timeout(st, d - now).unwrap().0;
                }
                None => st = self.cv.wait(st).unwrap(),
            }
        }
    }
}

// ----------------------------------------------------------- QueryRegistry

/// Identifier of one query admitted to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

struct QueryEntry {
    id: u64,
    token: CancelToken,
    detail: String,
    queue_wait: Duration,
    /// Shared partial-row counter from the query's [`GovernCtx`], when
    /// registered via [`QueryRegistry::register_ctx`].
    partial: Option<Arc<AtomicUsize>>,
}

/// One row of `SHOW QUERIES` / `sys.queries`.
#[derive(Debug, Clone)]
pub struct QueryInfo {
    /// The query's id (the `KILL` handle).
    pub id: QueryId,
    /// Wall time since the query registered.
    pub elapsed: Duration,
    /// Human-readable description of what it is doing.
    pub detail: String,
    /// Whether its token has already tripped.
    pub cancelled: bool,
    /// Admission queue wait paid before the query started.
    pub queue_wait: Duration,
    /// Bytes charged against the query's memory budget so far.
    pub mem_used: u64,
    /// Rows materialised so far (0 when the query registered without a
    /// governance context).
    pub rows_so_far: usize,
}

/// Process-wide registry of in-flight queries: the backing store of
/// `SHOW QUERIES` and the lookup table of `KILL <id>`.
#[derive(Default)]
pub struct QueryRegistry {
    next_id: AtomicU64,
    entries: Mutex<Vec<QueryEntry>>,
}

/// RAII registration; dropping it removes the query from the registry.
pub struct QueryTicket {
    registry: &'static QueryRegistry,
    id: u64,
}

impl QueryTicket {
    /// The registered query's id.
    pub fn id(&self) -> QueryId {
        QueryId(self.id)
    }
}

impl Drop for QueryTicket {
    fn drop(&mut self) {
        let mut entries = self.registry.entries.lock().unwrap();
        entries.retain(|e| e.id != self.id);
        MetricsRegistry::global()
            .inflight_queries
            .set(entries.len() as u64);
    }
}

impl QueryRegistry {
    /// The process-wide registry.
    pub fn global() -> &'static QueryRegistry {
        static GLOBAL: OnceLock<QueryRegistry> = OnceLock::new();
        GLOBAL.get_or_init(QueryRegistry::default)
    }

    /// Register an in-flight query; the returned ticket deregisters on
    /// drop and carries the fresh [`QueryId`].
    pub fn register(&'static self, detail: impl Into<String>, token: &CancelToken) -> QueryTicket {
        self.insert(detail.into(), token.clone(), Duration::ZERO, None)
    }

    /// Register with the query's full governance context so `sys.queries`
    /// can report queue wait and live row progress alongside the id.
    pub fn register_ctx(&'static self, detail: impl Into<String>, ctx: &GovernCtx) -> QueryTicket {
        self.insert(
            detail.into(),
            ctx.token().clone(),
            ctx.queue_wait(),
            Some(Arc::clone(&ctx.partial)),
        )
    }

    fn insert(
        &'static self,
        detail: String,
        token: CancelToken,
        queue_wait: Duration,
        partial: Option<Arc<AtomicUsize>>,
    ) -> QueryTicket {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let mut entries = self.entries.lock().unwrap();
        entries.push(QueryEntry {
            id,
            token,
            detail,
            queue_wait,
            partial,
        });
        MetricsRegistry::global()
            .inflight_queries
            .set(entries.len() as u64);
        QueryTicket { registry: self, id }
    }

    /// Kill the query with `id`; `true` if it was in flight (whether or
    /// not this call was the first to trip its token).
    pub fn kill(&self, id: QueryId) -> bool {
        let entries = self.entries.lock().unwrap();
        match entries.iter().find(|e| e.id == id.0) {
            Some(e) => {
                e.token.kill();
                true
            }
            None => false,
        }
    }

    /// Snapshot of every in-flight query, oldest first.
    pub fn list(&self) -> Vec<QueryInfo> {
        let entries = self.entries.lock().unwrap();
        entries
            .iter()
            .map(|e| QueryInfo {
                id: QueryId(e.id),
                elapsed: e.token.elapsed(),
                detail: e.detail.clone(),
                cancelled: e.token.is_cancelled(),
                queue_wait: e.queue_wait,
                mem_used: e.token.budget().used(),
                rows_so_far: e
                    .partial
                    .as_ref()
                    .map_or(0, |p| p.load(Ordering::Relaxed)),
            })
            .collect()
    }
}

// ---------------------------------------------------- SessionRegistry

struct SessionEntry {
    id: u64,
    peer: String,
    started: Instant,
    statements: Arc<AtomicU64>,
}

/// One row of `sys.sessions`.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Session id (stable for the connection's lifetime).
    pub id: u64,
    /// The peer address (or another caller-chosen label).
    pub peer: String,
    /// Wall time since the session opened.
    pub elapsed: Duration,
    /// Statements executed on the session so far.
    pub statements: u64,
}

/// Process-wide registry of open sessions: the backing store of
/// `sys.sessions`. The network server registers one entry per
/// connection; embedded callers never touch it.
#[derive(Default)]
pub struct SessionRegistry {
    next_id: AtomicU64,
    entries: Mutex<Vec<SessionEntry>>,
}

/// RAII session registration; dropping it removes the session and
/// refreshes the `open_connections` gauge.
pub struct SessionTicket {
    registry: &'static SessionRegistry,
    id: u64,
    statements: Arc<AtomicU64>,
}

impl SessionTicket {
    /// The registered session's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Count one executed statement against this session.
    pub fn bump_statements(&self) {
        self.statements.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for SessionTicket {
    fn drop(&mut self) {
        let mut entries = self.registry.entries.lock().unwrap();
        entries.retain(|e| e.id != self.id);
        MetricsRegistry::global()
            .open_connections
            .set(entries.len() as u64);
    }
}

impl SessionRegistry {
    /// The process-wide registry.
    pub fn global() -> &'static SessionRegistry {
        static GLOBAL: OnceLock<SessionRegistry> = OnceLock::new();
        GLOBAL.get_or_init(SessionRegistry::default)
    }

    /// Register an open session; the ticket deregisters on drop.
    pub fn register(&'static self, peer: impl Into<String>) -> SessionTicket {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let statements = Arc::new(AtomicU64::new(0));
        let mut entries = self.entries.lock().unwrap();
        entries.push(SessionEntry {
            id,
            peer: peer.into(),
            started: Instant::now(),
            statements: Arc::clone(&statements),
        });
        MetricsRegistry::global()
            .open_connections
            .set(entries.len() as u64);
        SessionTicket {
            registry: self,
            id,
            statements,
        }
    }

    /// Snapshot of every open session, oldest first.
    pub fn list(&self) -> Vec<SessionInfo> {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .map(|e| SessionInfo {
                id: e.id,
                peer: e.peer.clone(),
                elapsed: e.started.elapsed(),
                statements: e.statements.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_registry_tracks_open_sessions() {
        let reg = SessionRegistry::global();
        let before = reg.list().len();
        let t = reg.register("127.0.0.1:9999");
        t.bump_statements();
        t.bump_statements();
        let me = reg
            .list()
            .into_iter()
            .find(|s| s.id == t.id())
            .expect("registered");
        assert_eq!(me.peer, "127.0.0.1:9999");
        assert_eq!(me.statements, 2);
        drop(t);
        assert_eq!(reg.list().len(), before, "deregistered on drop");
    }

    #[test]
    fn token_deadline_trips_on_check() {
        let t = CancelToken::with(Some(Duration::from_millis(1)), None);
        assert!(t.check(0).is_ok() || t.reason() == Some(CancelReason::Deadline));
        std::thread::sleep(Duration::from_millis(5));
        let err = t.check(42).unwrap_err();
        match err {
            CoreError::Cancelled {
                reason,
                partial_rows,
                ..
            } => {
                assert_eq!(reason, CancelReason::Deadline);
                assert_eq!(partial_rows, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn first_trip_wins_and_is_sticky() {
        let t = CancelToken::new();
        assert!(t.check(0).is_ok());
        assert!(t.kill());
        assert!(!t.trip(CancelReason::MemBudget), "second trip loses");
        assert_eq!(t.reason(), Some(CancelReason::Killed));
        assert!(t.check(0).is_err());
    }

    #[test]
    fn budget_charges_until_tripped() {
        let t = CancelToken::with(None, Some(100));
        let b = t.budget();
        assert!(b.charge(60, 0).is_ok());
        assert!(b.charge(40, 0).is_ok(), "exactly at the limit is fine");
        let err = b.charge(1, 7).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Cancelled {
                    reason: CancelReason::MemBudget,
                    partial_rows: 7,
                    ..
                }
            ),
            "{err:?}"
        );
        assert_eq!(b.limit(), 100);
        assert!(b.used() >= 100);
    }

    #[test]
    fn unbudgeted_token_never_trips_on_charges() {
        let t = CancelToken::new();
        assert!(t.budget().charge(u64::MAX / 2, 0).is_ok());
        assert!(t.budget().charge(u64::MAX / 2, 0).is_ok());
        assert!(t.check(0).is_ok());
    }

    #[test]
    fn ctx_fault_cancel_and_stall() {
        let fi = Arc::new(FaultInjector::new());
        fi.inject(FaultStage::QueryCheckpoint, None, FaultKind::Cancel);
        let ctx = GovernCtx::new(CancelToken::new(), Some(fi));
        let err = ctx.checkpoint("bbox_scan").unwrap_err();
        assert!(matches!(
            err,
            CoreError::Cancelled {
                reason: CancelReason::Killed,
                ..
            }
        ));

        // A stall makes a short deadline expire deterministically.
        let fi = Arc::new(FaultInjector::new());
        fi.inject(FaultStage::QueryCheckpoint, None, FaultKind::Stall(20));
        let ctx = GovernCtx::new(
            CancelToken::with(Some(Duration::from_millis(5)), None),
            Some(fi),
        );
        let err = ctx.checkpoint("bbox_scan").unwrap_err();
        assert!(matches!(
            err,
            CoreError::Cancelled {
                reason: CancelReason::Deadline,
                ..
            }
        ));
    }

    #[test]
    fn admission_caps_and_sheds() {
        let c = AdmissionController::new(1, 1);
        let p1 = c.admit(None).unwrap();
        assert_eq!(c.in_flight(), 1);
        // Second query fits in the queue but times out waiting.
        let err = c.admit(Some(Duration::from_millis(10))).unwrap_err();
        assert!(matches!(err, CoreError::Overloaded), "{err:?}");
        assert_eq!(c.queued(), 0, "timed-out waiter left the queue");
        drop(p1);
        let p2 = c.admit(Some(Duration::from_millis(10))).unwrap();
        assert_eq!(c.in_flight(), 1);
        drop(p2);
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn admission_queue_full_sheds_immediately() {
        let c = Arc::new(AdmissionController::new(1, 1));
        let p1 = c.admit(None).unwrap();
        // Fill the single queue slot from another thread.
        let c2 = Arc::clone(&c);
        let waiter = std::thread::spawn(move || c2.admit(Some(Duration::from_secs(5))).map(|_| ()));
        while c.queued() == 0 {
            std::thread::yield_now();
        }
        let t0 = Instant::now();
        let err = c.admit(Some(Duration::from_secs(5))).unwrap_err();
        assert!(matches!(err, CoreError::Overloaded));
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "full queue sheds without waiting"
        );
        drop(p1);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn admission_is_fifo() {
        let c: &'static AdmissionController =
            Box::leak(Box::new(AdmissionController::new(1, 16)));
        let p = c.admit(None).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..4u32 {
            // Stagger arrivals so ticket order is deterministic.
            while c.queued() < i as usize {
                std::thread::yield_now();
            }
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let permit = c.admit(None).unwrap();
                order.lock().unwrap().push(i);
                std::thread::sleep(Duration::from_millis(2));
                drop(permit);
            }));
        }
        while c.queued() < 4 {
            std::thread::yield_now();
        }
        drop(p);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3], "FIFO admission");
    }

    #[test]
    fn permit_reports_queue_wait() {
        let c: &'static AdmissionController =
            Box::leak(Box::new(AdmissionController::new(1, 4)));
        let p1 = c.admit(None).unwrap();
        assert_eq!(p1.queue_wait(), Duration::ZERO, "fast path never waits");
        assert_eq!(c.limits(), (1, 4));
        let waiter = std::thread::spawn(move || c.admit(Some(Duration::from_secs(5))).unwrap());
        while c.queued() == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(10));
        drop(p1);
        let p2 = waiter.join().unwrap();
        assert!(
            p2.queue_wait() >= Duration::from_millis(5),
            "queued permit records its wait, got {:?}",
            p2.queue_wait()
        );
    }

    #[test]
    fn unlimited_permit_has_zero_wait() {
        let c = AdmissionController::unlimited();
        assert_eq!(c.admit(None).unwrap().queue_wait(), Duration::ZERO);
        assert_eq!(c.limits().0, usize::MAX);
    }

    #[test]
    fn registry_ctx_carries_wait_and_progress() {
        let reg = QueryRegistry::global();
        let ctx = GovernCtx::new(CancelToken::with(None, Some(1 << 20)), None)
            .with_queue_wait(Duration::from_millis(250));
        ctx.add_rows(17);
        ctx.charge(4096).unwrap();
        let ticket = reg.register_ctx("sys test", &ctx);
        let id = ticket.id();
        let me = reg
            .list()
            .into_iter()
            .find(|q| q.id == id)
            .expect("registered");
        assert_eq!(me.queue_wait, Duration::from_millis(250));
        assert_eq!(me.rows_so_far, 17);
        assert!(me.mem_used >= 4096, "budget charges visible: {}", me.mem_used);
        drop(ticket);
        assert!(!reg.list().iter().any(|q| q.id == id));
    }

    #[test]
    fn registry_kill_and_list() {
        let reg = QueryRegistry::global();
        let token = CancelToken::new();
        let ticket = reg.register("SELECT test", &token);
        let id = ticket.id();
        let listed = reg.list();
        let me = listed.iter().find(|q| q.id == id).expect("registered");
        assert_eq!(me.detail, "SELECT test");
        assert!(!me.cancelled);
        assert!(reg.kill(id));
        assert!(token.is_cancelled());
        assert!(reg.list().iter().find(|q| q.id == id).unwrap().cancelled);
        drop(ticket);
        assert!(
            !reg.list().iter().any(|q| q.id == id),
            "deregistered on drop"
        );
        assert!(!reg.kill(id), "gone queries cannot be killed");
    }
}
