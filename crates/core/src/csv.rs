//! The CSV text loading path.
//!
//! §3.2: *"In most of the systems, the dominant part of loading stems from
//! the conversion of the LAZ files into CSV format and the subsequent
//! parsing of the CSV records by the database engine."* This module is that
//! slow path, implemented honestly (full text formatting and field-by-field
//! parsing) so experiment E1 can measure the cost the binary loader avoids.

use lidardb_las::{schema::column_value_f64, PointRecord, COLUMN_NAMES, NUM_COLUMNS};
use lidardb_storage::Value;

use crate::error::CoreError;
use crate::pointcloud::PointCloud;

/// Serialise records to CSV text with a header line.
pub fn records_to_csv(records: &[PointRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96 + 256);
    out.push_str(&COLUMN_NAMES.join(","));
    out.push('\n');
    for r in records {
        for c in 0..NUM_COLUMNS {
            if c > 0 {
                out.push(',');
            }
            let v = column_value_f64(r, c);
            // Integers print without a decimal point, like real exporters.
            if v.fract() == 0.0 && v.abs() < 1e15 {
                out.push_str(&format!("{}", v as i64));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Parse CSV text (with header) and append every row to the cloud.
///
/// Returns the number of rows loaded.
pub fn load_csv(pc: &mut PointCloud, text: &str) -> Result<usize, CoreError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(CoreError::CsvParse {
        line: 1,
        reason: "empty input".into(),
    })?;
    let cols: Vec<&str> = header.split(',').collect();
    if cols != COLUMN_NAMES {
        return Err(CoreError::CsvParse {
            line: 1,
            reason: format!("unexpected header: {header}"),
        });
    }
    let schema = lidardb_las::point_schema();
    let mut row: Vec<Value> = Vec::with_capacity(NUM_COLUMNS);
    let mut n = 0usize;
    for (idx, line) in lines {
        if line.is_empty() {
            continue;
        }
        row.clear();
        let mut fields = line.split(',');
        for (c, field) in schema.fields().iter().enumerate() {
            let raw = fields.next().ok_or_else(|| CoreError::CsvParse {
                line: idx + 1,
                reason: format!("missing field {}", field.name),
            })?;
            let v: f64 = raw.parse().map_err(|_| CoreError::CsvParse {
                line: idx + 1,
                reason: format!("bad value {raw:?} in {}", field.name),
            })?;
            let _ = c;
            row.push(if field.ptype.is_float() {
                Value::F64(v)
            } else if field.ptype.is_signed_int() {
                Value::I64(v as i64)
            } else {
                Value::F64(v) // unsigned go through the saturating path
            });
        }
        if fields.next().is_some() {
            return Err(CoreError::CsvParse {
                line: idx + 1,
                reason: "too many fields".into(),
            });
        }
        pc.push_row_values(&row);
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<PointRecord> {
        (0..50)
            .map(|i| PointRecord {
                x: i as f64 + 0.25,
                y: 1000.0 - i as f64,
                z: 3.5,
                intensity: i as u16,
                classification: 6,
                scan_angle_rank: -7,
                gps_time: 123.456 + i as f64,
                ..Default::default()
            })
            .collect()
    }

    #[test]
    fn csv_roundtrip() {
        let recs = records();
        let text = records_to_csv(&recs);
        assert!(text.starts_with("x,y,z,intensity"));
        let mut pc = PointCloud::new();
        assert_eq!(load_csv(&mut pc, &text).unwrap(), 50);
        assert_eq!(pc.num_points(), 50);
        let back = pc.record(7).unwrap();
        assert_eq!(back.x, 7.25);
        assert_eq!(back.y, 993.0);
        assert_eq!(back.classification, 6);
        assert_eq!(back.scan_angle_rank, -7);
        // 123.456 + 7.0 accumulates float error before formatting; the CSV
        // text itself roundtrips exactly.
        assert_eq!(back.gps_time, 123.456 + 7.0);
    }

    #[test]
    fn bad_inputs_error_with_line_numbers() {
        let mut pc = PointCloud::new();
        assert!(load_csv(&mut pc, "").is_err());
        assert!(load_csv(&mut pc, "a,b,c\n1,2,3\n").is_err());
        let good = records_to_csv(&records()[..2]);
        // Break a value on data line 2 (file line 3).
        let broken = good.replace("1.25", "oops");
        let err = load_csv(&mut pc, &broken).unwrap_err();
        match err {
            CoreError::CsvParse { line, reason } => {
                assert_eq!(line, 3);
                assert!(reason.contains("oops"));
            }
            other => panic!("wrong error {other:?}"),
        }
        // Too few / too many fields.
        let short = format!("{}\n1,2\n", COLUMN_NAMES.join(","));
        assert!(load_csv(&mut pc, &short).is_err());
        let long = format!(
            "{}\n{}\n",
            COLUMN_NAMES.join(","),
            (0..27).map(|_| "1").collect::<Vec<_>>().join(",")
        );
        assert!(load_csv(&mut pc, &long).is_err());
    }

    #[test]
    fn empty_lines_skipped() {
        let recs = records();
        let mut text = records_to_csv(&recs[..3]);
        text.push('\n');
        let mut pc = PointCloud::new();
        assert_eq!(load_csv(&mut pc, &text).unwrap(), 3);
    }
}
