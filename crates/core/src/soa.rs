//! Struct-of-arrays transposition of point records.
//!
//! The binary loader of §3.2 works by transposing decoded LAS records into
//! one binary dump per column ("for each property it generates a new file
//! that is the binary dump of a C-array containing the values of the
//! property for all points") and appending the dumps with `COPY BINARY`.

use lidardb_las::{PointRecord, COLUMN_NAMES};
use lidardb_storage::Column;

/// The 26 per-column arrays of a record batch, in schema order.
#[derive(Debug, Clone)]
pub struct ColumnArrays {
    columns: Vec<Column>,
}

impl ColumnArrays {
    /// Transpose records into typed columns.
    pub fn from_records(records: &[PointRecord]) -> Self {
        let n = records.len();
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut z = Vec::with_capacity(n);
        let mut intensity = Vec::with_capacity(n);
        let mut return_number = Vec::with_capacity(n);
        let mut number_of_returns = Vec::with_capacity(n);
        let mut scan_direction = Vec::with_capacity(n);
        let mut edge = Vec::with_capacity(n);
        let mut classification = Vec::with_capacity(n);
        let mut synthetic = Vec::with_capacity(n);
        let mut key_point = Vec::with_capacity(n);
        let mut withheld = Vec::with_capacity(n);
        let mut scan_angle = Vec::with_capacity(n);
        let mut user_data = Vec::with_capacity(n);
        let mut point_source = Vec::with_capacity(n);
        let mut gps_time = Vec::with_capacity(n);
        let mut red = Vec::with_capacity(n);
        let mut green = Vec::with_capacity(n);
        let mut blue = Vec::with_capacity(n);
        let mut wave_idx = Vec::with_capacity(n);
        let mut wave_off = Vec::with_capacity(n);
        let mut wave_size = Vec::with_capacity(n);
        let mut wave_loc = Vec::with_capacity(n);
        let mut wave_xt = Vec::with_capacity(n);
        let mut wave_yt = Vec::with_capacity(n);
        let mut wave_zt = Vec::with_capacity(n);
        for r in records {
            x.push(r.x);
            y.push(r.y);
            z.push(r.z);
            intensity.push(r.intensity);
            return_number.push(r.return_number);
            number_of_returns.push(r.number_of_returns);
            scan_direction.push(r.scan_direction);
            edge.push(r.edge_of_flight_line);
            classification.push(r.classification);
            synthetic.push(r.synthetic);
            key_point.push(r.key_point);
            withheld.push(r.withheld);
            scan_angle.push(r.scan_angle_rank);
            user_data.push(r.user_data);
            point_source.push(r.point_source_id);
            gps_time.push(r.gps_time);
            red.push(r.red);
            green.push(r.green);
            blue.push(r.blue);
            wave_idx.push(r.wave_packet_index);
            wave_off.push(r.wave_offset);
            wave_size.push(r.wave_size);
            wave_loc.push(r.wave_return_loc);
            wave_xt.push(r.wave_xt);
            wave_yt.push(r.wave_yt);
            wave_zt.push(r.wave_zt);
        }
        let columns = vec![
            Column::F64(x),
            Column::F64(y),
            Column::F64(z),
            Column::U16(intensity),
            Column::U8(return_number),
            Column::U8(number_of_returns),
            Column::U8(scan_direction),
            Column::U8(edge),
            Column::U8(classification),
            Column::U8(synthetic),
            Column::U8(key_point),
            Column::U8(withheld),
            Column::I8(scan_angle),
            Column::U8(user_data),
            Column::U16(point_source),
            Column::F64(gps_time),
            Column::U16(red),
            Column::U16(green),
            Column::U16(blue),
            Column::U8(wave_idx),
            Column::U64(wave_off),
            Column::U32(wave_size),
            Column::F32(wave_loc),
            Column::F32(wave_xt),
            Column::F32(wave_yt),
            Column::F32(wave_zt),
        ];
        debug_assert_eq!(columns.len(), COLUMN_NAMES.len());
        ColumnArrays { columns }
    }

    /// The typed columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Serialise each column as its little-endian binary dump — the files
    /// the paper's loader feeds to `COPY BINARY`.
    pub fn to_dumps(&self) -> Vec<Vec<u8>> {
        self.columns.iter().map(Column::to_le_bytes).collect()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidardb_las::schema::column_value_f64;

    fn records() -> Vec<PointRecord> {
        (0..100)
            .map(|i| PointRecord {
                x: i as f64,
                y: i as f64 * 2.0,
                z: 5.0,
                intensity: i as u16,
                classification: (i % 4) as u8,
                scan_angle_rank: (i % 30) as i8 - 15,
                gps_time: 1e5 + i as f64,
                wave_offset: i as u64 * 1000,
                ..Default::default()
            })
            .collect()
    }

    #[test]
    fn transposition_matches_schema_order() {
        let recs = records();
        let soa = ColumnArrays::from_records(&recs);
        assert_eq!(soa.num_rows(), 100);
        assert_eq!(soa.columns().len(), 26);
        for (ci, col) in soa.columns().iter().enumerate() {
            for (ri, rec) in recs.iter().enumerate() {
                assert_eq!(
                    col.get(ri).unwrap().as_f64(),
                    column_value_f64(rec, ci),
                    "column {ci} row {ri}"
                );
            }
        }
    }

    #[test]
    fn dumps_have_correct_sizes() {
        let soa = ColumnArrays::from_records(&records());
        let dumps = soa.to_dumps();
        assert_eq!(dumps.len(), 26);
        assert_eq!(dumps[0].len(), 100 * 8); // x: f64
        assert_eq!(dumps[3].len(), 100 * 2); // intensity: u16
        assert_eq!(dumps[8].len(), 100); // classification: u8
    }

    #[test]
    fn empty_batch() {
        let soa = ColumnArrays::from_records(&[]);
        assert_eq!(soa.num_rows(), 0);
        assert!(soa.to_dumps().iter().all(Vec::is_empty));
    }
}
