//! # lidardb-core — the paper's system
//!
//! The primary contribution of *"GIS Navigation Boosted by Column Stores"*
//! (VLDB 2015): a "spatially-enabled" column store for massive point
//! clouds, built from
//!
//! * a **flat 26-column table** (§3.1) over `lidardb-storage` — one column
//!   per LAS attribute, one row per point, no block reorganisation;
//! * **lazily built column imprints** (§3.2) — the secondary index is
//!   created the first time a range query touches a column, then cached;
//! * a **binary bulk loader** (§3.2) — LAS/laz-lite files are decoded to
//!   per-column binary dumps which are appended to the column tails
//!   `COPY BINARY`-style, with file decode parallelised across threads
//!   (the reason the paper loads all of AHN2 "in less than one day"), plus
//!   the CSV text path other systems pay for comparison;
//! * the **two-step query model** (§3.3) — imprint filtering on the X and
//!   Y columns down to candidate cacheline runs, an exact bbox check that
//!   skips runs the imprints prove fully qualifying, and a **regular-grid
//!   refinement** for non-rectangular geometries where each non-empty cell
//!   is classified against the query geometry in a single step and only
//!   boundary cells fall back to exact per-point predicates;
//! * **thematic filters and aggregates** over any attribute column, which
//!   is what makes scenario 2's "average elevation near a fast transit
//!   road" a one-liner;
//! * a **morsel-driven parallel executor** ([`exec`]) — the candidate list
//!   is split into balanced row-range morsels executed on scoped worker
//!   threads and merged in row order, so parallel results are identical to
//!   the serial path ([`Parallelism`] selects the worker count).
//!
//! Every query returns an [`query::Explain`] timing/cardinality breakdown,
//! mirroring the demo's per-operator plan view.
//!
//! The engine is **fault-tolerant by construction**: persistence is
//! atomic and checksummed ([`persist`]), the bulk loader isolates and
//! quarantines bad files ([`loader::LoadPolicy`]), queries degrade to
//! full scans when an imprint cannot be built, and the whole stack is
//! exercised by a deterministic fault-injection harness ([`fault`]).

pub mod crc;
pub mod csv;
pub mod error;
pub mod exec;
pub mod fault;
pub mod governor;
pub mod loader;
pub mod metrics;
pub mod persist;
pub mod pointcloud;
pub mod query;
pub mod recorder;
pub mod segment;
pub mod soa;
pub mod trace;
pub mod wal;

pub use error::{is_storage_exhausted_io, CancelReason, CoreError};
pub use exec::{MorselTiming, Parallelism, MORSEL_MIN_ROWS};
pub use governor::{
    AdmissionController, CancelToken, GovernCtx, MemBudget, QueryId, QueryInfo,
    QueryRegistry, SessionInfo, SessionRegistry, SessionTicket, CHECKPOINT_STRIDE,
};
pub use metrics::{MetricsRegistry, QueryProfile, Stage, StageSample};
pub use fault::{FaultInjector, FaultKind, FaultStage};
pub use loader::{
    FileOutcome, FileReport, LoadMethod, LoadPolicy, LoadReport, LoadStats, Loader,
};
pub use pointcloud::{IngestAck, PointCloud};
pub use query::{Aggregate, AttrRange, Explain, RefineStrategy, Selection, SpatialPredicate};
pub use recorder::{Recorder, RecorderSample, DEFAULT_INTERVAL_MS, RECORDER_SLOTS};
pub use segment::{TileOptions, TileResidency, TiledCloud};
pub use trace::{SlowQuery, SlowQueryLog, SpanKind, SpanRecord, TraceSink, Tracer};
pub use wal::{Durability, RecoveryReport, LEDGER_CAP};
