//! Error type of the core engine.

use std::fmt;
use std::time::Duration;

use lidardb_geom::GeomError;
use lidardb_las::LasError;
use lidardb_storage::StorageError;

/// Why a query was cancelled (see `core::governor`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The statement deadline expired.
    Deadline,
    /// An operator (or SQL `KILL <id>`) stopped the query.
    Killed,
    /// The query's memory budget was exceeded.
    MemBudget,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CancelReason::Deadline => "deadline",
            CancelReason::Killed => "killed",
            CancelReason::MemBudget => "memory budget",
        })
    }
}

/// Errors produced by the point-cloud engine.
#[derive(Debug)]
pub enum CoreError {
    /// Storage-layer failure.
    Storage(StorageError),
    /// File-format failure.
    Las(LasError),
    /// Geometry failure.
    Geom(GeomError),
    /// CSV text could not be parsed.
    CsvParse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A query referenced something that does not exist.
    InvalidQuery(String),
    /// On-disk state failed an integrity check (bad checksum, malformed
    /// manifest, impossible sizes).
    Corrupt(String),
    /// A loader worker thread panicked; the panic was contained and
    /// converted to this error instead of tearing down the process.
    WorkerPanic(String),
    /// A specific input file failed during bulk load (fail-fast path);
    /// names the file so a 50 000-tile ingest is debuggable.
    FileLoad {
        /// The file that failed.
        path: std::path::PathBuf,
        /// Why it failed.
        source: Box<CoreError>,
    },
    /// The query was cooperatively cancelled before completing: its
    /// deadline expired, it was killed, or it exceeded its memory
    /// budget. `Display` deliberately omits `elapsed` so a serial and a
    /// parallel cancellation of the same query render identically.
    Cancelled {
        /// What tripped the cancellation token.
        reason: CancelReason,
        /// Wall time the query ran before noticing the trip.
        elapsed: Duration,
        /// Result rows materialised before cancellation (discarded).
        partial_rows: usize,
    },
    /// The admission queue was full (or the wait deadline expired): the
    /// query was shed without starting. Retryable by definition.
    Overloaded,
    /// The underlying device rejected a write with `ENOSPC`/`EIO` (or a
    /// table is in read-only degraded mode after such a failure). Not
    /// transient: retrying without operator intervention (freeing space,
    /// replacing the device, `seal()`) cannot succeed.
    StorageExhausted(String),
}

impl CoreError {
    /// Whether retrying the failed operation could plausibly succeed
    /// (transient I/O conditions, as opposed to corrupt data).
    pub fn is_transient(&self) -> bool {
        match self {
            CoreError::Las(e) => e.is_transient(),
            CoreError::FileLoad { source, .. } => source.is_transient(),
            // A shed query never started; retrying once load drains is
            // exactly what the admission queue is for.
            CoreError::Overloaded => true,
            // A full or failing disk does not heal on retry: the caller
            // must stop resending and surface the condition.
            CoreError::StorageExhausted(_) => false,
            _ => false,
        }
    }
}

/// Whether an I/O error is a device-exhaustion condition (`ENOSPC`, or
/// `EIO` from a failing device) that should flip the owning table into
/// read-only degraded mode rather than surface as a generic I/O error.
pub fn is_storage_exhausted_io(e: &std::io::Error) -> bool {
    // ENOSPC = 28, EDQUOT = 122, EIO = 5 on Linux; `StorageFull` also
    // covers the portable kind mapping.
    matches!(e.kind(), std::io::ErrorKind::StorageFull)
        || matches!(e.raw_os_error(), Some(28) | Some(122) | Some(5))
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Las(e) => write!(f, "las: {e}"),
            CoreError::Geom(e) => write!(f, "geometry: {e}"),
            CoreError::CsvParse { line, reason } => {
                write!(f, "CSV parse error at line {line}: {reason}")
            }
            CoreError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            CoreError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            CoreError::WorkerPanic(msg) => write!(f, "loader worker panicked: {msg}"),
            CoreError::FileLoad { path, source } => {
                write!(f, "load of {} failed: {source}", path.display())
            }
            CoreError::Cancelled {
                reason,
                partial_rows,
                ..
            } => {
                write!(
                    f,
                    "query cancelled ({reason}) after {partial_rows} partial rows"
                )
            }
            CoreError::Overloaded => {
                f.write_str("overloaded: admission queue full, query shed")
            }
            CoreError::StorageExhausted(msg) => {
                write!(f, "storage exhausted: {msg}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Las(e) => Some(e),
            CoreError::Geom(e) => Some(e),
            CoreError::FileLoad { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}
impl From<LasError> for CoreError {
    fn from(e: LasError) -> Self {
        CoreError::Las(e)
    }
}
impl From<GeomError> for CoreError {
    fn from(e: GeomError) -> Self {
        CoreError::Geom(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = StorageError::UnknownColumn("q".into()).into();
        assert!(e.to_string().contains("storage"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::CsvParse {
            line: 3,
            reason: "bad float".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = CoreError::InvalidQuery("no such column".into());
        assert!(e.to_string().contains("no such column"));
        let e = CoreError::Corrupt("checksum mismatch".into());
        assert!(e.to_string().contains("checksum mismatch"));
        assert!(!e.is_transient());
        let e = CoreError::WorkerPanic("index out of bounds".into());
        assert!(e.to_string().contains("panicked"));
        let e = CoreError::FileLoad {
            path: "tiles/t07.las".into(),
            source: Box::new(CoreError::Corrupt("bad point size".into())),
        };
        assert!(e.to_string().contains("t07.las"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn transient_classification() {
        let t: CoreError = LasError::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "try again",
        ))
        .into();
        assert!(t.is_transient());
        let wrapped = CoreError::FileLoad {
            path: "a.las".into(),
            source: Box::new(t),
        };
        assert!(wrapped.is_transient(), "transience passes through FileLoad");
        let p: CoreError = LasError::Io(std::io::Error::other("disk on fire")).into();
        assert!(!p.is_transient());
        assert!(!CoreError::InvalidQuery("x".into()).is_transient());
        assert!(CoreError::Overloaded.is_transient(), "shed queries retry");
        let c = CoreError::Cancelled {
            reason: CancelReason::Deadline,
            elapsed: Duration::from_millis(7),
            partial_rows: 0,
        };
        assert!(!c.is_transient(), "a timed-out query times out again");
        let e = CoreError::StorageExhausted("wal append: ENOSPC".into());
        assert!(
            !e.is_transient(),
            "a full disk does not heal on retry: clients must stop resending"
        );
        assert!(e.to_string().contains("storage exhausted"), "{e}");
        assert!(e.to_string().contains("ENOSPC"), "{e}");
    }

    #[test]
    fn storage_exhausted_io_classification() {
        for code in [28, 5, 122] {
            let e = std::io::Error::from_raw_os_error(code);
            assert!(is_storage_exhausted_io(&e), "errno {code} is exhaustion");
        }
        assert!(!is_storage_exhausted_io(&std::io::Error::other("boom")));
        assert!(!is_storage_exhausted_io(&std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "try again"
        )));
    }

    #[test]
    fn cancelled_display_is_elapsed_free() {
        // The differential suite compares serial and parallel cancellation
        // errors by their Display strings; elapsed wall time must not leak
        // into the rendering or they could never match.
        let mk = |ms: u64| CoreError::Cancelled {
            reason: CancelReason::Killed,
            elapsed: Duration::from_millis(ms),
            partial_rows: 12,
        };
        assert_eq!(mk(1).to_string(), mk(999).to_string());
        assert!(mk(1).to_string().contains("killed"), "{}", mk(1));
        assert!(mk(1).to_string().contains("12"), "{}", mk(1));
        for reason in [
            CancelReason::Deadline,
            CancelReason::Killed,
            CancelReason::MemBudget,
        ] {
            let e = CoreError::Cancelled {
                reason,
                elapsed: Duration::ZERO,
                partial_rows: 0,
            };
            assert!(e.to_string().contains(&reason.to_string()), "{e}");
        }
        assert!(CoreError::Overloaded.to_string().contains("overloaded"));
    }
}
