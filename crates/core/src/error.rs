//! Error type of the core engine.

use std::fmt;

use lidardb_geom::GeomError;
use lidardb_las::LasError;
use lidardb_storage::StorageError;

/// Errors produced by the point-cloud engine.
#[derive(Debug)]
pub enum CoreError {
    /// Storage-layer failure.
    Storage(StorageError),
    /// File-format failure.
    Las(LasError),
    /// Geometry failure.
    Geom(GeomError),
    /// CSV text could not be parsed.
    CsvParse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A query referenced something that does not exist.
    InvalidQuery(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Las(e) => write!(f, "las: {e}"),
            CoreError::Geom(e) => write!(f, "geometry: {e}"),
            CoreError::CsvParse { line, reason } => {
                write!(f, "CSV parse error at line {line}: {reason}")
            }
            CoreError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Las(e) => Some(e),
            CoreError::Geom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}
impl From<LasError> for CoreError {
    fn from(e: LasError) -> Self {
        CoreError::Las(e)
    }
}
impl From<GeomError> for CoreError {
    fn from(e: GeomError) -> Self {
        CoreError::Geom(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = StorageError::UnknownColumn("q".into()).into();
        assert!(e.to_string().contains("storage"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::CsvParse {
            line: 3,
            reason: "bad float".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = CoreError::InvalidQuery("no such column".into());
        assert!(e.to_string().contains("no such column"));
    }
}
