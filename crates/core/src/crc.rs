//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! Used to checksum column dumps and manifests; any single-bit error is
//! detected, as are all burst errors up to 32 bits.

/// 8-entry-per-bit table built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_any_single_bit_flip() {
        let data: Vec<u8> = (0u16..300).map(|i| (i * 7) as u8).collect();
        let base = crc32(&data);
        for byte in (0..data.len()).step_by(17) {
            for bit in 0..8 {
                let mut c = data.clone();
                c[byte] ^= 1 << bit;
                assert_ne!(crc32(&c), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
