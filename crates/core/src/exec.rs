//! Morsel-driven parallel execution of the two-step query engine.
//!
//! The imprint candidate list is partitioned into balanced row-range
//! *morsels* ([`lidardb_imprints::CandidateList::split_rows`]); scoped worker
//! threads pull morsels off a shared counter and run the exact bbox scan,
//! attribute refines, and grid-refinement point tests independently; the
//! per-morsel selection vectors are then concatenated in morsel order.
//!
//! **Ordering guarantee.** Morsels partition the candidate rows in ascending
//! row order and every per-morsel kernel preserves the order of its input,
//! so the merged selection is identical — byte for byte — to the serial
//! path's output. The differential test suite
//! (`crates/core/tests/differential.rs`) enforces this for every query
//! shape in the engine's test suite.
//!
//! Worker panics are contained with the same `catch_unwind` pattern as the
//! parallel loader and surface as [`CoreError::WorkerPanic`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use lidardb_geom::{Envelope, Point, RectClass};
use lidardb_imprints::CandidateList;
use lidardb_storage::scan::{self, AggState};
use lidardb_storage::Native;

use crate::error::CoreError;
use crate::governor::{GovernCtx, CHECKPOINT_STRIDE};
use crate::pointcloud::PointCloud;
use crate::query::{grid_cell, grid_cell_env, AttrRange, Explain, SpatialPredicate};

/// Worker-count policy for query execution, set per [`PointCloud`] (or per
/// call via `select_query_with`) and plumbed through the SQL catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded reference path.
    Serial,
    /// Exactly this many worker threads (clamped to at least 1).
    Threads(usize),
    /// One worker per available core.
    #[default]
    Auto,
}

impl Parallelism {
    /// The number of workers this policy resolves to on this machine.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// Minimum candidate rows per morsel. Queries with fewer than two morsels'
/// worth of candidates run serially — thread startup would dominate.
pub const MORSEL_MIN_ROWS: usize = 4096;

/// Cardinalities and wall-clock of one morsel of the parallel filter step,
/// folded into [`Explain`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MorselTiming {
    /// Candidate rows handed to the morsel.
    pub rows_in: usize,
    /// Rows surviving the morsel's exact checks.
    pub rows_out: usize,
    /// Wall-clock the morsel spent on a worker, in seconds.
    pub seconds: f64,
}

/// Run `f(0..n)` on `workers` scoped threads pulling indexes off a shared
/// counter, containing panics as [`CoreError::WorkerPanic`]. Results come
/// back in index order. Error precedence: a [`CoreError::Cancelled`] wins
/// (cancellation is the root cause — remaining morsels all observe the
/// tripped token), then worker panics — aggregated so *every* panicked
/// morsel is reported, not just the first — then the first other error in
/// index order.
fn run_indexed<T: Send>(
    workers: usize,
    n: usize,
    f: impl Fn(usize) -> Result<T, CoreError> + Sync,
) -> Result<Vec<T>, CoreError> {
    let mut slots: Vec<Option<Result<T, CoreError>>> = Vec::new();
    slots.resize_with(n, || None);
    let next = AtomicUsize::new(0);
    let slots_mutex = parking_lot::Mutex::new(&mut slots);
    std::thread::scope(|s| {
        for _ in 0..workers.min(n).max(1) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let outcome = match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(r) => r,
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        Err(CoreError::WorkerPanic(format!("query morsel {i}: {msg}")))
                    }
                };
                slots_mutex.lock()[i] = Some(outcome);
            });
        }
    });
    let mut results = Vec::with_capacity(n);
    let mut panics: Vec<String> = Vec::new();
    let mut cancelled: Option<CoreError> = None;
    let mut other: Option<CoreError> = None;
    for s in slots {
        match s.expect("every slot filled when the scope ends") {
            Ok(t) => results.push(t),
            Err(e @ CoreError::Cancelled { .. }) => {
                if cancelled.is_none() {
                    cancelled = Some(e);
                }
            }
            Err(CoreError::WorkerPanic(m)) => panics.push(m),
            Err(e) => {
                if other.is_none() {
                    other = Some(e);
                }
            }
        }
    }
    if let Some(e) = cancelled {
        return Err(e);
    }
    if !panics.is_empty() {
        return Err(CoreError::WorkerPanic(panics.join("; ")));
    }
    if let Some(e) = other {
        return Err(e);
    }
    Ok(results)
}

/// Split `total` work items into per-worker portions of at least
/// [`MORSEL_MIN_ROWS`], aiming for ~4 morsels per worker so stragglers can
/// be stolen.
fn morsel_size(total: usize, workers: usize) -> usize {
    (total / (workers * 4).max(1)).max(MORSEL_MIN_ROWS)
}

/// The read-only context shared by every filter morsel (step 1b).
pub(crate) struct FilterJob<'a> {
    pub pc: &'a PointCloud,
    pub env: Option<&'a Envelope>,
    /// Whether the x imprint participated in the candidate intersection
    /// (sure runs may skip the exact x check only if it did).
    pub x_probed: bool,
    pub attrs: &'a [AttrRange],
    pub xs: &'a [f64],
    pub ys: &'a [f64],
    /// The spawning query's bbox-scan span `(trace_id, span_id)` when it
    /// runs traced: workers adopt it so their morsel spans parent there.
    pub trace_ctx: Option<(u64, u64)>,
    /// The query's governance context; morsels checkpoint against it at
    /// [`CHECKPOINT_STRIDE`]-row boundaries.
    pub govern: &'a GovernCtx,
}

/// Morsel-parallel step 1b: exact bbox scan + attribute refines over the
/// candidate list, merged in morsel order.
pub(crate) fn parallel_filter(
    job: &FilterJob<'_>,
    cand: &CandidateList,
    workers: usize,
) -> Result<(Vec<usize>, Vec<MorselTiming>), CoreError> {
    let morsels = cand.split_rows(morsel_size(cand.num_rows(), workers));
    let results = run_indexed(workers, morsels.len(), |i| {
        let m = &morsels[i];
        // `_parent` is declared before the span so the span closes (and
        // records) while the adopted context is still in place.
        let _parent = job.trace_ctx.map(|(t, s)| crate::trace::adopt_parent(t, s));
        let mut mspan = crate::trace::span(crate::trace::SpanKind::Stage(
            crate::metrics::Stage::Morsel,
        ));
        let t0 = Instant::now();
        let mut rows: Vec<usize> = Vec::new();
        // Cancellation checkpoints every CHECKPOINT_STRIDE candidate rows.
        // Runs longer than the stride (a degraded probe can hand one run
        // spanning the whole morsel) are split so cancellation latency
        // stays bounded by the stride, not the morsel size. The split is
        // invisible to results: sub-ranges scan the same rows in order.
        let mut since = 0usize;
        for r in m.ranges() {
            let mut s = r.start;
            while s < r.end {
                let e = r.end.min(s + (CHECKPOINT_STRIDE - since));
                if r.all_qualify {
                    rows.extend(s..e);
                } else if let Some(env) = job.env {
                    scan::range_scan_ranges(job.xs, &[(s, e)], env.min_x, env.max_x, &mut rows);
                } else {
                    rows.extend(s..e);
                }
                since += e - s;
                s = e;
                if since >= CHECKPOINT_STRIDE {
                    since = 0;
                    if let Err(err) = job.govern.checkpoint("bbox_scan") {
                        mspan.add_flags(crate::trace::FLAG_CANCELLED);
                        return Err(err);
                    }
                }
            }
        }
        // Kernel work is tallied outside the scan loop (accumulators inside
        // it perturb its codegen; per-call atomics would also contend across
        // workers) and flushed once per morsel via `scan::note_scans`.
        let (mut scan_calls, mut scan_rows) = (0u64, 0u64);
        if job.env.is_some() {
            for r in m.ranges() {
                if !r.all_qualify {
                    scan_calls += 1;
                    scan_rows += (r.end - r.start) as u64;
                }
            }
        }
        if let Some(env) = job.env {
            if !job.x_probed {
                scan_calls += 1;
                scan_rows += rows.len() as u64;
                scan::refine_range(job.xs, &mut rows, env.min_x, env.max_x);
            }
            scan_calls += 1;
            scan_rows += rows.len() as u64;
            scan::refine_range(job.ys, &mut rows, env.min_y, env.max_y);
        }
        for a in job.attrs {
            scan_calls += 1;
            scan_rows += rows.len() as u64;
            job.pc.refine_attr_range(&mut rows, &a.column, a.lo, a.hi)?;
        }
        // Selection materialisation is the morsel's memory footprint:
        // charge it (budget trips cancel the query) and record the rows
        // toward `partial_rows` before handing the morsel back.
        if let Err(err) = job
            .govern
            .charge((rows.len() * std::mem::size_of::<usize>()) as u64)
        {
            mspan.add_flags(crate::trace::FLAG_CANCELLED);
            return Err(err);
        }
        job.govern.add_rows(rows.len());
        scan::note_scans(scan_calls, scan_rows);
        let took = t0.elapsed();
        let metrics = crate::metrics::MetricsRegistry::global();
        metrics.record_stage(crate::metrics::Stage::Morsel, rows.len(), took);
        metrics.morsels.inc();
        mspan.set_rows(m.num_rows() as u64, rows.len() as u64);
        mspan.set_aux(scan_rows);
        drop(mspan);
        let timing = MorselTiming {
            rows_in: m.num_rows(),
            rows_out: rows.len(),
            seconds: took.as_secs_f64(),
        };
        Ok((rows, timing))
    })?;
    let mut rows = Vec::new();
    let mut timings = Vec::with_capacity(results.len());
    for (r, t) in results {
        rows.extend(r);
        timings.push(t);
    }
    Ok((rows, timings))
}

/// Morsel-parallel exhaustive refinement: exact predicate on every
/// candidate, chunk-wise, merged in order.
pub(crate) fn parallel_exhaustive(
    pred: &SpatialPredicate,
    xs: &[f64],
    ys: &[f64],
    rows: &mut Vec<usize>,
    workers: usize,
    govern: &GovernCtx,
) -> Result<(), CoreError> {
    let kept = {
        let chunks: Vec<&[usize]> = rows.chunks(morsel_size(rows.len(), workers)).collect();
        run_indexed(workers, chunks.len(), |i| {
            let mut out = Vec::new();
            for sub in chunks[i].chunks(CHECKPOINT_STRIDE) {
                for &row in sub {
                    if pred.matches(&Point::new(xs[row], ys[row])) {
                        out.push(row);
                    }
                }
                govern.checkpoint("grid_refine")?;
            }
            Ok(out)
        })?
    };
    rows.clear();
    for k in kept {
        rows.extend(k);
    }
    Ok(())
}

/// Morsel-parallel grid refinement, identical in rows *and* Explain cell
/// counts to the serial [`PointCloud::grid_refine`] path.
///
/// Two passes over row chunks: (1) compute each candidate's cell id in
/// parallel; then classify every non-empty cell once, serially (same set of
/// cells the serial path classifies); (2) dispatch each candidate by its
/// cell class in parallel — Inside keeps, Outside drops, Boundary runs the
/// exact point test — and merge kept rows in chunk order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn parallel_grid_refine(
    pred: &SpatialPredicate,
    env: &Envelope,
    cells: usize,
    xs: &[f64],
    ys: &[f64],
    rows: &mut Vec<usize>,
    explain: &mut Explain,
    workers: usize,
    govern: &GovernCtx,
) -> Result<(), CoreError> {
    let w = env.width().max(f64::MIN_POSITIVE);
    let h = env.height().max(f64::MIN_POSITIVE);
    // The cell-id side table is the refinement's memory footprint: one u32
    // per candidate, charged before the buffers are built.
    govern.charge((rows.len() * std::mem::size_of::<u32>()) as u64)?;
    let (kept, tests) = {
        let chunks: Vec<&[usize]> = rows.chunks(morsel_size(rows.len(), workers)).collect();
        // Pass 1: bin candidates to cells (cell ids fit u32: cells <= 2048).
        let cell_ids = run_indexed(workers, chunks.len(), |i| {
            let mut ids = Vec::with_capacity(chunks[i].len());
            for sub in chunks[i].chunks(CHECKPOINT_STRIDE) {
                ids.extend(
                    sub.iter()
                        .map(|&row| grid_cell(env, w, h, cells, xs[row], ys[row]) as u32),
                );
                govern.checkpoint("grid_refine")?;
            }
            Ok(ids)
        })?;
        // Classify each non-empty cell exactly once (serial: the table scan
        // is cheap next to the geometry tests).
        const EMPTY: u8 = 0;
        const PRESENT: u8 = 1;
        const INSIDE: u8 = 2;
        const OUTSIDE: u8 = 3;
        const BOUNDARY: u8 = 4;
        let mut class = vec![EMPTY; cells * cells];
        for ids in &cell_ids {
            for &c in ids {
                class[c as usize] = PRESENT;
            }
        }
        for (cell, slot) in class.iter_mut().enumerate() {
            if *slot != PRESENT {
                continue;
            }
            *slot = match pred.classify_cell(&grid_cell_env(env, w, h, cells, cell)) {
                RectClass::Inside => {
                    explain.cells_inside += 1;
                    INSIDE
                }
                RectClass::Outside => {
                    explain.cells_outside += 1;
                    OUTSIDE
                }
                RectClass::Boundary => {
                    explain.cells_boundary += 1;
                    BOUNDARY
                }
            };
        }
        // Pass 2: dispatch candidates by cell class.
        let results = run_indexed(workers, chunks.len(), |i| {
            let mut out = Vec::new();
            let mut tests = 0usize;
            let mut since = 0usize;
            for (&row, &c) in chunks[i].iter().zip(&cell_ids[i]) {
                match class[c as usize] {
                    INSIDE => out.push(row),
                    OUTSIDE => {}
                    BOUNDARY => {
                        tests += 1;
                        if pred.matches(&Point::new(xs[row], ys[row])) {
                            out.push(row);
                        }
                    }
                    _ => unreachable!("present cells were classified"),
                }
                since += 1;
                if since >= CHECKPOINT_STRIDE {
                    since = 0;
                    govern.checkpoint("grid_refine")?;
                }
            }
            Ok((out, tests))
        })?;
        let mut kept = Vec::new();
        let mut tests = 0usize;
        for (k, t) in results {
            kept.extend(k);
            tests += t;
        }
        (kept, tests)
    };
    explain.exact_tests += tests;
    *rows = kept;
    Ok(())
}

/// Morsel-parallel aggregation over a typed slice: per-chunk
/// compensated-sum states, merged in chunk order.
pub(crate) fn parallel_aggregate<T: Native>(
    data: &[T],
    rows: &[usize],
    workers: usize,
    govern: &GovernCtx,
) -> Result<AggState, CoreError> {
    let chunks: Vec<&[usize]> = rows.chunks(morsel_size(rows.len(), workers)).collect();
    let states = run_indexed(workers, chunks.len(), |i| {
        // Sub-chunks accumulate into one state sequentially, which pushes
        // the same values in the same order as one whole-chunk pass — the
        // compensated sum is bit-identical, checkpoints or not.
        let mut st = AggState::default();
        for sub in chunks[i].chunks(CHECKPOINT_STRIDE) {
            for &r in sub {
                st.push(data[r].to_f64());
            }
            govern.checkpoint("aggregate")?;
        }
        Ok(st)
    })?;
    let mut acc = AggState::default();
    for s in states {
        acc.merge(&s);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_resolves_workers() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(6).workers(), 6);
        assert!(Parallelism::Auto.workers() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    fn run_indexed_preserves_order_and_first_error() {
        let out = run_indexed(4, 100, |i| Ok::<usize, CoreError>(i * 2)).unwrap();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());

        let err = run_indexed(4, 10, |i| {
            if i >= 3 {
                Err(CoreError::InvalidQuery(format!("boom {i}")))
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        // First failing index in order, regardless of completion order.
        assert!(matches!(err, CoreError::InvalidQuery(ref m) if m == "boom 3"), "{err}");
    }

    #[test]
    fn run_indexed_contains_worker_panics() {
        let err = run_indexed(3, 8, |i| {
            if i == 5 {
                panic!("injected panic in morsel {i}");
            }
            Ok::<usize, CoreError>(i)
        })
        .unwrap_err();
        match err {
            CoreError::WorkerPanic(msg) => {
                assert!(msg.contains("morsel 5"), "{msg}");
                assert!(msg.contains("injected panic"), "{msg}");
            }
            other => panic!("expected WorkerPanic, got {other}"),
        }
    }

    /// Regression: multiple panicked morsels must *all* be reported, not
    /// just the first in index order.
    #[test]
    fn run_indexed_aggregates_all_panics() {
        let err = run_indexed(4, 10, |i| {
            if i == 2 || i == 7 {
                panic!("boom morsel {i}");
            }
            Ok::<usize, CoreError>(i)
        })
        .unwrap_err();
        match err {
            CoreError::WorkerPanic(msg) => {
                assert!(msg.contains("morsel 2"), "{msg}");
                assert!(msg.contains("morsel 7"), "{msg}");
            }
            other => panic!("expected WorkerPanic, got {other}"),
        }
    }

    #[test]
    fn run_indexed_prefers_cancelled_over_panics() {
        use crate::error::CancelReason;
        let err = run_indexed(2, 6, |i| {
            if i == 0 {
                panic!("worker panicked");
            }
            Err::<usize, _>(CoreError::Cancelled {
                reason: CancelReason::Killed,
                elapsed: std::time::Duration::ZERO,
                partial_rows: 0,
            })
        })
        .unwrap_err();
        assert!(
            matches!(err, CoreError::Cancelled { .. }),
            "cancellation is the root cause, got {err}"
        );
    }

    #[test]
    fn morsel_size_floor() {
        assert_eq!(morsel_size(100, 8), MORSEL_MIN_ROWS);
        assert_eq!(morsel_size(1_000_000, 4), 62_500);
    }
}
