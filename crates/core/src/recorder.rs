//! The flight recorder: an always-on, bounded ring of metric samples.
//!
//! `EXPLAIN ANALYZE` and the slow-query log answer "what did *this query*
//! do"; [`crate::metrics::MetricsRegistry`] answers "what has the process
//! done *in total*". Neither answers the incident question — "what was the
//! server doing **ninety seconds ago**, when latency spiked?" — unless an
//! operator happened to be scraping at the time. The recorder closes that
//! gap the way an aircraft flight recorder does: a background sampler
//! snapshots every process counter and gauge (plus admission queue depth,
//! resident tile bytes, WAL backlog and connection counts, which all live
//! in the registry as gauges) every few hundred milliseconds into a
//! fixed-size ring, so the last ~10 minutes of history are *always*
//! queryable after the fact — through the `sys.recorder` virtual table or
//! a Prometheus scrape — without anything having been enabled in advance.
//!
//! Design, mirroring the [`crate::trace::Tracer`] seqlock idiom:
//!
//! * **Fixed memory.** [`RECORDER_SLOTS`] slots of [`SLOT_BYTES`] payload
//!   bytes each (~740 KiB total); the ring never allocates after startup
//!   and simply laps itself.
//! * **Delta compression.** Each sample stores its series values as
//!   zigzag-varint deltas against the previous sample; counters move
//!   slowly between ticks, so a full sample typically packs into a few
//!   dozen bytes of its slot. Every [`KEYFRAME_EVERY`]th sample is a
//!   keyframe holding absolute values, so readers can decode after the
//!   ring wraps without replaying from the beginning of time.
//! * **Lock-free readers.** Every slot carries a seqlock word (odd while
//!   the writer is inside, `2·claim + 2` when stable); readers detect torn
//!   or lapped slots and skip them. Writers (the sampler thread, plus
//!   tests calling [`Recorder::sample_now`]) serialise on a mutex — the
//!   write path runs a few times per second, so contention is not a
//!   concern there; the *read* path never blocks a scrape or a query.
//!
//! The sampler thread is started by [`Recorder::start_sampler`] (the
//! network server does this on startup); a process that never starts it
//! pays nothing but the ring's idle memory.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::metrics::MetricsRegistry;

/// Number of ring slots. At the default sampling interval
/// ([`DEFAULT_INTERVAL_MS`]) the ring holds a little over ten minutes.
pub const RECORDER_SLOTS: usize = 2048;

/// Default milliseconds between samples.
pub const DEFAULT_INTERVAL_MS: u64 = 300;

/// Every this-many samples is a keyframe (absolute values instead of
/// deltas): the decode entry points after the ring laps.
pub const KEYFRAME_EVERY: u64 = 64;

/// Payload words per slot; sized for the worst case of every series value
/// needing a full 10-byte varint.
const SLOT_WORDS: usize = 42;

/// Payload bytes per slot.
pub const SLOT_BYTES: usize = SLOT_WORDS * 8;

/// Keyframe flag in the slot's `len` word.
const FLAG_KEYFRAME: u64 = 1 << 63;

// ----------------------------------------------------------- varint codec

/// Zigzag-map a signed delta onto an unsigned varint domain.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// LEB128-append `v` to `buf`.
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// LEB128-decode at `*pos`, advancing it. `None` on truncation/overflow.
fn get_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return None;
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

// ------------------------------------------------------------- the series

/// Names of the scalar series each sample captures, in value order:
/// every registry counter, then every registry gauge. Built once; the
/// registry accessors are the single source of truth, so a counter added
/// there shows up here (and in `sys.recorder`) automatically.
pub fn series_names() -> &'static [&'static str] {
    static NAMES: OnceLock<Vec<&'static str>> = OnceLock::new();
    NAMES.get_or_init(|| {
        let m = MetricsRegistry::global();
        m.counter_values()
            .iter()
            .map(|(n, _)| *n)
            .chain(m.gauge_values().iter().map(|(n, _)| *n))
            .collect()
    })
}

fn collect_values() -> Vec<u64> {
    let m = MetricsRegistry::global();
    m.counter_values()
        .iter()
        .map(|(_, v)| *v)
        .chain(m.gauge_values().iter().map(|(_, v)| *v))
        .collect()
}

/// One decoded sample: a point-in-time view of every series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderSample {
    /// The sample's position in the recording (strictly increasing).
    pub seq: u64,
    /// Registry uptime when the sample was taken (the rate-conversion
    /// clock — the same one `snapshot_json` stamps).
    pub uptime_ns: u64,
    /// Series values, index-aligned with [`series_names`].
    pub values: Vec<u64>,
}

impl RecorderSample {
    /// Value of the named series, if it exists.
    pub fn value(&self, name: &str) -> Option<u64> {
        let idx = series_names().iter().position(|n| *n == name)?;
        self.values.get(idx).copied()
    }
}

// --------------------------------------------------------------- the ring

/// One ring slot: seqlock word, sample seq, uptime, payload length (with
/// the keyframe flag in the top bit) and the packed payload words.
struct Slot {
    seq: AtomicU64,
    sample_seq: AtomicU64,
    uptime_ns: AtomicU64,
    len: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            sample_seq: AtomicU64::new(0),
            uptime_ns: AtomicU64::new(0),
            len: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Writer-side state, serialised under one mutex.
struct WriterState {
    /// Values of the previous sample (delta base); `None` before the first.
    prev: Option<Vec<u64>>,
    /// Samples written so far == seq of the next sample.
    claim: u64,
}

/// The flight recorder. One process-wide instance ([`Recorder::global`]);
/// private instances exist only for tests.
pub struct Recorder {
    slots: Box<[Slot]>,
    /// Uncompressed absolute copy of the most recent sample, so the
    /// Prometheus scrape path reads one seqlock slot and never decodes.
    latest: Slot,
    latest_values: Box<[AtomicU64]>,
    /// Published `claim` for readers (release after each write).
    published: AtomicU64,
    writer: Mutex<WriterState>,
    sampler_running: AtomicBool,
    interval_ms: AtomicU64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Recorder {
        let n = series_names().len();
        Recorder {
            slots: (0..RECORDER_SLOTS).map(|_| Slot::default()).collect(),
            latest: Slot::default(),
            latest_values: (0..n).map(|_| AtomicU64::new(0)).collect(),
            published: AtomicU64::new(0),
            writer: Mutex::new(WriterState {
                prev: None,
                claim: 0,
            }),
            sampler_running: AtomicBool::new(false),
            interval_ms: AtomicU64::new(DEFAULT_INTERVAL_MS),
        }
    }

    /// The process-wide recorder. Creating it does *not* start the
    /// sampler; see [`Recorder::start_sampler`].
    pub fn global() -> &'static Recorder {
        static GLOBAL: OnceLock<Recorder> = OnceLock::new();
        GLOBAL.get_or_init(Recorder::new)
    }

    /// Milliseconds between sampler ticks.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms.load(Ordering::Relaxed)
    }

    /// Whether the background sampler has been started.
    pub fn sampler_running(&self) -> bool {
        self.sampler_running.load(Ordering::Acquire)
    }

    /// Start the background sampler at `interval` (clamped to
    /// [10 ms, 60 s]). Idempotent: the first caller wins, later calls
    /// (and later intervals) are ignored. The thread is detached — it
    /// samples for the life of the process, which is the point.
    pub fn start_sampler(&'static self, interval: Duration) {
        let ms = (interval.as_millis() as u64).clamp(10, 60_000);
        if self
            .sampler_running
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        self.interval_ms.store(ms, Ordering::Relaxed);
        std::thread::Builder::new()
            .name("lidardb-recorder".into())
            .spawn(move || loop {
                self.sample_now();
                std::thread::sleep(Duration::from_millis(
                    self.interval_ms.load(Ordering::Relaxed),
                ));
            })
            .expect("spawn recorder sampler");
    }

    /// Take one sample right now (the sampler's tick; also the
    /// deterministic entry point for tests).
    pub fn sample_now(&self) {
        let values = collect_values();
        let uptime = MetricsRegistry::global().uptime_ns();
        let mut w = self.writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let claim = w.claim;
        let keyframe = w.prev.is_none() || claim.is_multiple_of(KEYFRAME_EVERY);
        let mut buf = Vec::with_capacity(SLOT_BYTES);
        {
            let zero;
            let base: &[u64] = match (&w.prev, keyframe) {
                (Some(p), false) => p,
                _ => {
                    zero = vec![0u64; values.len()];
                    &zero
                }
            };
            for (v, b) in values.iter().zip(base) {
                put_varint(&mut buf, zigzag(*v as i64 - *b as i64));
            }
        }
        debug_assert!(buf.len() <= SLOT_BYTES, "sample exceeds slot");
        buf.truncate(SLOT_BYTES);

        let slot = &self.slots[(claim % RECORDER_SLOTS as u64) as usize];
        // Seqlock write: odd while inside, 2·claim+2 when stable.
        slot.seq.store(claim * 2 + 1, Ordering::Release);
        slot.sample_seq.store(claim, Ordering::Relaxed);
        slot.uptime_ns.store(uptime, Ordering::Relaxed);
        slot.len.store(
            buf.len() as u64 | if keyframe { FLAG_KEYFRAME } else { 0 },
            Ordering::Relaxed,
        );
        for (i, word) in slot.words.iter().enumerate() {
            let mut bytes = [0u8; 8];
            let at = i * 8;
            if at < buf.len() {
                let n = (buf.len() - at).min(8);
                bytes[..n].copy_from_slice(&buf[at..at + n]);
            } else if at >= buf.len() + 8 {
                break; // rest of the slot is stale; len bounds the read
            }
            word.store(u64::from_le_bytes(bytes), Ordering::Relaxed);
        }
        slot.seq.store(claim * 2 + 2, Ordering::Release);

        // Publish the absolute copy for the scrape path.
        self.latest.seq.store(claim * 2 + 1, Ordering::Release);
        self.latest.sample_seq.store(claim, Ordering::Relaxed);
        self.latest.uptime_ns.store(uptime, Ordering::Relaxed);
        for (cell, v) in self.latest_values.iter().zip(&values) {
            cell.store(*v, Ordering::Relaxed);
        }
        self.latest.seq.store(claim * 2 + 2, Ordering::Release);

        w.prev = Some(values);
        w.claim = claim + 1;
        self.published.store(w.claim, Ordering::Release);
    }

    /// The most recent sample, if any (lock-free; retries while the writer
    /// is mid-publish).
    pub fn latest(&self) -> Option<RecorderSample> {
        loop {
            let s0 = self.latest.seq.load(Ordering::Acquire);
            if s0 == 0 {
                return None;
            }
            if s0 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let sample = RecorderSample {
                seq: self.latest.sample_seq.load(Ordering::Relaxed),
                uptime_ns: self.latest.uptime_ns.load(Ordering::Relaxed),
                values: self
                    .latest_values
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect(),
            };
            if self.latest.seq.load(Ordering::Acquire) == s0 {
                return Some(sample);
            }
        }
    }

    /// Decode the retained history, oldest first. Slots the writer lapped
    /// or tore mid-read are skipped; delta samples whose base was lost
    /// with a lapped predecessor are dropped up to the next keyframe, so
    /// at most [`KEYFRAME_EVERY`] − 1 of the *oldest* samples are lost —
    /// never recent ones.
    pub fn snapshot(&self) -> Vec<RecorderSample> {
        let published = self.published.load(Ordering::Acquire);
        let first = published.saturating_sub(RECORDER_SLOTS as u64);
        let mut out = Vec::new();
        let mut base: Option<(u64, Vec<u64>)> = None; // (seq, values)
        for claim in first..published {
            let Some((keyframe, uptime, bytes)) = self.read_slot(claim) else {
                continue;
            };
            let mut pos = 0usize;
            let n = series_names().len();
            let mut values = Vec::with_capacity(n);
            let prev = match (&base, keyframe) {
                (_, true) => None,
                (Some((bseq, bvals)), false) if *bseq + 1 == claim => Some(bvals),
                _ => {
                    // Delta chain broken (predecessor lapped): wait for the
                    // next keyframe.
                    continue;
                }
            };
            let mut ok = true;
            for i in 0..n {
                let Some(raw) = get_varint(&bytes, &mut pos) else {
                    ok = false;
                    break;
                };
                let b = prev.map_or(0, |p: &Vec<u64>| p[i]);
                values.push((b as i64).wrapping_add(unzigzag(raw)) as u64);
            }
            if !ok {
                base = None;
                continue;
            }
            base = Some((claim, values.clone()));
            out.push(RecorderSample {
                seq: claim,
                uptime_ns: uptime,
                values,
            });
        }
        out
    }

    /// Seqlock read of one slot's payload; `None` on tear/lap.
    fn read_slot(&self, claim: u64) -> Option<(bool, u64, Vec<u8>)> {
        let slot = &self.slots[(claim % RECORDER_SLOTS as u64) as usize];
        let want = claim * 2 + 2;
        let s0 = slot.seq.load(Ordering::Acquire);
        if s0 != want {
            return None;
        }
        let uptime = slot.uptime_ns.load(Ordering::Relaxed);
        let len_word = slot.len.load(Ordering::Relaxed);
        let keyframe = len_word & FLAG_KEYFRAME != 0;
        let len = (len_word & !FLAG_KEYFRAME) as usize;
        if len > SLOT_BYTES {
            return None;
        }
        let mut bytes = Vec::with_capacity(len);
        for i in 0..len.div_ceil(8) {
            let word = slot.words[i].load(Ordering::Relaxed).to_le_bytes();
            let take = (len - i * 8).min(8);
            bytes.extend_from_slice(&word[..take]);
        }
        if slot.seq.load(Ordering::Acquire) != want {
            return None; // torn: the writer lapped us mid-read
        }
        Some((keyframe, uptime, bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, 300, -300, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_varint(&mut buf, zigzag(v));
            let mut pos = 0;
            assert_eq!(unzigzag(get_varint(&buf, &mut pos).unwrap()), v);
            assert_eq!(pos, buf.len());
        }
        // Truncated and over-long inputs decode to None, never panic.
        assert_eq!(get_varint(&[0x80], &mut 0), None);
        assert_eq!(get_varint(&[0xff; 11], &mut 0), None);
    }

    #[test]
    fn samples_round_trip_and_deltas_reconstruct() {
        let r = Recorder::new();
        assert!(r.latest().is_none());
        assert!(r.snapshot().is_empty());
        let m = MetricsRegistry::global();
        for i in 0..5 {
            m.queries.add(3);
            m.table_rows.set(1000 + i);
            r.sample_now();
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 5);
        for w in snap.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
            assert!(w[1].uptime_ns >= w[0].uptime_ns);
            // The counter moved by exactly +3 between samples.
            assert_eq!(
                w[1].value("queries").unwrap(),
                w[0].value("queries").unwrap() + 3
            );
        }
        let last = r.latest().unwrap();
        assert_eq!(last.seq, 4);
        assert_eq!(&last.values, &snap.last().unwrap().values);
        assert_eq!(last.value("table_rows"), Some(1004));
        assert_eq!(last.value("no_such_series"), None);
    }

    #[test]
    fn ring_laps_and_keyframes_resync() {
        let r = Recorder::new();
        let m = MetricsRegistry::global();
        let total = RECORDER_SLOTS as u64 + 3 * KEYFRAME_EVERY;
        for _ in 0..total {
            m.queries.inc();
            r.sample_now();
        }
        let snap = r.snapshot();
        // The ring holds at most RECORDER_SLOTS samples; after a lap the
        // oldest retained delta chain starts at a keyframe, so at most
        // KEYFRAME_EVERY-1 of the oldest slots are undecodable.
        assert!(snap.len() <= RECORDER_SLOTS);
        assert!(snap.len() >= RECORDER_SLOTS - KEYFRAME_EVERY as usize);
        assert_eq!(snap.last().unwrap().seq, total - 1);
        for w in snap.windows(2) {
            assert_eq!(
                w[1].value("queries").unwrap() - w[0].value("queries").unwrap(),
                1,
                "delta reconstruction across the lap"
            );
        }
    }

    #[test]
    fn concurrent_readers_never_see_torn_samples() {
        let r: &'static Recorder = Box::leak(Box::new(Recorder::new()));
        let m = MetricsRegistry::global();
        let readers: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        for s in r.snapshot() {
                            assert_eq!(s.values.len(), series_names().len());
                        }
                        let _ = r.latest();
                    }
                })
            })
            .collect();
        for _ in 0..2000 {
            m.queries.inc();
            r.sample_now();
        }
        for h in readers {
            h.join().unwrap();
        }
    }

    #[test]
    fn series_cover_counters_and_gauges() {
        let names = series_names();
        let m = MetricsRegistry::global();
        assert_eq!(
            names.len(),
            m.counter_values().len() + m.gauge_values().len()
        );
        for key in ["queries", "wal_backlog_rows", "admission_queued", "open_connections"] {
            assert!(names.contains(&key), "{key} missing from recorder series");
        }
    }
}
