//! Rectangle-versus-geometry classification for the refinement grid.
//!
//! §3.3 of the paper: *"MonetDB creates a regular grid over the point
//! geometries selected in the filtering step ... The spatial relation is
//! then evaluated between each non-empty cell and the geometry G. This
//! allows MonetDB to decide whether a grid cell satisfies or not the
//! spatial relation in a single step. However, for cells that overlap the
//! boundary of the given geometry G, an extra step is needed."*
//!
//! [`classify_rect_polygon`] makes exactly that three-way decision for
//! containment predicates, and [`classify_rect_dwithin`] for distance
//! predicates. Both are *sound*: `Inside` means every point of the cell
//! satisfies the predicate, `Outside` means none does; only `Boundary`
//! cells require per-point evaluation.

use crate::envelope::Envelope;
use crate::geometry::Geometry;
use crate::polygon::Polygon;
use crate::predicates::distance_point;

/// The relation of a grid cell to the query geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RectClass {
    /// Every point of the cell satisfies the predicate.
    Inside,
    /// No point of the cell satisfies the predicate.
    Outside,
    /// Mixed: per-point checks are required.
    Boundary,
}

/// Classify a rectangle against a polygon containment predicate.
///
/// Exact: uses edge/rectangle intersection tests, falling back to a point
/// query only when no boundary crosses the cell.
pub fn classify_rect_polygon(rect: &Envelope, poly: &Polygon) -> RectClass {
    if !rect.intersects(&poly.envelope()) {
        return RectClass::Outside;
    }
    // Any polygon edge touching the cell makes it a boundary cell.
    for edge in poly.all_edges() {
        if edge.intersects_envelope(rect) {
            return RectClass::Boundary;
        }
    }
    // No boundary passes through the (closed) cell, so the whole cell lies
    // on one side: test its center.
    if poly.contains_point(&rect.center()) {
        RectClass::Inside
    } else {
        RectClass::Outside
    }
}

/// Classify a rectangle against a multi-polygon containment predicate.
pub fn classify_rect_multipolygon(rect: &Envelope, polys: &[Polygon]) -> RectClass {
    let mut out = RectClass::Outside;
    for p in polys {
        match classify_rect_polygon(rect, p) {
            RectClass::Boundary => return RectClass::Boundary,
            RectClass::Inside => out = RectClass::Inside,
            RectClass::Outside => {}
        }
    }
    out
}

/// Classify a rectangle against `dist(p, g) <= d`.
///
/// Conservative (triangle-inequality bound around the cell center): may
/// report `Boundary` for cells that are actually uniform, never the
/// reverse.
pub fn classify_rect_dwithin(rect: &Envelope, g: &Geometry, d: f64) -> RectClass {
    let center_dist = distance_point(g, &rect.center());
    let r = rect.half_diagonal();
    if center_dist + r <= d {
        RectClass::Inside
    } else if center_dist - r > d {
        RectClass::Outside
    } else {
        RectClass::Boundary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::LineString;
    use crate::polygon::Ring;
    use crate::Point;

    fn env(a: f64, b: f64, c: f64, d: f64) -> Envelope {
        Envelope::new(a, b, c, d).unwrap()
    }

    fn big_square() -> Polygon {
        Polygon::rectangle(&env(0.0, 0.0, 100.0, 100.0))
    }

    #[test]
    fn cell_fully_inside() {
        assert_eq!(
            classify_rect_polygon(&env(10.0, 10.0, 20.0, 20.0), &big_square()),
            RectClass::Inside
        );
    }

    #[test]
    fn cell_fully_outside() {
        assert_eq!(
            classify_rect_polygon(&env(200.0, 200.0, 210.0, 210.0), &big_square()),
            RectClass::Outside
        );
        // Inside the polygon's bbox gap of a concave shape.
        let c = Polygon::from_exterior(vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 20.0),
            Point::new(20.0, 20.0),
            Point::new(20.0, 80.0),
            Point::new(100.0, 80.0),
            Point::new(100.0, 100.0),
            Point::new(0.0, 100.0),
        ])
        .unwrap();
        assert_eq!(
            classify_rect_polygon(&env(50.0, 40.0, 60.0, 60.0), &c),
            RectClass::Outside,
            "cell in the concave notch"
        );
    }

    #[test]
    fn cell_on_boundary() {
        assert_eq!(
            classify_rect_polygon(&env(-5.0, 40.0, 5.0, 60.0), &big_square()),
            RectClass::Boundary
        );
        // Touching the edge exactly also counts as boundary.
        assert_eq!(
            classify_rect_polygon(&env(100.0, 40.0, 110.0, 60.0), &big_square()),
            RectClass::Boundary
        );
    }

    #[test]
    fn hole_interactions() {
        let donut = Polygon::new(
            Ring::new(vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(100.0, 100.0),
                Point::new(0.0, 100.0),
            ])
            .unwrap(),
            vec![Ring::new(vec![
                Point::new(40.0, 40.0),
                Point::new(60.0, 40.0),
                Point::new(60.0, 60.0),
                Point::new(40.0, 60.0),
            ])
            .unwrap()],
        );
        assert_eq!(
            classify_rect_polygon(&env(45.0, 45.0, 55.0, 55.0), &donut),
            RectClass::Outside,
            "cell inside the hole"
        );
        assert_eq!(
            classify_rect_polygon(&env(35.0, 45.0, 45.0, 55.0), &donut),
            RectClass::Boundary,
            "cell straddles hole boundary"
        );
        assert_eq!(
            classify_rect_polygon(&env(5.0, 5.0, 15.0, 15.0), &donut),
            RectClass::Inside
        );
        // Cell containing the whole hole: boundary (hole edges inside it).
        assert_eq!(
            classify_rect_polygon(&env(30.0, 30.0, 70.0, 70.0), &donut),
            RectClass::Boundary
        );
    }

    #[test]
    fn polygon_inside_cell_is_boundary() {
        let tiny = Polygon::rectangle(&env(40.0, 40.0, 42.0, 42.0));
        assert_eq!(
            classify_rect_polygon(&env(0.0, 0.0, 100.0, 100.0), &tiny),
            RectClass::Boundary
        );
    }

    #[test]
    fn multipolygon_classification() {
        let polys = vec![
            Polygon::rectangle(&env(0.0, 0.0, 10.0, 10.0)),
            Polygon::rectangle(&env(50.0, 50.0, 60.0, 60.0)),
        ];
        assert_eq!(
            classify_rect_multipolygon(&env(2.0, 2.0, 3.0, 3.0), &polys),
            RectClass::Inside
        );
        assert_eq!(
            classify_rect_multipolygon(&env(20.0, 20.0, 30.0, 30.0), &polys),
            RectClass::Outside
        );
        assert_eq!(
            classify_rect_multipolygon(&env(55.0, 55.0, 65.0, 55.5), &polys),
            RectClass::Boundary
        );
    }

    #[test]
    fn dwithin_classification_is_sound() {
        let road: Geometry = LineString::new(vec![
            Point::new(0.0, 50.0),
            Point::new(100.0, 50.0),
        ])
        .unwrap()
        .into();
        let d = 10.0;
        // A tiny cell hugging the road: inside.
        assert_eq!(
            classify_rect_dwithin(&env(50.0, 49.0, 51.0, 50.0), &road, d),
            RectClass::Inside
        );
        // Far away: outside.
        assert_eq!(
            classify_rect_dwithin(&env(50.0, 90.0, 51.0, 91.0), &road, d),
            RectClass::Outside
        );
        // Straddling the distance band: boundary.
        assert_eq!(
            classify_rect_dwithin(&env(50.0, 55.0, 60.0, 65.0), &road, d),
            RectClass::Boundary
        );
        // Soundness sweep: sample cells and verify the label against the
        // exact predicate at the corners + center.
        for gx in 0..10 {
            for gy in 0..10 {
                let cell = env(
                    gx as f64 * 10.0,
                    gy as f64 * 10.0,
                    gx as f64 * 10.0 + 10.0,
                    gy as f64 * 10.0 + 10.0,
                );
                let label = classify_rect_dwithin(&cell, &road, d);
                let mut pts = cell.corners().to_vec();
                pts.push(cell.center());
                for p in pts {
                    let within = distance_point(&road, &p) <= d;
                    match label {
                        RectClass::Inside => assert!(within, "cell {gx},{gy}"),
                        RectClass::Outside => assert!(!within, "cell {gx},{gy}"),
                        RectClass::Boundary => {}
                    }
                }
            }
        }
    }
}
