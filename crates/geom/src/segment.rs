//! Line segments and the low-level intersection/distance primitives.

use crate::envelope::Envelope;
use crate::Point;

/// A line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

/// Sign of the cross product `(b - a) × (c - a)`: positive when `c` lies to
/// the left of the directed line `a → b`.
#[inline]
pub fn orient(a: &Point, b: &Point, c: &Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

impl Segment {
    /// Construct from endpoints.
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Bounding envelope of the segment.
    pub fn envelope(&self) -> Envelope {
        Envelope {
            min_x: self.a.x.min(self.b.x),
            min_y: self.a.y.min(self.b.y),
            max_x: self.a.x.max(self.b.x),
            max_y: self.a.y.max(self.b.y),
        }
    }

    /// Whether the (closed) segment contains `p`, assuming `p` is collinear
    /// with the segment.
    fn contains_collinear(&self, p: &Point) -> bool {
        p.x >= self.a.x.min(self.b.x)
            && p.x <= self.a.x.max(self.b.x)
            && p.y >= self.a.y.min(self.b.y)
            && p.y <= self.a.y.max(self.b.y)
    }

    /// Whether two closed segments share at least one point.
    pub fn intersects(&self, other: &Segment) -> bool {
        let d1 = orient(&other.a, &other.b, &self.a);
        let d2 = orient(&other.a, &other.b, &self.b);
        let d3 = orient(&self.a, &self.b, &other.a);
        let d4 = orient(&self.a, &self.b, &other.b);
        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1 == 0.0 && other.contains_collinear(&self.a))
            || (d2 == 0.0 && other.contains_collinear(&self.b))
            || (d3 == 0.0 && self.contains_collinear(&other.a))
            || (d4 == 0.0 && self.contains_collinear(&other.b))
    }

    /// Euclidean distance from the segment to a point.
    pub fn distance_point(&self, p: &Point) -> f64 {
        let vx = self.b.x - self.a.x;
        let vy = self.b.y - self.a.y;
        let wx = p.x - self.a.x;
        let wy = p.y - self.a.y;
        let len2 = vx * vx + vy * vy;
        if len2 == 0.0 {
            return self.a.distance(p);
        }
        let t = ((wx * vx + wy * vy) / len2).clamp(0.0, 1.0);
        let proj = Point::new(self.a.x + t * vx, self.a.y + t * vy);
        proj.distance(p)
    }

    /// Euclidean distance between two segments (0 when they intersect).
    pub fn distance_segment(&self, other: &Segment) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        self.distance_point(&other.a)
            .min(self.distance_point(&other.b))
            .min(other.distance_point(&self.a))
            .min(other.distance_point(&self.b))
    }

    /// Whether the segment has a point inside (or on the boundary of) the
    /// closed rectangle.
    pub fn intersects_envelope(&self, env: &Envelope) -> bool {
        if env.contains(&self.a) || env.contains(&self.b) {
            return true;
        }
        if !self.envelope().intersects(env) {
            return false;
        }
        let c = env.corners();
        for i in 0..4 {
            let edge = Segment::new(c[i], c[(i + 1) % 4]);
            if self.intersects(&edge) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn orientation_signs() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert!(orient(&a, &b, &Point::new(0.5, 1.0)) > 0.0);
        assert!(orient(&a, &b, &Point::new(0.5, -1.0)) < 0.0);
        assert_eq!(orient(&a, &b, &Point::new(2.0, 0.0)), 0.0);
    }

    #[test]
    fn proper_crossing() {
        assert!(seg(0.0, 0.0, 2.0, 2.0).intersects(&seg(0.0, 2.0, 2.0, 0.0)));
        assert!(!seg(0.0, 0.0, 1.0, 1.0).intersects(&seg(2.0, 2.0, 3.0, 3.0)));
    }

    #[test]
    fn touching_endpoints_count() {
        assert!(seg(0.0, 0.0, 1.0, 0.0).intersects(&seg(1.0, 0.0, 2.0, 5.0)));
        // T-junction.
        assert!(seg(0.0, 0.0, 2.0, 0.0).intersects(&seg(1.0, 0.0, 1.0, 3.0)));
    }

    #[test]
    fn collinear_overlap_and_disjoint() {
        assert!(seg(0.0, 0.0, 2.0, 0.0).intersects(&seg(1.0, 0.0, 3.0, 0.0)));
        assert!(!seg(0.0, 0.0, 1.0, 0.0).intersects(&seg(2.0, 0.0, 3.0, 0.0)));
        // Collinear touching at a single point.
        assert!(seg(0.0, 0.0, 1.0, 0.0).intersects(&seg(1.0, 0.0, 2.0, 0.0)));
    }

    #[test]
    fn parallel_non_collinear() {
        assert!(!seg(0.0, 0.0, 2.0, 0.0).intersects(&seg(0.0, 1.0, 2.0, 1.0)));
    }

    #[test]
    fn distance_point_cases() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.distance_point(&Point::new(5.0, 3.0)), 3.0); // interior
        assert_eq!(s.distance_point(&Point::new(-4.0, 3.0)), 5.0); // start clamp
        assert_eq!(s.distance_point(&Point::new(13.0, 4.0)), 5.0); // end clamp
        assert_eq!(s.distance_point(&Point::new(7.0, 0.0)), 0.0); // on segment
        // Degenerate segment behaves like a point.
        let d = seg(1.0, 1.0, 1.0, 1.0);
        assert_eq!(d.distance_point(&Point::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn distance_segment_cases() {
        let a = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(a.distance_segment(&seg(0.0, 3.0, 10.0, 3.0)), 3.0);
        assert_eq!(a.distance_segment(&seg(5.0, -1.0, 5.0, 1.0)), 0.0);
        assert_eq!(a.distance_segment(&seg(13.0, 4.0, 13.0, 10.0)), 5.0);
    }

    #[test]
    fn envelope_intersection() {
        let env = Envelope::new(0.0, 0.0, 10.0, 10.0).unwrap();
        // Endpoint inside.
        assert!(seg(5.0, 5.0, 20.0, 20.0).intersects_envelope(&env));
        // Pass-through without endpoints inside.
        assert!(seg(-5.0, 5.0, 15.0, 5.0).intersects_envelope(&env));
        // Corner graze.
        assert!(seg(-5.0, 5.0, 5.0, 15.0).intersects_envelope(&env));
        // Near miss: passes outside the corner.
        assert!(!seg(-5.0, 6.0, 6.0, 17.0).intersects_envelope(&env));
        // Fully outside.
        assert!(!seg(20.0, 20.0, 30.0, 30.0).intersects_envelope(&env));
    }

    #[test]
    fn segment_metrics() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        let e = s.envelope();
        assert_eq!((e.min_x, e.min_y, e.max_x, e.max_y), (0.0, 0.0, 3.0, 4.0));
    }
}
