//! Polygons with holes.
//!
//! A [`Ring`] is a closed sequence of vertices (the closing edge from last
//! back to first is implicit); a [`Polygon`] is one exterior ring plus zero
//! or more interior rings (holes). Containment uses ray casting with the
//! boundary counted as *inside*, the convention of OGC `ST_Intersects`-style
//! coverage that the refinement step relies on.

use crate::envelope::Envelope;
use crate::error::GeomError;
use crate::segment::Segment;
use crate::Point;

/// A closed ring of at least three vertices (closing edge implicit).
#[derive(Debug, Clone, PartialEq)]
pub struct Ring {
    vertices: Vec<Point>,
}

impl Ring {
    /// Build a ring, validating vertex count and finiteness. A duplicated
    /// closing vertex (WKT convention) is removed.
    pub fn new(mut vertices: Vec<Point>) -> Result<Self, GeomError> {
        if vertices.len() >= 2 && vertices.first() == vertices.last() {
            vertices.pop();
        }
        if vertices.len() < 3 {
            return Err(GeomError::DegenerateRing(vertices.len()));
        }
        if vertices.iter().any(|p| !p.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        Ok(Ring { vertices })
    }

    /// The vertices (without the duplicated closing vertex).
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Iterate the edges, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area (positive for counter-clockwise winding).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut s = 0.0;
        for i in 0..n {
            let p = &self.vertices[i];
            let q = &self.vertices[(i + 1) % n];
            s += p.x * q.y - q.x * p.y;
        }
        s / 2.0
    }

    /// Absolute area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Whether the ring winds counter-clockwise.
    pub fn is_ccw(&self) -> bool {
        self.signed_area() > 0.0
    }

    /// Bounding envelope.
    pub fn envelope(&self) -> Envelope {
        Envelope::of_points(&self.vertices).expect("ring has >= 3 vertices")
    }

    /// Ray-casting point-in-ring test; boundary points count as inside.
    pub fn contains_point(&self, p: &Point) -> bool {
        let n = self.vertices.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let a = &self.vertices[i];
            let b = &self.vertices[j];
            // Boundary check: point on edge [a, b]?
            if Segment::new(*a, *b).distance_point(p) == 0.0 {
                return true;
            }
            if (a.y > p.y) != (b.y > p.y) {
                let x_cross = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Minimum distance from the ring boundary to a point.
    pub fn boundary_distance(&self, p: &Point) -> f64 {
        self.edges()
            .map(|e| e.distance_point(p))
            .fold(f64::INFINITY, f64::min)
    }
}

/// A polygon: an exterior ring minus its holes.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    exterior: Ring,
    holes: Vec<Ring>,
}

impl Polygon {
    /// Construct from rings.
    pub fn new(exterior: Ring, holes: Vec<Ring>) -> Self {
        Polygon { exterior, holes }
    }

    /// Convenience: a polygon with no holes from raw vertices.
    pub fn from_exterior(vertices: Vec<Point>) -> Result<Self, GeomError> {
        Ok(Polygon::new(Ring::new(vertices)?, Vec::new()))
    }

    /// An axis-aligned rectangle polygon.
    pub fn rectangle(env: &Envelope) -> Self {
        Polygon::new(
            Ring::new(env.corners().to_vec()).expect("4 distinct corners"),
            Vec::new(),
        )
    }

    /// The exterior ring.
    pub fn exterior(&self) -> &Ring {
        &self.exterior
    }

    /// The interior rings.
    pub fn holes(&self) -> &[Ring] {
        &self.holes
    }

    /// Bounding envelope (of the exterior).
    pub fn envelope(&self) -> Envelope {
        self.exterior.envelope()
    }

    /// Area: exterior minus holes.
    pub fn area(&self) -> f64 {
        self.exterior.area() - self.holes.iter().map(Ring::area).sum::<f64>()
    }

    /// Whether the polygon region (boundary inclusive, holes exclusive —
    /// but hole *boundaries* inclusive) contains the point.
    pub fn contains_point(&self, p: &Point) -> bool {
        if !self.exterior.contains_point(p) {
            return false;
        }
        for hole in &self.holes {
            // On the hole boundary still counts as inside the polygon.
            if hole.contains_point(p) && hole.boundary_distance(p) > 0.0 {
                return false;
            }
        }
        true
    }

    /// Iterate all edges of all rings.
    pub fn all_edges(&self) -> impl Iterator<Item = Segment> + '_ {
        self.exterior
            .edges()
            .chain(self.holes.iter().flat_map(Ring::edges))
    }

    /// Distance from the polygon region to a point: 0 inside, else the
    /// minimum distance to any boundary edge.
    pub fn distance_point(&self, p: &Point) -> f64 {
        if self.contains_point(p) {
            return 0.0;
        }
        self.all_edges()
            .map(|e| e.distance_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Total number of vertices across all rings.
    pub fn num_vertices(&self) -> usize {
        self.exterior.vertices().len()
            + self.holes.iter().map(|h| h.vertices().len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon {
        Polygon::from_exterior(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap()
    }

    fn donut() -> Polygon {
        Polygon::new(
            Ring::new(vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.0, 10.0),
                Point::new(0.0, 10.0),
            ])
            .unwrap(),
            vec![Ring::new(vec![
                Point::new(4.0, 4.0),
                Point::new(6.0, 4.0),
                Point::new(6.0, 6.0),
                Point::new(4.0, 6.0),
            ])
            .unwrap()],
        )
    }

    #[test]
    fn ring_validation() {
        assert!(Ring::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).is_err());
        // WKT-style closed ring: closing vertex dropped.
        let r = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.0),
        ])
        .unwrap();
        assert_eq!(r.vertices().len(), 3);
        assert!(Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(f64::NAN, 0.0),
            Point::new(1.0, 1.0)
        ])
        .is_err());
    }

    #[test]
    fn winding_and_area() {
        let ccw = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 3.0),
            Point::new(0.0, 3.0),
        ])
        .unwrap();
        assert!(ccw.is_ccw());
        assert_eq!(ccw.area(), 12.0);
        assert_eq!(ccw.signed_area(), 12.0);
        let cw = Ring::new(vec![
            Point::new(0.0, 3.0),
            Point::new(4.0, 3.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 0.0),
        ])
        .unwrap();
        assert!(!cw.is_ccw());
        assert_eq!(cw.signed_area(), -12.0);
    }

    #[test]
    fn point_in_square() {
        let sq = square();
        assert!(sq.contains_point(&Point::new(5.0, 5.0)));
        assert!(!sq.contains_point(&Point::new(-1.0, 5.0)));
        assert!(!sq.contains_point(&Point::new(5.0, 11.0)));
        // Boundary and corners are inside.
        assert!(sq.contains_point(&Point::new(0.0, 5.0)));
        assert!(sq.contains_point(&Point::new(10.0, 10.0)));
        assert!(sq.contains_point(&Point::new(5.0, 0.0)));
    }

    #[test]
    fn point_in_donut() {
        let d = donut();
        assert!(d.contains_point(&Point::new(1.0, 1.0)));
        assert!(!d.contains_point(&Point::new(5.0, 5.0)), "inside the hole");
        // The hole boundary belongs to the polygon.
        assert!(d.contains_point(&Point::new(4.0, 5.0)));
        assert_eq!(d.area(), 100.0 - 4.0);
    }

    #[test]
    fn concave_polygon() {
        // A "C" shape.
        let c = Polygon::from_exterior(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 3.0),
            Point::new(3.0, 3.0),
            Point::new(3.0, 7.0),
            Point::new(10.0, 7.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        assert!(c.contains_point(&Point::new(1.0, 5.0)));
        assert!(!c.contains_point(&Point::new(7.0, 5.0)), "inside the notch");
        assert!(c.contains_point(&Point::new(7.0, 1.0)));
    }

    #[test]
    fn distance() {
        let sq = square();
        assert_eq!(sq.distance_point(&Point::new(5.0, 5.0)), 0.0);
        assert_eq!(sq.distance_point(&Point::new(13.0, 14.0)), 5.0);
        assert_eq!(sq.distance_point(&Point::new(5.0, -2.0)), 2.0);
        let d = donut();
        // Center of the hole: nearest boundary is the hole ring, 1 away.
        assert_eq!(d.distance_point(&Point::new(5.0, 5.0)), 1.0);
    }

    #[test]
    fn envelope_and_vertices() {
        let d = donut();
        let e = d.envelope();
        assert_eq!((e.min_x, e.max_x, e.min_y, e.max_y), (0.0, 10.0, 0.0, 10.0));
        assert_eq!(d.num_vertices(), 8);
        assert_eq!(d.all_edges().count(), 8);
    }

    #[test]
    fn rectangle_constructor() {
        let env = Envelope::new(1.0, 2.0, 3.0, 4.0).unwrap();
        let r = Polygon::rectangle(&env);
        assert_eq!(r.area(), env.area());
        assert!(r.contains_point(&Point::new(2.0, 3.0)));
    }

    #[test]
    fn ray_casting_vertex_grazing() {
        // Horizontal ray passing exactly through a vertex must not double
        // count: diamond shape, query point level with left/right vertices.
        let diamond = Polygon::from_exterior(vec![
            Point::new(5.0, 0.0),
            Point::new(10.0, 5.0),
            Point::new(5.0, 10.0),
            Point::new(0.0, 5.0),
        ])
        .unwrap();
        assert!(diamond.contains_point(&Point::new(5.0, 5.0)));
        assert!(!diamond.contains_point(&Point::new(-1.0, 5.0)));
        assert!(!diamond.contains_point(&Point::new(11.0, 5.0)));
        assert!(!diamond.contains_point(&Point::new(0.5, 0.5)));
    }
}
