//! The dynamic [`Geometry`] sum type and the remaining simple-feature types.

use crate::envelope::Envelope;
use crate::error::GeomError;
use crate::polygon::Polygon;
use crate::segment::Segment;
use crate::Point;

/// A polyline of at least two vertices.
#[derive(Debug, Clone, PartialEq)]
pub struct LineString {
    vertices: Vec<Point>,
}

impl LineString {
    /// Construct, validating vertex count and finiteness.
    pub fn new(vertices: Vec<Point>) -> Result<Self, GeomError> {
        if vertices.len() < 2 {
            return Err(GeomError::DegenerateLine(vertices.len()));
        }
        if vertices.iter().any(|p| !p.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        Ok(LineString { vertices })
    }

    /// The vertices.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Iterate the segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.vertices
            .windows(2)
            .map(|w| Segment::new(w[0], w[1]))
    }

    /// Total length.
    pub fn length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Bounding envelope.
    pub fn envelope(&self) -> Envelope {
        Envelope::of_points(&self.vertices).expect("linestring has >= 2 vertices")
    }

    /// Minimum distance to a point.
    pub fn distance_point(&self, p: &Point) -> f64 {
        self.segments()
            .map(|s| s.distance_point(p))
            .fold(f64::INFINITY, f64::min)
    }
}

/// A set of points.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPoint {
    points: Vec<Point>,
}

impl MultiPoint {
    /// Construct, validating finiteness.
    pub fn new(points: Vec<Point>) -> Result<Self, GeomError> {
        if points.iter().any(|p| !p.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        Ok(MultiPoint { points })
    }

    /// The member points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }
}

/// A set of polygons.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPolygon {
    polygons: Vec<Polygon>,
}

impl MultiPolygon {
    /// Construct from member polygons.
    pub fn new(polygons: Vec<Polygon>) -> Self {
        MultiPolygon { polygons }
    }

    /// The member polygons.
    pub fn polygons(&self) -> &[Polygon] {
        &self.polygons
    }

    /// Total area.
    pub fn area(&self) -> f64 {
        self.polygons.iter().map(Polygon::area).sum()
    }
}

/// Any supported simple-feature geometry.
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    /// A single point.
    Point(Point),
    /// A set of points.
    MultiPoint(MultiPoint),
    /// A polyline.
    LineString(LineString),
    /// A polygon with optional holes.
    Polygon(Polygon),
    /// A set of polygons.
    MultiPolygon(MultiPolygon),
}

impl Geometry {
    /// Bounding envelope; `None` only for an empty multi-geometry.
    pub fn envelope(&self) -> Option<Envelope> {
        match self {
            Geometry::Point(p) => Envelope::of_points([p]),
            Geometry::MultiPoint(mp) => Envelope::of_points(mp.points()),
            Geometry::LineString(ls) => Some(ls.envelope()),
            Geometry::Polygon(pg) => Some(pg.envelope()),
            Geometry::MultiPolygon(mp) => {
                let mut it = mp.polygons().iter();
                let mut env = it.next()?.envelope();
                for p in it {
                    env.expand(&p.envelope());
                }
                Some(env)
            }
        }
    }

    /// Iterate every boundary segment of the geometry (empty for points).
    pub fn boundary_segments(&self) -> Box<dyn Iterator<Item = Segment> + '_> {
        match self {
            Geometry::Point(_) | Geometry::MultiPoint(_) => Box::new(std::iter::empty()),
            Geometry::LineString(ls) => Box::new(ls.segments()),
            Geometry::Polygon(pg) => Box::new(pg.all_edges()),
            Geometry::MultiPolygon(mp) => {
                Box::new(mp.polygons().iter().flat_map(Polygon::all_edges))
            }
        }
    }

    /// Iterate every vertex of the geometry.
    pub fn vertices(&self) -> Box<dyn Iterator<Item = Point> + '_> {
        match self {
            Geometry::Point(p) => Box::new(std::iter::once(*p)),
            Geometry::MultiPoint(mp) => Box::new(mp.points().iter().copied()),
            Geometry::LineString(ls) => Box::new(ls.vertices().iter().copied()),
            Geometry::Polygon(pg) => Box::new(
                pg.exterior()
                    .vertices()
                    .iter()
                    .chain(pg.holes().iter().flat_map(|h| h.vertices()))
                    .copied(),
            ),
            Geometry::MultiPolygon(mp) => Box::new(mp.polygons().iter().flat_map(|pg| {
                pg.exterior()
                    .vertices()
                    .iter()
                    .chain(pg.holes().iter().flat_map(|h| h.vertices()))
                    .copied()
            })),
        }
    }

    /// Short OGC type name, e.g. `"POLYGON"`.
    pub fn type_name(&self) -> &'static str {
        match self {
            Geometry::Point(_) => "POINT",
            Geometry::MultiPoint(_) => "MULTIPOINT",
            Geometry::LineString(_) => "LINESTRING",
            Geometry::Polygon(_) => "POLYGON",
            Geometry::MultiPolygon(_) => "MULTIPOLYGON",
        }
    }
}

impl From<Point> for Geometry {
    fn from(p: Point) -> Self {
        Geometry::Point(p)
    }
}
impl From<LineString> for Geometry {
    fn from(ls: LineString) -> Self {
        Geometry::LineString(ls)
    }
}
impl From<Polygon> for Geometry {
    fn from(pg: Polygon) -> Self {
        Geometry::Polygon(pg)
    }
}
impl From<MultiPolygon> for Geometry {
    fn from(mp: MultiPolygon) -> Self {
        Geometry::MultiPolygon(mp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> LineString {
        LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(3.0, 8.0),
        ])
        .unwrap()
    }

    #[test]
    fn linestring_validation_and_metrics() {
        assert!(LineString::new(vec![Point::new(0.0, 0.0)]).is_err());
        let l = line();
        assert_eq!(l.length(), 9.0);
        assert_eq!(l.segments().count(), 2);
        let e = l.envelope();
        assert_eq!((e.min_x, e.max_x, e.min_y, e.max_y), (0.0, 3.0, 0.0, 8.0));
    }

    #[test]
    fn linestring_distance() {
        let l = line();
        assert_eq!(l.distance_point(&Point::new(3.0, 6.0)), 0.0);
        assert_eq!(l.distance_point(&Point::new(6.0, 8.0)), 3.0);
    }

    #[test]
    fn geometry_envelopes() {
        let g: Geometry = Point::new(2.0, 3.0).into();
        let e = g.envelope().unwrap();
        assert_eq!((e.min_x, e.max_x), (2.0, 2.0));
        let mp = MultiPolygon::new(vec![
            Polygon::from_exterior(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
            ])
            .unwrap(),
            Polygon::from_exterior(vec![
                Point::new(5.0, 5.0),
                Point::new(6.0, 5.0),
                Point::new(6.0, 6.0),
            ])
            .unwrap(),
        ]);
        let e = Geometry::from(mp).envelope().unwrap();
        assert_eq!((e.min_x, e.max_x, e.min_y, e.max_y), (0.0, 6.0, 0.0, 6.0));
        assert!(Geometry::MultiPolygon(MultiPolygon::new(vec![]))
            .envelope()
            .is_none());
    }

    #[test]
    fn boundary_segments_counts() {
        assert_eq!(
            Geometry::from(Point::new(0.0, 0.0))
                .boundary_segments()
                .count(),
            0
        );
        assert_eq!(Geometry::from(line()).boundary_segments().count(), 2);
        let sq = Polygon::from_exterior(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap();
        assert_eq!(Geometry::from(sq).boundary_segments().count(), 4);
    }

    #[test]
    fn type_names_and_vertices() {
        assert_eq!(Geometry::from(Point::new(0.0, 0.0)).type_name(), "POINT");
        assert_eq!(Geometry::from(line()).type_name(), "LINESTRING");
        assert_eq!(Geometry::from(line()).vertices().count(), 3);
        let mp = MultiPoint::new(vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)]).unwrap();
        assert_eq!(Geometry::MultiPoint(mp).vertices().count(), 2);
    }

    #[test]
    fn multipolygon_area() {
        let a = Polygon::rectangle(&Envelope::new(0.0, 0.0, 2.0, 2.0).unwrap());
        let b = Polygon::rectangle(&Envelope::new(10.0, 10.0, 11.0, 12.0).unwrap());
        assert_eq!(MultiPolygon::new(vec![a, b]).area(), 6.0);
    }
}
