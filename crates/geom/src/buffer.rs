//! Polyline and point buffering (the geometry behind `ST_Buffer`).
//!
//! A light, dependency-free buffer: polylines become corridor polygons via
//! per-vertex normal offsetting (adequate for the gently curved road and
//! river centrelines of GIS base data; no self-intersection cleanup), and
//! points become regular polygons approximating a disc. Polygons buffer by
//! corridor-expanding their exterior ring's bbox-side outwards is *not*
//! attempted — `ST_DWithin` covers the distance-query use case exactly.

use crate::envelope::Envelope;
use crate::error::GeomError;
use crate::geometry::{Geometry, LineString};
use crate::polygon::Polygon;
use crate::Point;

/// Buffer a polyline into a corridor polygon of the given half-width.
pub fn buffer_polyline(line: &LineString, half_width: f64) -> Result<Polygon, GeomError> {
    if half_width <= 0.0 || !half_width.is_finite() {
        return Err(GeomError::NonFiniteCoordinate);
    }
    let v = line.vertices();
    let mut left: Vec<Point> = Vec::with_capacity(v.len());
    let mut right: Vec<Point> = Vec::with_capacity(v.len());
    for i in 0..v.len() {
        // Average direction of the adjacent segments.
        let prev = if i > 0 { v[i - 1] } else { v[i] };
        let next = if i + 1 < v.len() { v[i + 1] } else { v[i] };
        let (dx, dy) = (next.x - prev.x, next.y - prev.y);
        let len = (dx * dx + dy * dy).sqrt();
        let (nx, ny) = if len > 0.0 {
            (-dy / len, dx / len)
        } else {
            (0.0, 1.0)
        };
        left.push(Point::new(
            v[i].x + nx * half_width,
            v[i].y + ny * half_width,
        ));
        right.push(Point::new(
            v[i].x - nx * half_width,
            v[i].y - ny * half_width,
        ));
    }
    right.reverse();
    left.extend(right);
    Polygon::from_exterior(left)
}

/// Buffer a point into a regular `segments`-gon approximating a disc.
pub fn buffer_point(p: &Point, radius: f64, segments: usize) -> Result<Polygon, GeomError> {
    if radius <= 0.0 || !radius.is_finite() {
        return Err(GeomError::NonFiniteCoordinate);
    }
    let n = segments.max(3);
    let pts: Vec<Point> = (0..n)
        .map(|i| {
            let a = i as f64 / n as f64 * std::f64::consts::TAU;
            Point::new(p.x + radius * a.cos(), p.y + radius * a.sin())
        })
        .collect();
    Polygon::from_exterior(pts)
}

/// `ST_Buffer` semantics over the geometry sum type (points and polylines;
/// other inputs are unsupported — use `ST_DWithin` for distance queries).
pub fn buffer_geometry(g: &Geometry, distance: f64) -> Result<Geometry, GeomError> {
    match g {
        Geometry::Point(p) => Ok(Geometry::Polygon(buffer_point(p, distance, 16)?)),
        Geometry::LineString(ls) => Ok(Geometry::Polygon(buffer_polyline(ls, distance)?)),
        other => Err(GeomError::WktParse {
            reason: format!("ST_Buffer unsupported for {}", other.type_name()),
            offset: 0,
        }),
    }
}

/// Convenience: the buffered envelope of a geometry (always defined).
pub fn buffered_envelope(g: &Geometry, distance: f64) -> Option<Envelope> {
    g.envelope().map(|e| e.buffered(distance))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(pts: &[(f64, f64)]) -> LineString {
        LineString::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn corridor_width_is_respected() {
        let c = buffer_polyline(&line(&[(0.0, 0.0), (100.0, 0.0)]), 5.0).unwrap();
        assert!(c.contains_point(&Point::new(50.0, 4.9)));
        assert!(c.contains_point(&Point::new(50.0, -4.9)));
        assert!(!c.contains_point(&Point::new(50.0, 5.1)));
    }

    #[test]
    fn bent_corridor_covers_both_arms() {
        let c = buffer_polyline(&line(&[(0.0, 0.0), (100.0, 0.0), (100.0, 100.0)]), 3.0).unwrap();
        assert!(c.area() > 1000.0);
        assert!(c.contains_point(&Point::new(50.0, 0.0)));
        assert!(c.contains_point(&Point::new(100.0, 50.0)));
    }

    #[test]
    fn point_disc() {
        let d = buffer_point(&Point::new(10.0, 10.0), 5.0, 32).unwrap();
        assert!(d.contains_point(&Point::new(10.0, 14.5)));
        assert!(!d.contains_point(&Point::new(10.0, 15.5)));
        // Area approaches the disc's from below.
        let disc = std::f64::consts::PI * 25.0;
        assert!(d.area() > disc * 0.95 && d.area() < disc);
    }

    #[test]
    fn geometry_dispatch_and_errors() {
        let g = buffer_geometry(&Geometry::Point(Point::new(0.0, 0.0)), 1.0).unwrap();
        assert_eq!(g.type_name(), "POLYGON");
        let g = buffer_geometry(&Geometry::LineString(line(&[(0.0, 0.0), (1.0, 0.0)])), 1.0)
            .unwrap();
        assert_eq!(g.type_name(), "POLYGON");
        let poly = Geometry::Polygon(
            Polygon::from_exterior(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
            ])
            .unwrap(),
        );
        assert!(buffer_geometry(&poly, 1.0).is_err());
        assert!(buffer_polyline(&line(&[(0.0, 0.0), (1.0, 0.0)]), 0.0).is_err());
        assert!(buffer_point(&Point::new(0.0, 0.0), f64::NAN, 8).is_err());
    }

    #[test]
    fn buffered_envelope_grows() {
        let g = Geometry::Point(Point::new(5.0, 5.0));
        let e = buffered_envelope(&g, 2.0).unwrap();
        assert_eq!((e.min_x, e.max_x), (3.0, 7.0));
    }
}
