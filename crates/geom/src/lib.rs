//! # lidardb-geom — OGC Simple Features subset
//!
//! The geometry substrate of the system: the subset of the OpenGIS Simple
//! Features Access standard [OGC 06-104r4] that the paper's query model
//! (§3.3) and demonstration scenarios (§4) exercise — points, polylines,
//! polygons with holes, their multi-variants, WKT text I/O, and the spatial
//! predicates (`contains`, `intersects`, `distance`, `dwithin`).
//!
//! On top of the standard predicates, [`classify`] provides the
//! **rectangle-versus-geometry classification** that powers the regular-grid
//! refinement step of §3.3: each grid cell is decided as fully INSIDE the
//! query geometry (accept all its points without further checks), fully
//! OUTSIDE (reject all), or BOUNDARY (fall back to exact per-point tests).
//!
//! All coordinates are planar `f64` (projected CRS such as the Dutch RD /
//! EPSG:28992 that AHN2 ships in); no geodesy is involved, exactly as in the
//! demo.

pub mod buffer;
pub mod classify;
pub mod envelope;
pub mod error;
pub mod geometry;
pub mod polygon;
pub mod predicates;
pub mod segment;
pub mod wkt;

pub use buffer::{buffer_geometry, buffer_point, buffer_polyline};
pub use classify::{classify_rect_dwithin, classify_rect_polygon, RectClass};
pub use envelope::Envelope;
pub use error::GeomError;
pub use geometry::{Geometry, LineString, MultiPoint, MultiPolygon};
pub use polygon::{Polygon, Ring};
pub use predicates::{contains_point, distance_point, dwithin_point, intersects};
pub use segment::Segment;

/// A planar point. The fundamental coordinate tuple of the crate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Easting.
    pub x: f64,
    /// Northing.
    pub y: f64,
}

impl Point {
    /// Construct from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Whether both coordinates are finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn point_finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn point_from_tuple() {
        let p: Point = (2.0, 3.0).into();
        assert_eq!(p, Point::new(2.0, 3.0));
    }
}
