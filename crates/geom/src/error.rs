//! Error type of the geometry crate.

use std::fmt;

/// Errors produced while constructing or parsing geometries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// A ring needs at least three distinct vertices.
    DegenerateRing(usize),
    /// A linestring needs at least two vertices.
    DegenerateLine(usize),
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate,
    /// WKT text failed to parse; carries a human-readable reason and the
    /// byte offset where parsing stopped.
    WktParse {
        /// What went wrong.
        reason: String,
        /// Byte offset into the input.
        offset: usize,
    },
    /// An envelope was constructed with inverted bounds.
    InvertedEnvelope,
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::DegenerateRing(n) => {
                write!(f, "polygon ring needs >= 3 distinct vertices, got {n}")
            }
            GeomError::DegenerateLine(n) => {
                write!(f, "linestring needs >= 2 vertices, got {n}")
            }
            GeomError::NonFiniteCoordinate => write!(f, "non-finite coordinate"),
            GeomError::WktParse { reason, offset } => {
                write!(f, "WKT parse error at byte {offset}: {reason}")
            }
            GeomError::InvertedEnvelope => write!(f, "envelope bounds are inverted"),
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(GeomError::DegenerateRing(2).to_string().contains("3"));
        let e = GeomError::WktParse {
            reason: "expected number".into(),
            offset: 7,
        };
        assert!(e.to_string().contains("byte 7"));
    }
}
