//! Axis-aligned envelopes (bounding rectangles).
//!
//! Envelopes drive the coarse filtering step of the query model: the bbox
//! of the query geometry is probed against the X- and Y-column imprints,
//! and every grid cell of the refinement step is itself an envelope.

use crate::error::GeomError;
use crate::Point;

/// A closed axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Smallest easting.
    pub min_x: f64,
    /// Smallest northing.
    pub min_y: f64,
    /// Largest easting.
    pub max_x: f64,
    /// Largest northing.
    pub max_y: f64,
}

impl Envelope {
    /// Construct, validating `min <= max` and finiteness.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Result<Self, GeomError> {
        if ![min_x, min_y, max_x, max_y].iter().all(|v| v.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        if min_x > max_x || min_y > max_y {
            return Err(GeomError::InvertedEnvelope);
        }
        Ok(Envelope {
            min_x,
            min_y,
            max_x,
            max_y,
        })
    }

    /// The smallest envelope containing all points; `None` when empty.
    pub fn of_points<'a>(pts: impl IntoIterator<Item = &'a Point>) -> Option<Self> {
        let mut it = pts.into_iter();
        let first = it.next()?;
        let mut env = Envelope {
            min_x: first.x,
            min_y: first.y,
            max_x: first.x,
            max_y: first.y,
        };
        for p in it {
            env.expand_point(p);
        }
        Some(env)
    }

    /// Grow to include `p`.
    pub fn expand_point(&mut self, p: &Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Grow to include another envelope.
    pub fn expand(&mut self, other: &Envelope) {
        self.min_x = self.min_x.min(other.min_x);
        self.min_y = self.min_y.min(other.min_y);
        self.max_x = self.max_x.max(other.max_x);
        self.max_y = self.max_y.max(other.max_y);
    }

    /// Grow outward by `margin` on every side (used by `ST_DWithin`
    /// filtering: the candidate bbox is the geometry bbox buffered by the
    /// distance).
    pub fn buffered(&self, margin: f64) -> Envelope {
        Envelope {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }

    /// Whether the (closed) envelope contains the point.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Whether two closed envelopes overlap (shared boundary counts).
    #[inline]
    pub fn intersects(&self, other: &Envelope) -> bool {
        self.min_x <= other.max_x
            && self.max_x >= other.min_x
            && self.min_y <= other.max_y
            && self.max_y >= other.min_y
    }

    /// Whether `other` lies entirely within `self`.
    pub fn contains_envelope(&self, other: &Envelope) -> bool {
        other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// Width along X.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height along Y.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Half of the diagonal length — the radius of the circumscribed
    /// circle, used by the conservative distance classification.
    pub fn half_diagonal(&self) -> f64 {
        (self.width().powi(2) + self.height().powi(2)).sqrt() / 2.0
    }

    /// The four corners, counter-clockwise from `(min_x, min_y)`.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.min_x, self.min_y),
            Point::new(self.max_x, self.min_y),
            Point::new(self.max_x, self.max_y),
            Point::new(self.min_x, self.max_y),
        ]
    }

    /// Euclidean distance from the envelope to a point (0 when inside).
    pub fn distance_point(&self, p: &Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(a: f64, b: f64, c: f64, d: f64) -> Envelope {
        Envelope::new(a, b, c, d).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Envelope::new(0.0, 0.0, 1.0, 1.0).is_ok());
        assert_eq!(
            Envelope::new(2.0, 0.0, 1.0, 1.0).unwrap_err(),
            GeomError::InvertedEnvelope
        );
        assert_eq!(
            Envelope::new(f64::NAN, 0.0, 1.0, 1.0).unwrap_err(),
            GeomError::NonFiniteCoordinate
        );
        // Degenerate (zero-area) envelopes are legal: a point bbox.
        assert!(Envelope::new(1.0, 1.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn of_points() {
        let pts = [
            Point::new(3.0, -1.0),
            Point::new(0.0, 5.0),
            Point::new(2.0, 2.0),
        ];
        let e = Envelope::of_points(&pts).unwrap();
        assert_eq!(e, env(0.0, -1.0, 3.0, 5.0));
        assert!(Envelope::of_points(&[]).is_none());
    }

    #[test]
    fn contains_is_closed() {
        let e = env(0.0, 0.0, 10.0, 10.0);
        assert!(e.contains(&Point::new(0.0, 0.0)));
        assert!(e.contains(&Point::new(10.0, 10.0)));
        assert!(e.contains(&Point::new(5.0, 5.0)));
        assert!(!e.contains(&Point::new(10.000001, 5.0)));
    }

    #[test]
    fn intersects_includes_touching() {
        let a = env(0.0, 0.0, 10.0, 10.0);
        assert!(a.intersects(&env(10.0, 10.0, 20.0, 20.0)));
        assert!(a.intersects(&env(5.0, 5.0, 6.0, 6.0)));
        assert!(!a.intersects(&env(10.1, 0.0, 20.0, 10.0)));
        assert!(a.intersects(&a));
    }

    #[test]
    fn containment_and_buffer() {
        let a = env(0.0, 0.0, 10.0, 10.0);
        assert!(a.contains_envelope(&env(1.0, 1.0, 9.0, 9.0)));
        assert!(a.contains_envelope(&a));
        assert!(!a.contains_envelope(&env(1.0, 1.0, 11.0, 9.0)));
        assert_eq!(a.buffered(2.0), env(-2.0, -2.0, 12.0, 12.0));
    }

    #[test]
    fn metrics() {
        let e = env(0.0, 0.0, 3.0, 4.0);
        assert_eq!(e.width(), 3.0);
        assert_eq!(e.height(), 4.0);
        assert_eq!(e.area(), 12.0);
        assert_eq!(e.center(), Point::new(1.5, 2.0));
        assert_eq!(e.half_diagonal(), 2.5);
    }

    #[test]
    fn distance_point() {
        let e = env(0.0, 0.0, 10.0, 10.0);
        assert_eq!(e.distance_point(&Point::new(5.0, 5.0)), 0.0);
        assert_eq!(e.distance_point(&Point::new(13.0, 14.0)), 5.0);
        assert_eq!(e.distance_point(&Point::new(-3.0, 5.0)), 3.0);
        assert_eq!(e.distance_point(&Point::new(5.0, -4.0)), 4.0);
    }

    #[test]
    fn expand() {
        let mut e = env(0.0, 0.0, 1.0, 1.0);
        e.expand(&env(-5.0, 2.0, 0.5, 3.0));
        assert_eq!(e, env(-5.0, 0.0, 1.0, 3.0));
        e.expand_point(&Point::new(10.0, -10.0));
        assert_eq!(e, env(-5.0, -10.0, 10.0, 3.0));
    }

    #[test]
    fn corners_ccw() {
        let c = env(0.0, 0.0, 2.0, 1.0).corners();
        assert_eq!(c[0], Point::new(0.0, 0.0));
        assert_eq!(c[2], Point::new(2.0, 1.0));
    }
}
