//! Spatial predicates over [`Geometry`] values.
//!
//! The predicate set of the demo's SQL layer: `ST_Contains` (geometry
//! contains point), `ST_Intersects`, `ST_Distance` and `ST_DWithin`
//! (point within distance of geometry). Boundary points count as contained,
//! mirroring the coverage semantics the refinement grid assumes.

use crate::envelope::Envelope;
use crate::geometry::Geometry;
use crate::polygon::Polygon;
use crate::Point;

/// Whether the geometry contains the point (boundary inclusive).
///
/// Points and polylines contain only points lying exactly on them.
pub fn contains_point(g: &Geometry, p: &Point) -> bool {
    match g {
        Geometry::Point(q) => q == p,
        Geometry::MultiPoint(mp) => mp.points().contains(p),
        Geometry::LineString(ls) => ls.distance_point(p) == 0.0,
        Geometry::Polygon(pg) => pg.contains_point(p),
        Geometry::MultiPolygon(mp) => mp.polygons().iter().any(|pg| pg.contains_point(p)),
    }
}

/// Distance from the geometry to a point (0 when contained).
pub fn distance_point(g: &Geometry, p: &Point) -> f64 {
    match g {
        Geometry::Point(q) => q.distance(p),
        Geometry::MultiPoint(mp) => mp
            .points()
            .iter()
            .map(|q| q.distance(p))
            .fold(f64::INFINITY, f64::min),
        Geometry::LineString(ls) => ls.distance_point(p),
        Geometry::Polygon(pg) => pg.distance_point(p),
        Geometry::MultiPolygon(mp) => mp
            .polygons()
            .iter()
            .map(|pg| pg.distance_point(p))
            .fold(f64::INFINITY, f64::min),
    }
}

/// `ST_DWithin(g, p, d)`: whether the point lies within distance `d` of the
/// geometry.
pub fn dwithin_point(g: &Geometry, p: &Point, d: f64) -> bool {
    distance_point(g, p) <= d
}

/// A representative point guaranteed to lie on/in the geometry.
fn representative(g: &Geometry) -> Option<Point> {
    match g {
        Geometry::Point(p) => Some(*p),
        Geometry::MultiPoint(mp) => mp.points().first().copied(),
        Geometry::LineString(ls) => ls.vertices().first().copied(),
        Geometry::Polygon(pg) => pg.exterior().vertices().first().copied(),
        Geometry::MultiPolygon(mp) => mp
            .polygons()
            .first()
            .and_then(|pg| pg.exterior().vertices().first().copied()),
    }
}

/// Whether two geometries share at least one point.
///
/// Implemented as: envelope reject, then boundary-segment crossing, then
/// mutual containment of representative points (covers one geometry fully
/// inside the other).
pub fn intersects(a: &Geometry, b: &Geometry) -> bool {
    let (Some(ea), Some(eb)) = (a.envelope(), b.envelope()) else {
        return false; // an empty geometry intersects nothing
    };
    if !ea.intersects(&eb) {
        return false;
    }
    // Point-ish fast paths.
    if let Geometry::Point(p) = a {
        return contains_point(b, p);
    }
    if let Geometry::Point(p) = b {
        return contains_point(a, p);
    }
    if let Geometry::MultiPoint(mp) = a {
        return mp.points().iter().any(|p| contains_point(b, p));
    }
    if let Geometry::MultiPoint(mp) = b {
        return mp.points().iter().any(|p| contains_point(a, p));
    }
    // Boundary crossing.
    let b_segs: Vec<_> = b.boundary_segments().collect();
    for sa in a.boundary_segments() {
        for sb in &b_segs {
            if sa.intersects(sb) {
                return true;
            }
        }
    }
    // Containment without boundary contact.
    if let Some(p) = representative(a) {
        if contains_point(b, &p) {
            return true;
        }
    }
    if let Some(p) = representative(b) {
        if contains_point(a, &p) {
            return true;
        }
    }
    false
}

/// Whether the geometry intersects an axis-aligned envelope — the predicate
/// behind "select all roads that intersect a given region" (§4.1).
pub fn intersects_envelope(g: &Geometry, env: &Envelope) -> bool {
    intersects(g, &Geometry::Polygon(Polygon::rectangle(env)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{LineString, MultiPoint, MultiPolygon};

    fn square(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::rectangle(&Envelope::new(x0, y0, x1, y1).unwrap())
    }

    fn ls(pts: &[(f64, f64)]) -> LineString {
        LineString::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn contains_point_by_type() {
        let p = Point::new(2.0, 2.0);
        assert!(contains_point(&Geometry::Point(p), &p));
        assert!(!contains_point(&Geometry::Point(p), &Point::new(2.1, 2.0)));
        let l = ls(&[(0.0, 0.0), (4.0, 4.0)]);
        assert!(contains_point(&l.clone().into(), &p));
        assert!(!contains_point(&l.into(), &Point::new(2.0, 2.5)));
        let sq = square(0.0, 0.0, 4.0, 4.0);
        assert!(contains_point(&sq.into(), &p));
    }

    #[test]
    fn distance_by_type() {
        let g: Geometry = square(0.0, 0.0, 10.0, 10.0).into();
        assert_eq!(distance_point(&g, &Point::new(5.0, 5.0)), 0.0);
        assert_eq!(distance_point(&g, &Point::new(13.0, 14.0)), 5.0);
        let g: Geometry = ls(&[(0.0, 0.0), (10.0, 0.0)]).into();
        assert_eq!(distance_point(&g, &Point::new(5.0, 2.0)), 2.0);
        let g = Geometry::MultiPoint(
            MultiPoint::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]).unwrap(),
        );
        assert_eq!(distance_point(&g, &Point::new(9.0, 0.0)), 1.0);
    }

    #[test]
    fn dwithin() {
        let road: Geometry = ls(&[(0.0, 0.0), (100.0, 0.0)]).into();
        assert!(dwithin_point(&road, &Point::new(50.0, 3.0), 3.0));
        assert!(!dwithin_point(&road, &Point::new(50.0, 3.1), 3.0));
    }

    #[test]
    fn polygon_polygon_intersections() {
        let a: Geometry = square(0.0, 0.0, 10.0, 10.0).into();
        let overlapping: Geometry = square(5.0, 5.0, 15.0, 15.0).into();
        let inside: Geometry = square(2.0, 2.0, 3.0, 3.0).into();
        let outside: Geometry = square(20.0, 20.0, 30.0, 30.0).into();
        let touching: Geometry = square(10.0, 0.0, 20.0, 10.0).into();
        assert!(intersects(&a, &overlapping));
        assert!(intersects(&a, &inside), "containment counts");
        assert!(intersects(&inside, &a), "containment is symmetric");
        assert!(!intersects(&a, &outside));
        assert!(intersects(&a, &touching), "shared edge counts");
    }

    #[test]
    fn line_polygon_intersections() {
        let region: Geometry = square(0.0, 0.0, 10.0, 10.0).into();
        let crossing: Geometry = ls(&[(-5.0, 5.0), (15.0, 5.0)]).into();
        let inside: Geometry = ls(&[(2.0, 2.0), (3.0, 3.0)]).into();
        let outside: Geometry = ls(&[(20.0, 20.0), (30.0, 30.0)]).into();
        assert!(intersects(&region, &crossing));
        assert!(intersects(&region, &inside), "line fully inside polygon");
        assert!(intersects(&inside, &region));
        assert!(!intersects(&region, &outside));
    }

    #[test]
    fn point_geometry_intersections() {
        let region: Geometry = square(0.0, 0.0, 10.0, 10.0).into();
        assert!(intersects(&region, &Point::new(5.0, 5.0).into()));
        assert!(!intersects(&region, &Point::new(15.0, 5.0).into()));
        let mp = Geometry::MultiPoint(
            MultiPoint::new(vec![Point::new(50.0, 50.0), Point::new(1.0, 1.0)]).unwrap(),
        );
        assert!(intersects(&region, &mp));
    }

    #[test]
    fn empty_multipolygon_intersects_nothing() {
        let empty = Geometry::MultiPolygon(MultiPolygon::new(vec![]));
        let region: Geometry = square(0.0, 0.0, 10.0, 10.0).into();
        assert!(!intersects(&empty, &region));
        assert!(!intersects(&region, &empty));
    }

    #[test]
    fn intersects_envelope_roads_query() {
        let env = Envelope::new(0.0, 0.0, 10.0, 10.0).unwrap();
        assert!(intersects_envelope(&ls(&[(-5.0, 5.0), (15.0, 5.0)]).into(), &env));
        assert!(!intersects_envelope(
            &ls(&[(-5.0, 20.0), (15.0, 20.0)]).into(),
            &env
        ));
    }

    #[test]
    fn hole_containment() {
        // A point inside a donut hole does not intersect the donut.
        use crate::polygon::Ring;
        let donut: Geometry = Polygon::new(
            Ring::new(vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.0, 10.0),
                Point::new(0.0, 10.0),
            ])
            .unwrap(),
            vec![Ring::new(vec![
                Point::new(3.0, 3.0),
                Point::new(7.0, 3.0),
                Point::new(7.0, 7.0),
                Point::new(3.0, 7.0),
            ])
            .unwrap()],
        )
        .into();
        assert!(!intersects(&donut, &Point::new(5.0, 5.0).into()));
        assert!(intersects(&donut, &Point::new(1.0, 1.0).into()));
        // A small square inside the hole does not intersect the donut...
        assert!(!intersects(&donut, &square(4.0, 4.0, 6.0, 6.0).into()));
        // ...but one spanning the hole boundary does.
        assert!(intersects(&donut, &square(4.0, 4.0, 8.0, 6.0).into()));
    }
}
