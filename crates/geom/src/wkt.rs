//! Well-Known Text (WKT) reading and writing.
//!
//! The textual geometry interchange format of the OGC Simple Features
//! standard — what `ST_GeomFromText` accepts in the demo's SQL queries.
//! Supported: `POINT`, `MULTIPOINT`, `LINESTRING`, `POLYGON`,
//! `MULTIPOLYGON`, each with the `EMPTY` keyword where meaningful.

use std::fmt::Write as _;

use crate::error::GeomError;
use crate::geometry::{Geometry, LineString, MultiPoint, MultiPolygon};
use crate::polygon::{Polygon, Ring};
use crate::Point;

/// Parse a WKT string into a [`Geometry`].
pub fn parse_wkt(input: &str) -> Result<Geometry, GeomError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    let g = p.parse_geometry()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(g)
}

/// Serialise a [`Geometry`] to WKT.
pub fn to_wkt(g: &Geometry) -> String {
    let mut out = String::new();
    match g {
        Geometry::Point(p) => {
            let _ = write!(out, "POINT ({} {})", fmt_f(p.x), fmt_f(p.y));
        }
        Geometry::MultiPoint(mp) => {
            if mp.points().is_empty() {
                out.push_str("MULTIPOINT EMPTY");
            } else {
                out.push_str("MULTIPOINT (");
                for (i, p) in mp.points().iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "({} {})", fmt_f(p.x), fmt_f(p.y));
                }
                out.push(')');
            }
        }
        Geometry::LineString(ls) => {
            out.push_str("LINESTRING ");
            write_coord_list(&mut out, ls.vertices());
        }
        Geometry::Polygon(pg) => {
            out.push_str("POLYGON ");
            write_polygon_body(&mut out, pg);
        }
        Geometry::MultiPolygon(mp) => {
            if mp.polygons().is_empty() {
                out.push_str("MULTIPOLYGON EMPTY");
            } else {
                out.push_str("MULTIPOLYGON (");
                for (i, pg) in mp.polygons().iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_polygon_body(&mut out, pg);
                }
                out.push(')');
            }
        }
    }
    out
}

fn fmt_f(v: f64) -> String {
    // Shortest round-trippable representation Rust offers.
    format!("{v}")
}

fn write_coord_list(out: &mut String, pts: &[Point]) {
    out.push('(');
    for (i, p) in pts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", fmt_f(p.x), fmt_f(p.y));
    }
    out.push(')');
}

fn write_polygon_body(out: &mut String, pg: &Polygon) {
    out.push('(');
    let close = |out: &mut String, ring: &Ring| {
        let mut pts = ring.vertices().to_vec();
        pts.push(pts[0]); // WKT rings repeat the first vertex
        write_coord_list(out, &pts);
    };
    close(out, pg.exterior());
    for h in pg.holes() {
        out.push_str(", ");
        close(out, h);
    }
    out.push(')');
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> GeomError {
        GeomError::WktParse {
            reason: reason.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, ch: u8) -> Result<(), GeomError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", ch as char)))
        }
    }

    fn peek_is(&mut self, ch: u8) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&ch)
    }

    fn keyword(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphabetic())
        {
            self.pos += 1;
        }
        self.input[start..self.pos].to_ascii_uppercase()
    }

    fn try_empty(&mut self) -> bool {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        if rest.len() >= 5 && rest[..5].eq_ignore_ascii_case("EMPTY") {
            self.pos += 5;
            true
        } else {
            false
        }
    }

    fn number(&mut self) -> Result<f64, GeomError> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| {
            b.is_ascii_digit() || matches!(b, b'+' | b'-' | b'.' | b'e' | b'E')
        }) {
            self.pos += 1;
        }
        self.input[start..self.pos]
            .parse::<f64>()
            .map_err(|_| self.err("expected number"))
    }

    fn coord(&mut self) -> Result<Point, GeomError> {
        let x = self.number()?;
        let y = self.number()?;
        let p = Point::new(x, y);
        if !p.is_finite() {
            return Err(GeomError::NonFiniteCoordinate);
        }
        Ok(p)
    }

    /// `( x y, x y, ... )`
    fn coord_list(&mut self) -> Result<Vec<Point>, GeomError> {
        self.eat(b'(')?;
        let mut pts = vec![self.coord()?];
        while self.peek_is(b',') {
            self.pos += 1;
            pts.push(self.coord()?);
        }
        self.eat(b')')?;
        Ok(pts)
    }

    /// `( (ring), (ring), ... )`
    fn polygon_body(&mut self) -> Result<Polygon, GeomError> {
        self.eat(b'(')?;
        let exterior = Ring::new(self.coord_list()?)?;
        let mut holes = Vec::new();
        while self.peek_is(b',') {
            self.pos += 1;
            holes.push(Ring::new(self.coord_list()?)?);
        }
        self.eat(b')')?;
        Ok(Polygon::new(exterior, holes))
    }

    fn parse_geometry(&mut self) -> Result<Geometry, GeomError> {
        match self.keyword().as_str() {
            "POINT" => {
                if self.try_empty() {
                    return Err(self.err("POINT EMPTY is not representable"));
                }
                self.eat(b'(')?;
                let p = self.coord()?;
                self.eat(b')')?;
                Ok(Geometry::Point(p))
            }
            "MULTIPOINT" => {
                if self.try_empty() {
                    return Ok(Geometry::MultiPoint(MultiPoint::new(vec![])?));
                }
                self.eat(b'(')?;
                let mut pts = vec![self.multipoint_member()?];
                while self.peek_is(b',') {
                    self.pos += 1;
                    pts.push(self.multipoint_member()?);
                }
                self.eat(b')')?;
                Ok(Geometry::MultiPoint(MultiPoint::new(pts)?))
            }
            "LINESTRING" => {
                if self.try_empty() {
                    return Err(self.err("LINESTRING EMPTY is not representable"));
                }
                Ok(Geometry::LineString(LineString::new(self.coord_list()?)?))
            }
            "POLYGON" => {
                if self.try_empty() {
                    return Err(self.err("POLYGON EMPTY is not representable"));
                }
                Ok(Geometry::Polygon(self.polygon_body()?))
            }
            "MULTIPOLYGON" => {
                if self.try_empty() {
                    return Ok(Geometry::MultiPolygon(MultiPolygon::new(vec![])));
                }
                self.eat(b'(')?;
                let mut polys = vec![self.polygon_body()?];
                while self.peek_is(b',') {
                    self.pos += 1;
                    polys.push(self.polygon_body()?);
                }
                self.eat(b')')?;
                Ok(Geometry::MultiPolygon(MultiPolygon::new(polys)))
            }
            other => Err(self.err(&format!("unknown geometry type '{other}'"))),
        }
    }

    /// MULTIPOINT members may be parenthesised `(x y)` or bare `x y`.
    fn multipoint_member(&mut self) -> Result<Point, GeomError> {
        if self.peek_is(b'(') {
            self.pos += 1;
            let p = self.coord()?;
            self.eat(b')')?;
            Ok(p)
        } else {
            self.coord()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(wkt: &str) {
        let g = parse_wkt(wkt).unwrap();
        let out = to_wkt(&g);
        let g2 = parse_wkt(&out).unwrap();
        assert_eq!(g, g2, "roundtrip of {wkt} via {out}");
    }

    #[test]
    fn parse_point() {
        let g = parse_wkt("POINT (30 10)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(30.0, 10.0)));
        let g = parse_wkt("point(-1.5e2 +0.25)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(-150.0, 0.25)));
    }

    #[test]
    fn parse_linestring() {
        let g = parse_wkt("LINESTRING (30 10, 10 30, 40 40)").unwrap();
        match g {
            Geometry::LineString(ls) => assert_eq!(ls.vertices().len(), 3),
            other => panic!("wrong type {other:?}"),
        }
    }

    #[test]
    fn parse_polygon_with_hole() {
        let g = parse_wkt(
            "POLYGON ((35 10, 45 45, 15 40, 10 20, 35 10), (20 30, 35 35, 30 20, 20 30))",
        )
        .unwrap();
        match &g {
            Geometry::Polygon(p) => {
                assert_eq!(p.exterior().vertices().len(), 4);
                assert_eq!(p.holes().len(), 1);
                assert_eq!(p.holes()[0].vertices().len(), 3);
            }
            other => panic!("wrong type {other:?}"),
        }
    }

    #[test]
    fn parse_multipolygon() {
        let g = parse_wkt(
            "MULTIPOLYGON (((30 20, 45 40, 10 40, 30 20)), ((15 5, 40 10, 10 20, 5 10, 15 5)))",
        )
        .unwrap();
        match &g {
            Geometry::MultiPolygon(mp) => assert_eq!(mp.polygons().len(), 2),
            other => panic!("wrong type {other:?}"),
        }
    }

    #[test]
    fn parse_multipoint_both_syntaxes() {
        let a = parse_wkt("MULTIPOINT ((10 40), (40 30))").unwrap();
        let b = parse_wkt("MULTIPOINT (10 40, 40 30)").unwrap();
        assert_eq!(a, b);
        assert_eq!(
            parse_wkt("MULTIPOINT EMPTY").unwrap(),
            Geometry::MultiPoint(MultiPoint::new(vec![]).unwrap())
        );
    }

    #[test]
    fn roundtrips() {
        roundtrip("POINT (1.5 -2.25)");
        roundtrip("LINESTRING (0 0, 1 1, 2 0)");
        roundtrip("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        roundtrip("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))");
        roundtrip("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))");
        roundtrip("MULTIPOINT ((1 2), (3 4))");
        roundtrip("MULTIPOLYGON EMPTY");
    }

    #[test]
    fn errors_carry_offsets() {
        for bad in [
            "POINT 30 10",
            "POINT (30)",
            "TRIANGLE (0 0, 1 1, 2 2)",
            "POLYGON ((0 0, 1 1))",
            "LINESTRING (0 0)",
            "POINT (1 2) garbage",
            "POINT (nan nan)",
            "",
        ] {
            let e = parse_wkt(bad).unwrap_err();
            match e {
                GeomError::WktParse { .. }
                | GeomError::DegenerateRing(_)
                | GeomError::DegenerateLine(_)
                | GeomError::NonFiniteCoordinate => {}
                other => panic!("unexpected error {other:?} for {bad:?}"),
            }
        }
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(parse_wkt("pOlYgOn ((0 0, 1 0, 1 1, 0 0))").is_ok());
        assert!(parse_wkt("multipolygon empty").is_ok());
    }
}
