//! Property-based tests of the geometry invariants.

use lidardb_geom::{
    classify_rect_dwithin, classify_rect_polygon, wkt, Envelope, Geometry, LineString, Point,
    Polygon, RectClass, Segment,
};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

/// A random convex polygon: points on a circle with jittered radius,
/// sorted by angle.
fn convex_polygon() -> impl Strategy<Value = Polygon> {
    (
        3usize..10,
        10.0f64..60.0,
        -30.0f64..30.0,
        -30.0f64..30.0,
        any::<u64>(),
    )
        .prop_map(|(n, r, cx, cy, seed)| {
            let mut pts = Vec::with_capacity(n);
            for i in 0..n {
                let angle = i as f64 / n as f64 * std::f64::consts::TAU;
                let jitter = 0.6 + 0.4 * ((seed.wrapping_mul(i as u64 + 1) >> 32) as f64
                    / u32::MAX as f64);
                pts.push(Point::new(
                    cx + r * jitter * angle.cos(),
                    cy + r * jitter * angle.sin(),
                ));
            }
            Polygon::from_exterior(pts).expect("convex ring")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn convex_containment_matches_halfplane_oracle(poly in convex_polygon(), p in pt()) {
        // For a convex CCW polygon, inside == left-of-or-on every edge.
        let inside_oracle = poly
            .exterior()
            .edges()
            .all(|e| lidardb_geom::segment::orient(&e.a, &e.b, &p) >= 0.0);
        // Skip near-boundary points where float noise decides differently.
        let boundary_dist = poly
            .exterior()
            .edges()
            .map(|e| e.distance_point(&p))
            .fold(f64::INFINITY, f64::min);
        prop_assume!(boundary_dist > 1e-9);
        prop_assert_eq!(poly.contains_point(&p), inside_oracle);
    }

    #[test]
    fn distance_zero_iff_contained(poly in convex_polygon(), p in pt()) {
        let d = poly.distance_point(&p);
        if poly.contains_point(&p) {
            prop_assert_eq!(d, 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn segment_intersection_is_symmetric(a in pt(), b in pt(), c in pt(), d in pt()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
        // Intersecting segments are at distance zero and vice versa.
        let dist = s1.distance_segment(&s2);
        prop_assert_eq!(s1.intersects(&s2), dist == 0.0);
        prop_assert_eq!(dist, s2.distance_segment(&s1));
    }

    #[test]
    fn envelope_relations_consistent(a in pt(), b in pt(), c in pt(), d in pt(), p in pt()) {
        let e1 = Envelope::of_points(&[a, b]).unwrap();
        let e2 = Envelope::of_points(&[c, d]).unwrap();
        prop_assert_eq!(e1.intersects(&e2), e2.intersects(&e1));
        if e1.contains_envelope(&e2) {
            prop_assert!(e1.intersects(&e2));
        }
        if e1.contains(&p) {
            prop_assert_eq!(e1.distance_point(&p), 0.0);
        } else {
            prop_assert!(e1.distance_point(&p) > 0.0);
        }
    }

    #[test]
    fn wkt_roundtrip_polygon(poly in convex_polygon()) {
        let g = Geometry::Polygon(poly);
        let text = wkt::to_wkt(&g);
        let back = wkt::parse_wkt(&text).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn wkt_roundtrip_linestring(pts in prop::collection::vec(pt(), 2..12)) {
        let g = Geometry::LineString(LineString::new(pts).unwrap());
        let back = wkt::parse_wkt(&wkt::to_wkt(&g)).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn rect_classification_is_sound(
        poly in convex_polygon(),
        x0 in -80.0f64..80.0,
        y0 in -80.0f64..80.0,
        w in 0.5f64..40.0,
        h in 0.5f64..40.0,
    ) {
        let cell = Envelope::new(x0, y0, x0 + w, y0 + h).unwrap();
        let label = classify_rect_polygon(&cell, &poly);
        // Sample a 4x4 lattice of interior points of the cell.
        for i in 0..4 {
            for j in 0..4 {
                let p = Point::new(
                    cell.min_x + cell.width() * (i as f64 + 0.5) / 4.0,
                    cell.min_y + cell.height() * (j as f64 + 0.5) / 4.0,
                );
                let inside = poly.contains_point(&p);
                match label {
                    RectClass::Inside => prop_assert!(inside, "outside point in INSIDE cell"),
                    RectClass::Outside => prop_assert!(!inside, "inside point in OUTSIDE cell"),
                    RectClass::Boundary => {}
                }
            }
        }
    }

    #[test]
    fn dwithin_classification_is_sound(
        line in prop::collection::vec(pt(), 2..6),
        x0 in -80.0f64..80.0,
        y0 in -80.0f64..80.0,
        side in 0.5f64..30.0,
        dist in 0.5f64..50.0,
    ) {
        let g = Geometry::LineString(LineString::new(line).unwrap());
        let cell = Envelope::new(x0, y0, x0 + side, y0 + side).unwrap();
        let label = classify_rect_dwithin(&cell, &g, dist);
        for i in 0..3 {
            for j in 0..3 {
                let p = Point::new(
                    cell.min_x + cell.width() * (i as f64 + 0.5) / 3.0,
                    cell.min_y + cell.height() * (j as f64 + 0.5) / 3.0,
                );
                let within = lidardb_geom::dwithin_point(&g, &p, dist);
                match label {
                    RectClass::Inside => prop_assert!(within),
                    RectClass::Outside => prop_assert!(!within),
                    RectClass::Boundary => {}
                }
            }
        }
    }

    #[test]
    fn intersects_is_symmetric_for_polygons(a in convex_polygon(), b in convex_polygon()) {
        let (ga, gb) = (Geometry::Polygon(a), Geometry::Polygon(b));
        prop_assert_eq!(
            lidardb_geom::intersects(&ga, &gb),
            lidardb_geom::intersects(&gb, &ga)
        );
    }
}
