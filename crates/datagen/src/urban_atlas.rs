//! Urban-Atlas-like land-use / land-cover zones.
//!
//! The EEA Urban Atlas partitions an urban area into polygons labelled with
//! a numeric nomenclature. The codes reproduced here are the real ones the
//! demo's scenario 2 queries by — in particular **12220 "Other roads and
//! associated land"**'s sibling **12210 "Fast transit roads and associated
//! land"**, the class the query *"select all LIDAR points that are near a
//! given area that is characterised as a fast transit road"* touches.

use lidardb_geom::{Envelope, LineString, Polygon};

use crate::osm::{self, RoadClass};

/// Urban Atlas nomenclature classes used by the scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LandUseClass {
    /// 11100 Continuous urban fabric.
    ContinuousUrban,
    /// 12210 Fast transit roads and associated land.
    FastTransitRoad,
    /// 14100 Green urban areas.
    GreenUrban,
    /// 23000 Pastures.
    Pastures,
    /// 31000 Forests.
    Forest,
    /// 50000 Water bodies.
    Water,
}

impl LandUseClass {
    /// The numeric Urban Atlas nomenclature code.
    pub fn code(self) -> u32 {
        match self {
            LandUseClass::ContinuousUrban => 11100,
            LandUseClass::FastTransitRoad => 12210,
            LandUseClass::GreenUrban => 14100,
            LandUseClass::Pastures => 23000,
            LandUseClass::Forest => 31000,
            LandUseClass::Water => 50000,
        }
    }

    /// Official-style label.
    pub fn label(self) -> &'static str {
        match self {
            LandUseClass::ContinuousUrban => "Continuous urban fabric",
            LandUseClass::FastTransitRoad => "Fast transit roads and associated land",
            LandUseClass::GreenUrban => "Green urban areas",
            LandUseClass::Pastures => "Pastures",
            LandUseClass::Forest => "Forests",
            LandUseClass::Water => "Water bodies",
        }
    }
}

/// One land-use polygon feature.
#[derive(Debug, Clone, PartialEq)]
pub struct LandUseZone {
    /// Stable feature id.
    pub id: u64,
    /// Nomenclature class.
    pub class: LandUseClass,
    /// Zone polygon.
    pub polygon: Polygon,
}

/// Buffer a polyline into a corridor polygon of the given half-width
/// (thin wrapper over [`lidardb_geom::buffer_polyline`]).
pub fn corridor(line: &LineString, half_width: f64) -> Polygon {
    lidardb_geom::buffer_polyline(line, half_width).expect("positive half-width corridor")
}

/// Build the land-use zones of a region, consistent with the OSM features.
pub fn build_zones(env: &Envelope) -> Vec<LandUseZone> {
    let mut zones = Vec::new();
    let mut id = 0u64;
    let mut push = |zones: &mut Vec<LandUseZone>, class: LandUseClass, polygon: Polygon| {
        id += 1;
        zones.push(LandUseZone { id, class, polygon });
    };

    // Urban core = the urban quarter.
    let urban = osm::urban_quarter(env);
    push(
        &mut zones,
        LandUseClass::ContinuousUrban,
        Polygon::rectangle(&urban),
    );

    // A green park wedged against the urban quarter.
    let park = Envelope::new(
        env.min_x + env.width() * 0.40,
        env.min_y + env.height() * 0.55,
        env.min_x + env.width() * 0.55,
        env.min_y + env.height() * 0.75,
    )
    .expect("valid fractions");
    push(&mut zones, LandUseClass::GreenUrban, Polygon::rectangle(&park));

    // Forest in the north-west corner.
    let forest = Envelope::new(
        env.min_x + env.width() * 0.02,
        env.min_y + env.height() * 0.70,
        env.min_x + env.width() * 0.20,
        env.min_y + env.height() * 0.97,
    )
    .expect("valid fractions");
    push(&mut zones, LandUseClass::Forest, Polygon::rectangle(&forest));

    // Pastures across the south.
    let pasture = Envelope::new(
        env.min_x + env.width() * 0.05,
        env.min_y + env.height() * 0.05,
        env.max_x - env.width() * 0.05,
        env.min_y + env.height() * 0.35,
    )
    .expect("valid fractions");
    push(
        &mut zones,
        LandUseClass::Pastures,
        Polygon::rectangle(&pasture),
    );

    // Fast transit corridor along every motorway.
    for road in osm::build_roads(env) {
        if road.class == RoadClass::Motorway {
            push(
                &mut zones,
                LandUseClass::FastTransitRoad,
                corridor(&road.geometry, road.class.half_width() + 11.0),
            );
        }
    }

    // Water body along the river.
    let river = osm::river_course(env);
    push(
        &mut zones,
        LandUseClass::Water,
        corridor(&river.to_linestring(env, 64), river.half_width),
    );

    zones
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidardb_geom::{contains_point, Point};

    fn env() -> Envelope {
        Envelope::new(0.0, 0.0, 4000.0, 4000.0).unwrap()
    }

    #[test]
    fn nomenclature_codes() {
        assert_eq!(LandUseClass::FastTransitRoad.code(), 12210);
        assert_eq!(LandUseClass::Water.code(), 50000);
        assert!(LandUseClass::FastTransitRoad
            .label()
            .to_lowercase()
            .contains("fast transit"));
    }

    #[test]
    fn zones_cover_expected_classes() {
        let zones = build_zones(&env());
        for class in [
            LandUseClass::ContinuousUrban,
            LandUseClass::FastTransitRoad,
            LandUseClass::GreenUrban,
            LandUseClass::Pastures,
            LandUseClass::Forest,
            LandUseClass::Water,
        ] {
            assert!(
                zones.iter().any(|z| z.class == class),
                "missing {class:?}"
            );
        }
        let mut ids: Vec<u64> = zones.iter().map(|z| z.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), zones.len(), "ids unique");
    }

    #[test]
    fn fast_transit_zone_covers_motorway() {
        let e = env();
        let zones = build_zones(&e);
        let ft = zones
            .iter()
            .find(|z| z.class == LandUseClass::FastTransitRoad)
            .unwrap();
        let motorway = osm::build_roads(&e)
            .into_iter()
            .find(|r| r.class == RoadClass::Motorway)
            .unwrap();
        for p in motorway.geometry.vertices() {
            assert!(
                ft.polygon.contains_point(p),
                "motorway vertex {p:?} outside its corridor"
            );
        }
    }

    #[test]
    fn corridor_width_is_respected() {
        let line = LineString::new(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]).unwrap();
        let c = corridor(&line, 5.0);
        let g = lidardb_geom::Geometry::Polygon(c);
        assert!(contains_point(&g, &Point::new(50.0, 4.9)));
        assert!(contains_point(&g, &Point::new(50.0, -4.9)));
        assert!(!contains_point(&g, &Point::new(50.0, 5.1)));
    }

    #[test]
    fn corridor_of_bent_line() {
        let line = LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 100.0),
        ])
        .unwrap();
        let c = corridor(&line, 3.0);
        assert!(c.area() > 1000.0, "area {}", c.area());
        assert!(c.contains_point(&Point::new(50.0, 0.0)));
        assert!(c.contains_point(&Point::new(100.0, 50.0)));
    }
}
