//! # lidardb-datagen — synthetic AHN2 / OSM / Urban Atlas generators
//!
//! The demo uses three datasets (§4): the **AHN2** national LIDAR scan
//! (640 billion points in 60,185 LAZ tiles), **OpenStreetMap** vectors
//! (roads, rivers, points of interest) and the EEA **Urban Atlas** land-use
//! polygons. None of them can ship with a laptop-scale reproduction, so
//! this crate generates seeded synthetic stand-ins that preserve the
//! properties the paper's techniques exploit (DESIGN.md §2, substitution 1):
//!
//! * a consistent [`Scene`] — one simulated Dutch-style municipality where
//!   the three datasets agree with each other (buildings stand in urban
//!   land-use zones, LIDAR returns over water are classified 9, the
//!   motorway has a matching Urban Atlas *fast transit road* zone with
//!   nomenclature code 12220, …);
//! * **acquisition order**: points are emitted in serpentine flight-line
//!   order with slowly increasing GPS time, which is exactly the "local
//!   clustering or partial ordering as a side effect of the construction
//!   process" (§2.1.1) that makes column imprints compress;
//! * **spatial tiling**: the scene is cut into per-file tiles like AHN2's
//!   bladnr distribution, so the file-based baseline has realistic
//!   header-bbox selectivity;
//! * full 26-attribute records with realistic distributions
//!   (classification codes, multi-return vegetation, intensity by surface
//!   type, RGB by land cover, oscillating scan angles).
//!
//! Everything is deterministic in the seed.

pub mod osm;
pub mod scene;
pub mod terrain;
pub mod tiles;
pub mod urban_atlas;

pub use osm::{Poi, River, Road, RoadClass};
pub use scene::{Scene, SceneConfig};
pub use terrain::Terrain;
pub use tiles::{Tile, TileSet};
pub use urban_atlas::{LandUseClass, LandUseZone};
