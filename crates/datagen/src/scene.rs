//! The consistent synthetic world shared by all three datasets.
//!
//! A [`Scene`] is one simulated municipality: terrain, a road network, a
//! river, land-use zones and buildings, all derived deterministically from
//! one seed and one extent. The LIDAR generator samples *this* world, so
//! the demo queries behave like they would on the real datasets: returns
//! over the river classify as water (9), returns in the urban quarter hit
//! buildings (6), vegetation produces multiple returns, and the Urban
//! Atlas fast-transit corridor really does contain the motorway's points.

use lidardb_geom::{Envelope, Point};

use crate::osm::{self, Poi, River, Road, RiverCourse};
use crate::terrain::Terrain;
use crate::urban_atlas::{self, LandUseZone};

/// Configuration of a scene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneConfig {
    /// Seed of all randomness.
    pub seed: u64,
    /// South-west corner in world coordinates (AHN2 ships in the Dutch RD
    /// projection; the default origin is RD-plausible).
    pub origin: (f64, f64),
    /// Side length of the square region in metres.
    pub extent_m: f64,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            seed: 2015,
            origin: (120_000.0, 480_000.0),
            extent_m: 4000.0,
        }
    }
}

/// A building with a rectangular footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Building {
    /// Ground footprint.
    pub footprint: Envelope,
    /// Roof height above ground in metres.
    pub height: f64,
}

/// What the laser pulse hit, with everything needed to synthesise the
/// point record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceSample {
    /// Elevation of the return.
    pub z: f64,
    /// ASPRS classification code.
    pub classification: u8,
    /// Return magnitude.
    pub intensity: u16,
    /// RGB colour.
    pub rgb: (u16, u16, u16),
    /// Number of returns of the pulse (vegetation gives several).
    pub number_of_returns: u8,
}

/// The generated world.
#[derive(Debug, Clone)]
pub struct Scene {
    config: SceneConfig,
    envelope: Envelope,
    terrain: Terrain,
    roads: Vec<Road>,
    rivers: Vec<River>,
    river_course: RiverCourse,
    zones: Vec<LandUseZone>,
    buildings: Vec<Building>,
    pois: Vec<Poi>,
    forest: Envelope,
    park: Envelope,
    pasture: Envelope,
    urban: Envelope,
}

impl Scene {
    /// Generate the world for a configuration.
    pub fn generate(config: SceneConfig) -> Self {
        assert!(config.extent_m > 0.0, "extent must be positive");
        let (ox, oy) = config.origin;
        let envelope = Envelope::new(ox, oy, ox + config.extent_m, oy + config.extent_m)
            .expect("positive extent");
        let terrain = Terrain::new(config.seed);
        let roads = osm::build_roads(&envelope);
        let rivers = osm::build_rivers(&envelope);
        let river_course = osm::river_course(&envelope);
        let zones = urban_atlas::build_zones(&envelope);
        let urban = osm::urban_quarter(&envelope);

        // Zone envelopes used by the fast per-point classifier; they mirror
        // the rectangles build_zones creates.
        let frac = |a: f64, b: f64, c: f64, d: f64| {
            Envelope::new(
                envelope.min_x + envelope.width() * a,
                envelope.min_y + envelope.height() * b,
                envelope.min_x + envelope.width() * c,
                envelope.min_y + envelope.height() * d,
            )
            .expect("valid fraction envelope")
        };
        let park = frac(0.40, 0.55, 0.55, 0.75);
        let forest = frac(0.02, 0.70, 0.20, 0.97);
        let pasture = frac(0.05, 0.05, 0.95, 0.35);

        let buildings = Self::build_buildings(config.seed, &urban, &terrain);
        let pois = osm::build_pois(&envelope);

        Scene {
            config,
            envelope,
            terrain,
            roads,
            rivers,
            river_course,
            zones,
            buildings,
            pois,
            forest,
            park,
            pasture,
            urban,
        }
    }

    fn build_buildings(seed: u64, urban: &Envelope, terrain: &Terrain) -> Vec<Building> {
        // Street blocks on the same ~1/8 grid as the residential streets;
        // 2x2 buildings per block with seeded footprints and heights.
        let mut out = Vec::new();
        let step = urban.width() / 8.0;
        let _ = seed;
        for bx in 0..8 {
            for by in 0..8 {
                let x0 = urban.min_x + bx as f64 * step;
                let y0 = urban.min_y + by as f64 * step;
                for (sx, sy) in [(0.15, 0.15), (0.55, 0.15), (0.15, 0.55), (0.55, 0.55)] {
                    let cx = x0 + step * sx;
                    let cy = y0 + step * sy;
                    let e1 = terrain.event(11, cx, cy);
                    if e1 < 0.2 {
                        continue; // empty lot
                    }
                    let w = step * (0.18 + 0.12 * terrain.event(12, cx, cy));
                    let h = step * (0.18 + 0.12 * terrain.event(13, cx, cy));
                    let height = 4.0 + 20.0 * terrain.event(14, cx, cy).powi(2);
                    out.push(Building {
                        footprint: Envelope::new(cx, cy, cx + w, cy + h)
                            .expect("positive building size"),
                        height,
                    });
                }
            }
        }
        out
    }

    /// The configuration the scene was generated from.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// The region covered.
    pub fn envelope(&self) -> &Envelope {
        &self.envelope
    }

    /// The terrain heightfield.
    pub fn terrain(&self) -> &Terrain {
        &self.terrain
    }

    /// OSM-like roads.
    pub fn roads(&self) -> &[Road] {
        &self.roads
    }

    /// OSM-like rivers.
    pub fn rivers(&self) -> &[River] {
        &self.rivers
    }

    /// OSM-like points of interest.
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// Urban-Atlas-like land-use zones.
    pub fn zones(&self) -> &[LandUseZone] {
        &self.zones
    }

    /// Buildings of the urban quarter.
    pub fn buildings(&self) -> &[Building] {
        &self.buildings
    }

    /// Classify what a nadir laser pulse at `(x, y)` returns.
    pub fn sample_surface(&self, x: f64, y: f64) -> SurfaceSample {
        let ground = self.terrain.height(x, y);
        let p = Point::new(x, y);

        // Water wins (the laser mostly reflects off the surface).
        if self.river_course.distance(x, y) <= self.river_course.half_width {
            return SurfaceSample {
                z: ground - 1.5,
                classification: 9,
                intensity: 12 + (self.terrain.event(21, x, y) * 20.0) as u16,
                rgb: (20, 60, 120),
                number_of_returns: 1,
            };
        }

        // Buildings.
        for b in &self.buildings {
            if b.footprint.contains(&p) {
                return SurfaceSample {
                    z: ground + b.height,
                    classification: 6,
                    intensity: 180 + (self.terrain.event(22, x, y) * 60.0) as u16,
                    rgb: (160, 60, 50),
                    number_of_returns: 1,
                };
            }
        }

        // Road surfaces (asphalt: strong, dark returns), class 2 ground.
        for r in &self.roads {
            let hw = r.class.half_width();
            // Cheap bbox rejection before the segment distance.
            let env = r.geometry.envelope().buffered(hw);
            if env.contains(&p) && r.geometry.distance_point(&p) <= hw {
                return SurfaceSample {
                    z: ground + 0.05,
                    classification: 2,
                    intensity: 220,
                    rgb: (70, 70, 75),
                    number_of_returns: 1,
                };
            }
        }

        // Vegetation probability by land use.
        let veg_p = if self.forest.contains(&p) {
            0.65
        } else if self.park.contains(&p) {
            0.30
        } else if self.pasture.contains(&p) {
            0.02
        } else if self.urban.contains(&p) {
            0.08 // street trees
        } else {
            0.10
        };
        if self.terrain.event(23, x, y) < veg_p {
            let tree_h = 4.0 + 18.0 * self.terrain.event(24, x, y);
            return SurfaceSample {
                z: ground + tree_h,
                classification: 5,
                intensity: 60 + (self.terrain.event(25, x, y) * 80.0) as u16,
                rgb: (40, 120, 40),
                number_of_returns: 2 + (self.terrain.event(26, x, y) * 2.0) as u8,
            };
        }

        // Bare ground / grass.
        SurfaceSample {
            z: ground,
            classification: 2,
            intensity: 90 + (self.terrain.event(27, x, y) * 60.0) as u16,
            rgb: (120, 110, 80),
            number_of_returns: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osm::RoadClass;

    fn scene() -> Scene {
        Scene::generate(SceneConfig {
            seed: 7,
            origin: (0.0, 0.0),
            extent_m: 4000.0,
        })
    }

    #[test]
    fn deterministic() {
        let a = scene();
        let b = scene();
        assert_eq!(a.buildings().len(), b.buildings().len());
        assert_eq!(
            a.sample_surface(1234.5, 678.9),
            b.sample_surface(1234.5, 678.9)
        );
    }

    #[test]
    fn water_over_river() {
        let s = scene();
        let course = osm::river_course(s.envelope());
        let y = 1000.0;
        let smp = s.sample_surface(course.x_at(y), y);
        assert_eq!(smp.classification, 9);
        assert!(smp.z < s.terrain().height(course.x_at(y), y));
    }

    #[test]
    fn buildings_rise_above_ground() {
        let s = scene();
        let b = s.buildings()[0];
        let c = b.footprint.center();
        let smp = s.sample_surface(c.x, c.y);
        assert_eq!(smp.classification, 6);
        assert!(smp.z > s.terrain().height(c.x, c.y) + 3.0);
    }

    #[test]
    fn motorway_surface_is_road() {
        let s = scene();
        let motorway = s
            .roads()
            .iter()
            .find(|r| r.class == RoadClass::Motorway)
            .unwrap();
        // Sample the middle vertex, nudged slightly off the centreline.
        let v = motorway.geometry.vertices()[1];
        let smp = s.sample_surface(v.x + 1.0, v.y);
        assert_eq!(smp.classification, 2);
        assert_eq!(smp.intensity, 220, "asphalt signature");
    }

    #[test]
    fn forest_produces_vegetation_and_multi_returns() {
        let s = scene();
        let f = Envelope::new(100.0, 2900.0, 700.0, 3800.0).unwrap(); // inside forest zone
        let mut veg = 0;
        let mut total = 0;
        let mut multi = 0;
        for i in 0..40 {
            for j in 0..40 {
                let x = f.min_x + f.width() * i as f64 / 40.0;
                let y = f.min_y + f.height() * j as f64 / 40.0;
                let smp = s.sample_surface(x, y);
                total += 1;
                if smp.classification == 5 {
                    veg += 1;
                    if smp.number_of_returns > 1 {
                        multi += 1;
                    }
                }
            }
        }
        assert!(
            veg as f64 > total as f64 * 0.4,
            "forest should be mostly trees: {veg}/{total}"
        );
        assert_eq!(multi, veg, "vegetation returns are multi-return");
    }

    #[test]
    fn class_inventory_is_realistic() {
        let s = scene();
        let mut counts = std::collections::HashMap::new();
        for i in 0..120 {
            for j in 0..120 {
                let x = i as f64 * 4000.0 / 120.0;
                let y = j as f64 * 4000.0 / 120.0;
                *counts
                    .entry(s.sample_surface(x, y).classification)
                    .or_insert(0usize) += 1;
            }
        }
        // Ground dominates; water, buildings and vegetation all present.
        assert!(counts[&2] > counts.values().sum::<usize>() / 2);
        for class in [5u8, 6, 9] {
            assert!(counts.get(&class).copied().unwrap_or(0) > 10, "class {class}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        Scene::generate(SceneConfig {
            seed: 1,
            origin: (0.0, 0.0),
            extent_m: 0.0,
        });
    }
}
