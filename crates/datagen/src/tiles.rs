//! Tiling and serpentine LIDAR point generation.
//!
//! AHN2 is distributed as ~60k spatial tiles; the generator mirrors that by
//! cutting the scene into a `k × k` grid of [`Tile`]s, each produced in
//! **serpentine flight-line order**: the scanner sweeps east on one line,
//! west on the next, with GPS time increasing monotonically. That
//! acquisition order is what gives the X/Y columns the partial ordering
//! column imprints compress so well (§2.1.1), and shuffling it is exactly
//! the ablation of experiment E7.

use lidardb_geom::Envelope;
use lidardb_las::PointRecord;

use crate::scene::Scene;

/// One generated tile (one LAS file's worth of points).
#[derive(Debug, Clone)]
pub struct Tile {
    /// Tile name, e.g. `"tile_03_05"` (AHN2's bladnr analogue).
    pub name: String,
    /// Grid position `(col, row)`.
    pub index: (usize, usize),
    /// Covered region.
    pub envelope: Envelope,
    /// Point records in acquisition order.
    pub records: Vec<PointRecord>,
}

/// A full tiling of a scene.
#[derive(Debug, Clone)]
pub struct TileSet {
    tiles: Vec<Tile>,
}

impl TileSet {
    /// Generate `tiles_per_side²` tiles at `density` points per square
    /// metre.
    ///
    /// # Panics
    /// Panics when `tiles_per_side == 0` or `density <= 0`.
    pub fn generate(scene: &Scene, tiles_per_side: usize, density: f64) -> Self {
        assert!(tiles_per_side > 0, "need at least one tile");
        assert!(density > 0.0, "density must be positive");
        let env = *scene.envelope();
        let tw = env.width() / tiles_per_side as f64;
        let th = env.height() / tiles_per_side as f64;
        let mut tiles = Vec::with_capacity(tiles_per_side * tiles_per_side);
        let mut gps_time = 300_000.0f64; // seconds-of-week style epoch
        for row in 0..tiles_per_side {
            for col in 0..tiles_per_side {
                let te = Envelope::new(
                    env.min_x + col as f64 * tw,
                    env.min_y + row as f64 * th,
                    env.min_x + (col + 1) as f64 * tw,
                    env.min_y + (row + 1) as f64 * th,
                )
                .expect("grid cell of a valid envelope");
                let records =
                    generate_tile_points(scene, &te, density, &mut gps_time, (row * tiles_per_side + col) as u16);
                tiles.push(Tile {
                    name: format!("tile_{col:02}_{row:02}"),
                    index: (col, row),
                    envelope: te,
                    records,
                });
            }
        }
        TileSet { tiles }
    }

    /// The tiles, row-major.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Total number of points across all tiles.
    pub fn num_points(&self) -> usize {
        self.tiles.iter().map(|t| t.records.len()).sum()
    }

    /// Consume into the tile vector.
    pub fn into_tiles(self) -> Vec<Tile> {
        self.tiles
    }
}

/// Generate the points of one tile in serpentine scan order.
fn generate_tile_points(
    scene: &Scene,
    te: &Envelope,
    density: f64,
    gps_time: &mut f64,
    source_id: u16,
) -> Vec<PointRecord> {
    let spacing = 1.0 / density.sqrt();
    let cols = (te.width() / spacing).floor().max(1.0) as usize;
    let rows = (te.height() / spacing).floor().max(1.0) as usize;
    let terrain = scene.terrain();
    let mut out = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        let y = te.min_y + (r as f64 + 0.5) * spacing;
        for c in 0..cols {
            // Serpentine: odd rows sweep back.
            let cc = if r % 2 == 0 { c } else { cols - 1 - c };
            let jx = (terrain.event(31, cc as f64, y) - 0.5) * spacing * 0.6;
            let jy = (terrain.event(32, cc as f64, y) - 0.5) * spacing * 0.6;
            let x = te.min_x + (cc as f64 + 0.5) * spacing + jx;
            let y = y + jy;
            let smp = scene.sample_surface(x, y);
            let frac_across = (cc as f64 + 0.5) / cols as f64;
            *gps_time += 0.000_05; // 20 kHz pulse rate
            let sensor_noise = (terrain.event(33, x, y) - 0.5) * 0.06;
            let base = PointRecord {
                x,
                y,
                z: smp.z + sensor_noise,
                intensity: smp.intensity,
                return_number: 1,
                number_of_returns: smp.number_of_returns,
                scan_direction: (r % 2) as u8,
                edge_of_flight_line: u8::from(c == 0 || c + 1 == cols),
                classification: smp.classification,
                synthetic: 0,
                key_point: 0,
                withheld: 0,
                scan_angle_rank: ((frac_across - 0.5) * 60.0) as i8,
                user_data: 0,
                point_source_id: source_id,
                gps_time: *gps_time,
                red: smp.rgb.0,
                green: smp.rgb.1,
                blue: smp.rgb.2,
                wave_packet_index: 0,
                wave_offset: 0,
                wave_size: 0,
                wave_return_loc: 0.0,
                wave_xt: 0.0,
                wave_yt: 0.0,
                wave_zt: -1.0, // nadir-ish
            };
            out.push(base);
            // A multi-return pulse (vegetation) echoes through the canopy:
            // intermediate returns inside the crown, the last return from
            // the ground beneath (classified 2, like real leaf-off LIDAR).
            let n = smp.number_of_returns.max(1);
            if n > 1 {
                let ground = terrain.height(x, y);
                for ret in 2..=n {
                    let frac = f64::from(ret - 1) / f64::from(n - 1);
                    let z = smp.z + (ground - smp.z) * frac + sensor_noise * 0.5;
                    let last = ret == n;
                    out.push(PointRecord {
                        z,
                        return_number: ret,
                        classification: if last { 2 } else { smp.classification },
                        intensity: (f64::from(smp.intensity) * (1.0 - 0.35 * frac)) as u16,
                        ..base
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneConfig;

    fn small_scene() -> Scene {
        Scene::generate(SceneConfig {
            seed: 99,
            origin: (0.0, 0.0),
            extent_m: 400.0,
        })
    }

    #[test]
    fn tile_grid_covers_scene() {
        let s = small_scene();
        let ts = TileSet::generate(&s, 4, 0.5);
        assert_eq!(ts.tiles().len(), 16);
        // Tiles partition the envelope.
        let total_area: f64 = ts.tiles().iter().map(|t| t.envelope.area()).sum();
        assert!((total_area - s.envelope().area()).abs() < 1e-6);
        // Every point inside its tile (with jitter margin).
        for t in ts.tiles() {
            for p in &t.records {
                assert!(
                    t.envelope.buffered(2.0).contains(&lidardb_geom::Point::new(p.x, p.y)),
                    "{} contains its points",
                    t.name
                );
            }
        }
    }

    #[test]
    fn density_is_respected() {
        let s = small_scene();
        let ts = TileSet::generate(&s, 2, 2.0);
        let expected = s.envelope().area() * 2.0;
        let got = ts
            .tiles()
            .iter()
            .flat_map(|t| t.records.iter())
            .filter(|r| r.return_number == 1)
            .count() as f64;
        assert!(
            (got / expected - 1.0).abs() < 0.1,
            "expected ~{expected} points, got {got}"
        );
    }

    #[test]
    fn gps_time_is_monotone_within_and_across_tiles() {
        let s = small_scene();
        let ts = TileSet::generate(&s, 2, 0.5);
        let mut last = 0.0;
        for t in ts.tiles() {
            for p in &t.records {
                if p.return_number == 1 {
                    assert!(p.gps_time > last, "pulse time must increase");
                    last = p.gps_time;
                } else {
                    // Echoes of one pulse share its GPS time.
                    assert_eq!(p.gps_time, last, "same-pulse returns share time");
                }
            }
        }
    }

    #[test]
    fn serpentine_order_clusters_x() {
        // In acquisition order, consecutive points are spatially close:
        // mean |dx| between consecutive points is about one spacing.
        let s = small_scene();
        let ts = TileSet::generate(&s, 1, 1.0);
        let recs = &ts.tiles()[0].records;
        let mean_dx: f64 = recs
            .windows(2)
            .map(|w| (w[1].x - w[0].x).abs())
            .sum::<f64>()
            / (recs.len() - 1) as f64;
        assert!(mean_dx < 3.0, "mean consecutive |dx| {mean_dx} too large");
    }

    #[test]
    fn attributes_are_populated() {
        let s = small_scene();
        let ts = TileSet::generate(&s, 1, 1.0);
        let recs = &ts.tiles()[0].records;
        assert!(recs.iter().any(|r| r.classification == 9), "water present");
        assert!(recs.iter().any(|r| r.number_of_returns > 1), "multi-returns");
        // Multi-return pulses produce a full echo sequence: for some pulse
        // there is a return_number == number_of_returns record, and the
        // last return sits below the first (ground under canopy).
        let mut saw_sequence = false;
        for w in recs.windows(3) {
            if w[0].number_of_returns == 3
                && w[0].return_number == 1
                && w[1].return_number == 2
                && w[2].return_number == 3
            {
                assert!(w[2].z < w[0].z, "last return below canopy");
                assert_eq!(w[2].classification, 2, "last return is ground");
                assert_eq!(w[0].gps_time, w[2].gps_time, "same pulse");
                saw_sequence = true;
                break;
            }
        }
        assert!(saw_sequence, "no 3-return echo sequence found");
        assert!(recs.iter().any(|r| r.scan_angle_rank < 0));
        assert!(recs.iter().any(|r| r.scan_angle_rank > 0));
        assert!(recs.iter().any(|r| r.edge_of_flight_line == 1));
        assert!(recs.iter().all(|r| r.intensity > 0));
    }

    #[test]
    fn deterministic() {
        let s = small_scene();
        let a = TileSet::generate(&s, 2, 1.0);
        let b = TileSet::generate(&s, 2, 1.0);
        assert_eq!(a.tiles()[3].records, b.tiles()[3].records);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn zero_density_rejected() {
        TileSet::generate(&small_scene(), 1, 0.0);
    }
}
