//! OSM-like vector features: roads, rivers, points of interest.
//!
//! The generated network is deliberately simple but structured the way the
//! demo's queries need it: a functional road hierarchy (the motorway is
//! the "fast transit road" of scenario 2), a meandering river, and named
//! POIs — all deterministic in the scene seed.

use lidardb_geom::{Envelope, LineString, Point};

/// Functional class of a road, mirroring OSM `highway=*` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoadClass {
    /// Grade-separated fast transit road (OSM `motorway`).
    Motorway,
    /// Major connecting road (OSM `primary`).
    Primary,
    /// Local street (OSM `residential`).
    Residential,
}

impl RoadClass {
    /// Tag value as it would appear in OSM.
    pub fn tag(self) -> &'static str {
        match self {
            RoadClass::Motorway => "motorway",
            RoadClass::Primary => "primary",
            RoadClass::Residential => "residential",
        }
    }

    /// Pavement half-width in metres (used when rasterising and when the
    /// scene classifies LIDAR returns as road surface).
    pub fn half_width(self) -> f64 {
        match self {
            RoadClass::Motorway => 14.0,
            RoadClass::Primary => 7.0,
            RoadClass::Residential => 3.0,
        }
    }
}

/// One road feature.
#[derive(Debug, Clone, PartialEq)]
pub struct Road {
    /// Stable feature id.
    pub id: u64,
    /// Human-readable name.
    pub name: String,
    /// Functional class.
    pub class: RoadClass,
    /// Centreline geometry.
    pub geometry: LineString,
}

/// One river feature.
#[derive(Debug, Clone, PartialEq)]
pub struct River {
    /// Stable feature id.
    pub id: u64,
    /// Human-readable name.
    pub name: String,
    /// Half-width of the water surface in metres.
    pub half_width: f64,
    /// Centreline geometry.
    pub geometry: LineString,
}

/// A point of interest.
#[derive(Debug, Clone, PartialEq)]
pub struct Poi {
    /// Stable feature id.
    pub id: u64,
    /// Human-readable name.
    pub name: String,
    /// OSM-ish amenity tag.
    pub amenity: String,
    /// Location.
    pub location: Point,
}

/// The analytic centreline of the scene's river: a north-south sine wave.
/// Kept analytic so the point generator can classify water returns with a
/// cheap closed-form distance instead of a polyline scan.
#[derive(Debug, Clone, Copy)]
pub struct RiverCourse {
    /// Mean easting of the course.
    pub center_x: f64,
    /// Meander amplitude in metres.
    pub amplitude: f64,
    /// Meander wavelength in metres.
    pub wavelength: f64,
    /// Half-width of the water surface.
    pub half_width: f64,
}

impl RiverCourse {
    /// Easting of the centreline at a given northing.
    pub fn x_at(&self, y: f64) -> f64 {
        self.center_x + self.amplitude * (y / self.wavelength * std::f64::consts::TAU).sin()
    }

    /// Approximate horizontal distance from a point to the centreline.
    pub fn distance(&self, x: f64, y: f64) -> f64 {
        (x - self.x_at(y)).abs()
    }

    /// Materialise as a polyline with `n` vertices across `env`.
    pub fn to_linestring(&self, env: &Envelope, n: usize) -> LineString {
        let n = n.max(2);
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let y = env.min_y + env.height() * i as f64 / (n - 1) as f64;
                Point::new(self.x_at(y), y)
            })
            .collect();
        LineString::new(pts).expect("n >= 2 vertices")
    }
}

/// Build the road network for a square region.
///
/// Layout: one east-west motorway through the middle, primary roads on a
/// ~500 m grid, residential streets on a ~125 m grid inside the urban
/// quarter (the north-east quadrant around the centre).
pub fn build_roads(env: &Envelope) -> Vec<Road> {
    let mut roads = Vec::new();
    let mut id = 1u64;
    let mut push = |roads: &mut Vec<Road>, name: String, class: RoadClass, pts: Vec<Point>| {
        let geometry = LineString::new(pts).expect("two endpoints");
        roads.push(Road {
            id,
            name,
            class,
            geometry,
        });
        id += 1;
    };

    let cy = env.min_y + env.height() * 0.5;
    // The motorway: slight chevron so it is not axis-degenerate.
    push(
        &mut roads,
        "A99 motorway".to_string(),
        RoadClass::Motorway,
        vec![
            Point::new(env.min_x, cy - env.height() * 0.02),
            Point::new(env.min_x + env.width() * 0.5, cy + env.height() * 0.03),
            Point::new(env.max_x, cy - env.height() * 0.01),
        ],
    );

    // Primary grid at ~500 m within the region.
    let step = (env.width() / 8.0).max(1.0);
    let mut k = 1;
    let mut x = env.min_x + step;
    while x < env.max_x - step * 0.5 {
        push(
            &mut roads,
            format!("N{k:03} north-south"),
            RoadClass::Primary,
            vec![Point::new(x, env.min_y), Point::new(x, env.max_y)],
        );
        k += 1;
        x += step * 2.0;
    }
    let mut y = env.min_y + step;
    while y < env.max_y - step * 0.5 {
        push(
            &mut roads,
            format!("N{k:03} east-west"),
            RoadClass::Primary,
            vec![Point::new(env.min_x, y), Point::new(env.max_x, y)],
        );
        k += 1;
        y += step * 2.0;
    }

    // Residential streets inside the urban quarter.
    let urban = urban_quarter(env);
    let rstep = (urban.width() / 8.0).max(0.5);
    let mut s = 1;
    let mut x = urban.min_x + rstep;
    while x < urban.max_x {
        push(
            &mut roads,
            format!("Dorpsstraat {s}"),
            RoadClass::Residential,
            vec![Point::new(x, urban.min_y), Point::new(x, urban.max_y)],
        );
        s += 1;
        x += rstep;
    }
    let mut y = urban.min_y + rstep;
    while y < urban.max_y {
        push(
            &mut roads,
            format!("Kerkstraat {s}"),
            RoadClass::Residential,
            vec![Point::new(urban.min_x, y), Point::new(urban.max_x, y)],
        );
        s += 1;
        y += rstep;
    }
    roads
}

/// The urban quarter of the scene: the block north-east of the centre.
pub fn urban_quarter(env: &Envelope) -> Envelope {
    Envelope::new(
        env.min_x + env.width() * 0.55,
        env.min_y + env.height() * 0.55,
        env.min_x + env.width() * 0.9,
        env.min_y + env.height() * 0.9,
    )
    .expect("fractions of a valid envelope")
}

/// The analytic river course of the scene.
pub fn river_course(env: &Envelope) -> RiverCourse {
    RiverCourse {
        center_x: env.min_x + env.width() * 0.25,
        amplitude: env.width() * 0.04,
        wavelength: env.height() * 0.8,
        half_width: (env.width() * 0.008).clamp(2.0, 25.0),
    }
}

/// Build the river features (a single main river).
pub fn build_rivers(env: &Envelope) -> Vec<River> {
    let course = river_course(env);
    vec![River {
        id: 1,
        name: "Oude Gracht".to_string(),
        half_width: course.half_width,
        geometry: course.to_linestring(env, 64),
    }]
}

/// Build named POIs: one per primary/residential intersection corner of
/// the urban quarter plus civic amenities near the centre.
pub fn build_pois(env: &Envelope) -> Vec<Poi> {
    let urban = urban_quarter(env);
    let amenities = ["cafe", "school", "library", "station", "market"];
    let mut pois = Vec::new();
    for (i, amenity) in amenities.iter().enumerate() {
        let f = (i as f64 + 1.0) / (amenities.len() as f64 + 1.0);
        pois.push(Poi {
            id: i as u64 + 1,
            name: format!("{} {}", amenity, i + 1),
            amenity: (*amenity).to_string(),
            location: Point::new(
                urban.min_x + urban.width() * f,
                urban.min_y + urban.height() * (1.0 - f),
            ),
        });
    }
    pois
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Envelope {
        Envelope::new(0.0, 0.0, 4000.0, 4000.0).unwrap()
    }

    #[test]
    fn network_has_all_classes() {
        let roads = build_roads(&env());
        assert_eq!(
            roads
                .iter()
                .filter(|r| r.class == RoadClass::Motorway)
                .count(),
            1
        );
        assert!(roads.iter().any(|r| r.class == RoadClass::Primary));
        assert!(roads.iter().any(|r| r.class == RoadClass::Residential));
        // Ids unique.
        let mut ids: Vec<u64> = roads.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), roads.len());
    }

    #[test]
    fn roads_stay_in_region() {
        let e = env();
        for r in build_roads(&e) {
            for p in r.geometry.vertices() {
                assert!(e.buffered(1e-9).contains(p), "{} leaves region", r.name);
            }
        }
    }

    #[test]
    fn river_course_is_consistent() {
        let e = env();
        let c = river_course(&e);
        let ls = c.to_linestring(&e, 100);
        for p in ls.vertices() {
            assert!((p.x - c.x_at(p.y)).abs() < 1e-9);
        }
        assert_eq!(c.distance(c.x_at(123.0) + 5.0, 123.0), 5.0);
        let rivers = build_rivers(&e);
        assert_eq!(rivers.len(), 1);
        assert!(rivers[0].half_width > 0.0);
    }

    #[test]
    fn pois_inside_urban_quarter() {
        let e = env();
        let q = urban_quarter(&e);
        let pois = build_pois(&e);
        assert_eq!(pois.len(), 5);
        for p in &pois {
            assert!(q.contains(&p.location), "{} outside quarter", p.name);
        }
    }

    #[test]
    fn class_metadata() {
        assert_eq!(RoadClass::Motorway.tag(), "motorway");
        assert!(RoadClass::Motorway.half_width() > RoadClass::Residential.half_width());
    }

    #[test]
    fn deterministic() {
        let e = env();
        assert_eq!(build_roads(&e), build_roads(&e));
        assert_eq!(build_rivers(&e), build_rivers(&e));
        assert_eq!(build_pois(&e), build_pois(&e));
    }
}
