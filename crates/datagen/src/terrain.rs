//! Deterministic value-noise terrain.
//!
//! A light two-octave lattice value noise gives the gently rolling ground
//! elevation of a Dutch landscape (AHN2 heights mostly within -5..+30 m
//! NAP). Purely hash-based: no tables, reproducible from the seed alone.

/// A seeded, continuous heightfield.
#[derive(Debug, Clone, Copy)]
pub struct Terrain {
    seed: u64,
    /// Base wavelength of the first octave in metres.
    wavelength: f64,
    /// Peak-to-peak amplitude of the first octave in metres.
    amplitude: f64,
}

/// 64-bit mix hash (splitmix64 finaliser).
#[inline]
fn mix(mut v: u64) -> u64 {
    v = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    v = (v ^ (v >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    v = (v ^ (v >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    v ^ (v >> 31)
}

impl Terrain {
    /// Terrain with the default Dutch-polder parameters.
    pub fn new(seed: u64) -> Self {
        Terrain {
            seed,
            wavelength: 700.0,
            amplitude: 18.0,
        }
    }

    /// Terrain with explicit wavelength/amplitude (metres).
    pub fn with_relief(seed: u64, wavelength: f64, amplitude: f64) -> Self {
        assert!(wavelength > 0.0 && amplitude >= 0.0);
        Terrain {
            seed,
            wavelength,
            amplitude,
        }
    }

    /// Uniform [0, 1) value at a lattice corner.
    #[inline]
    fn corner(&self, octave: u32, ix: i64, iy: i64) -> f64 {
        let h = mix(
            self.seed
                ^ mix(u64::from(octave))
                ^ mix(ix as u64).rotate_left(17)
                ^ mix(iy as u64).rotate_left(43),
        );
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// One octave of bilinear value noise in [0, 1).
    fn octave(&self, o: u32, x: f64, y: f64, wavelength: f64) -> f64 {
        let fx = x / wavelength;
        let fy = y / wavelength;
        let ix = fx.floor() as i64;
        let iy = fy.floor() as i64;
        let tx = fx - fx.floor();
        let ty = fy - fy.floor();
        // Smoothstep for C1 continuity.
        let sx = tx * tx * (3.0 - 2.0 * tx);
        let sy = ty * ty * (3.0 - 2.0 * ty);
        let v00 = self.corner(o, ix, iy);
        let v10 = self.corner(o, ix + 1, iy);
        let v01 = self.corner(o, ix, iy + 1);
        let v11 = self.corner(o, ix + 1, iy + 1);
        let a = v00 + (v10 - v00) * sx;
        let b = v01 + (v11 - v01) * sx;
        a + (b - a) * sy
    }

    /// Ground elevation in metres at a world position.
    pub fn height(&self, x: f64, y: f64) -> f64 {
        let o1 = self.octave(1, x, y, self.wavelength);
        let o2 = self.octave(2, x, y, self.wavelength / 3.7);
        // Two octaves, second at 30% weight, recentred around ~4 m NAP.
        (o1 * 0.7 + o2 * 0.3) * self.amplitude - self.amplitude * 0.25
    }

    /// Deterministic uniform [0,1) "event" value at a position, for
    /// sprinkling vegetation/noise returns (cell-quantised to 0.5 m).
    pub fn event(&self, channel: u32, x: f64, y: f64) -> f64 {
        let ix = (x * 2.0).floor() as i64;
        let iy = (y * 2.0).floor() as i64;
        self.corner(0x8000_0000 | channel, ix, iy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = Terrain::new(42);
        let b = Terrain::new(42);
        let c = Terrain::new(43);
        assert_eq!(a.height(123.4, 567.8), b.height(123.4, 567.8));
        assert_ne!(a.height(123.4, 567.8), c.height(123.4, 567.8));
    }

    #[test]
    fn heights_in_plausible_band() {
        let t = Terrain::new(7);
        for i in 0..2000 {
            let x = (i % 50) as f64 * 37.3;
            let y = (i / 50) as f64 * 53.1;
            let h = t.height(x, y);
            assert!(
                (-20.0..=40.0).contains(&h),
                "height {h} out of band at ({x},{y})"
            );
        }
    }

    #[test]
    fn continuity() {
        // Neighbouring samples differ by centimetres, not metres.
        let t = Terrain::new(11);
        for i in 0..500 {
            let x = i as f64 * 3.1;
            let d = (t.height(x, 100.0) - t.height(x + 0.1, 100.0)).abs();
            assert!(d < 0.5, "jump of {d} m over 10 cm at x={x}");
        }
    }

    #[test]
    fn variation_exists() {
        let t = Terrain::new(3);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..40 {
            for j in 0..40 {
                let h = t.height(i as f64 * 100.0, j as f64 * 100.0);
                lo = lo.min(h);
                hi = hi.max(h);
            }
        }
        assert!(hi - lo > 3.0, "terrain too flat: {lo}..{hi}");
    }

    #[test]
    fn event_channels_independent() {
        let t = Terrain::new(5);
        let e1 = t.event(1, 10.0, 10.0);
        let e2 = t.event(2, 10.0, 10.0);
        assert!((0.0..1.0).contains(&e1));
        assert_ne!(e1, e2);
        // Quantised: same 0.5 m cell gives same event.
        assert_eq!(t.event(1, 10.0, 10.0), t.event(1, 10.2, 10.2));
    }

    #[test]
    #[should_panic]
    fn invalid_relief_rejected() {
        Terrain::with_relief(1, 0.0, 5.0);
    }
}
