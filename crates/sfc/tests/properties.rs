//! Property-based tests of the space-filling-curve invariants.

use lidardb_sfc::{
    hilbert_decode, hilbert_encode, morton_decode, morton_encode, sort_permutation, Curve,
    Quantizer,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn morton_bijective(x in any::<u32>(), y in any::<u32>()) {
        prop_assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
    }

    #[test]
    fn hilbert_bijective(x in any::<u32>(), y in any::<u32>()) {
        prop_assert_eq!(hilbert_decode(hilbert_encode(x, y)), (x, y));
    }

    #[test]
    fn morton_keys_distinct(a in any::<(u32, u32)>(), b in any::<(u32, u32)>()) {
        prop_assume!(a != b);
        prop_assert_ne!(morton_encode(a.0, a.1), morton_encode(b.0, b.1));
        prop_assert_ne!(hilbert_encode(a.0, a.1), hilbert_encode(b.0, b.1));
    }

    #[test]
    fn hilbert_adjacent_keys_are_grid_neighbours(key in 0u64..u64::MAX) {
        // Consecutive Hilbert indexes are always 4-neighbours — the
        // defining property of the curve at any scale.
        let (x1, y1) = hilbert_decode(key);
        let (x2, y2) = hilbert_decode(key.wrapping_add(1));
        if key != u64::MAX {
            let dist = (i64::from(x1) - i64::from(x2)).abs()
                + (i64::from(y1) - i64::from(y2)).abs();
            prop_assert_eq!(dist, 1, "key {} -> ({},{}) vs ({},{})", key, x1, y1, x2, y2);
        }
    }

    #[test]
    fn sort_permutation_is_a_permutation(
        pts in prop::collection::vec((0u32..1000, 0u32..1000), 0..200)
    ) {
        let xs: Vec<u32> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<u32> = pts.iter().map(|p| p.1).collect();
        for curve in [Curve::Morton, Curve::Hilbert] {
            let perm = sort_permutation(curve, &xs, &ys);
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..pts.len()).collect::<Vec<_>>());
            // Keys along the permutation are non-decreasing.
            let keys: Vec<u64> = perm.iter().map(|&i| curve.encode(xs[i], ys[i])).collect();
            prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn quantizer_monotone_and_clamped(
        x1 in -1000.0f64..1000.0,
        x2 in -1000.0f64..1000.0,
        bits in 1u32..33,
    ) {
        let q = Quantizer::new(-500.0, -500.0, 500.0, 500.0, bits);
        let (c1, _) = q.cell(x1, 0.0);
        let (c2, _) = q.cell(x2, 0.0);
        if x1 <= x2 {
            prop_assert!(c1 <= c2, "monotone: {x1}->{c1}, {x2}->{c2}");
        }
        prop_assert!(c1 <= q.max_cell());
    }
}
