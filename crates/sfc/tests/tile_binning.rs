//! Property tests of the quantize → SFC key → tile-binning pipeline the
//! tiled storage layer is built on.
//!
//! The load-bearing invariant: a point bins into exactly one tile, that
//! tile's zone-map bbox (min/max of its member points) always contains the
//! point, and nudging a point by an epsilon that keeps it inside its
//! lattice cell can never flip it into (or get it pruned with) the
//! neighbour tile.

use lidardb_sfc::{Curve, Quantizer, TileBinning};
use proptest::prelude::*;

const WIN: f64 = 1000.0;

fn keys_of(pts: &[(f64, f64)], q: &Quantizer, curve: Curve) -> Vec<u64> {
    pts.iter()
        .map(|&(x, y)| {
            let (cx, cy) = q.cell(x, y);
            curve.encode(cx, cy)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn member_points_stay_inside_their_tiles_zone_bbox(
        pts in prop::collection::vec((-WIN..WIN, -WIN..WIN), 1..250),
        target in 1usize..48,
        bits in 3u32..11,
        hilbert in any::<bool>(),
    ) {
        let curve = if hilbert { Curve::Hilbert } else { Curve::Morton };
        let q = Quantizer::new(-WIN, -WIN, WIN, WIN, bits);
        let mut sorted = keys_of(&pts, &q, curve);
        sorted.sort_unstable();
        let b = TileBinning::from_sorted_keys(&sorted, target);

        // Per-tile zone-map bbox over member points, exactly as the
        // storage layer builds it at seal time.
        let mut bbox: Vec<Option<(f64, f64, f64, f64)>> = vec![None; b.len()];
        for &(x, y) in &pts {
            let (cx, cy) = q.cell(x, y);
            let t = b.tile_of(curve.encode(cx, cy));
            let e = bbox[t].get_or_insert((x, y, x, y));
            e.0 = e.0.min(x);
            e.1 = e.1.min(y);
            e.2 = e.2.max(x);
            e.3 = e.3.max(y);
        }

        for &(x, y) in &pts {
            let (cx, cy) = q.cell(x, y);
            let key = curve.encode(cx, cy);
            let t = b.tile_of(key);
            // Round-trip: the key lies inside its tile's key range.
            prop_assert!(b.start(t) <= key && key <= b.end_inclusive(t));
            // Zone-map consistency: the tile a point binned into can never
            // be pruned by a query box that contains the point.
            let (mnx, mny, mxx, mxy) = bbox[t].unwrap();
            prop_assert!(mnx <= x && x <= mxx && mny <= y && y <= mxy);
        }
    }

    #[test]
    fn epsilon_nudges_within_a_cell_never_change_tiles(
        pts in prop::collection::vec((-WIN..WIN, -WIN..WIN), 1..200),
        target in 1usize..32,
        bits in 3u32..10,
        eps_frac in 0.0f64..1.0,
        hilbert in any::<bool>(),
    ) {
        let curve = if hilbert { Curve::Hilbert } else { Curve::Morton };
        let q = Quantizer::new(-WIN, -WIN, WIN, WIN, bits);
        let mut sorted = keys_of(&pts, &q, curve);
        sorted.sort_unstable();
        let b = TileBinning::from_sorted_keys(&sorted, target);
        // One lattice cell spans this much world distance per axis.
        let cell_w = 2.0 * WIN / (1u64 << bits) as f64;
        for &(x, y) in &pts {
            let (cx, cy) = q.cell(x, y);
            let t = b.tile_of(curve.encode(cx, cy));
            // Nudge by strictly less than one cell, then keep the nudge
            // only if it stays in the same lattice cell — the premise of
            // "epsilon inside the tile's bbox".
            let (nx, ny) = (x + eps_frac * cell_w, y - eps_frac * cell_w);
            if q.cell(nx, ny) == (cx, cy) {
                let nt = b.tile_of(curve.encode(cx, cy));
                prop_assert_eq!(nt, t, "same cell must bin to the same tile");
            }
        }
    }

    #[test]
    fn tile_boundaries_round_trip_through_world_coordinates(
        pts in prop::collection::vec((-WIN..WIN, -WIN..WIN), 2..200),
        target in 1usize..32,
        bits in 3u32..10,
        hilbert in any::<bool>(),
    ) {
        let curve = if hilbert { Curve::Hilbert } else { Curve::Morton };
        let q = Quantizer::new(-WIN, -WIN, WIN, WIN, bits);
        let mut sorted = keys_of(&pts, &q, curve);
        sorted.sort_unstable();
        let b = TileBinning::from_sorted_keys(&sorted, target);
        let cell_w = 2.0 * WIN / (1u64 << bits) as f64;
        for t in 0..b.len() {
            // A boundary key, decoded to its lattice cell, re-quantised
            // from the cell's world-space centre, must come back as the
            // same key — i.e. bin into tile t, not a neighbour.
            for key in [b.start(t), b.end_inclusive(t).min(b.start(t))] {
                let (cx, cy) = curve.decode(key);
                if cx > q.max_cell() || cy > q.max_cell() {
                    continue; // key beyond the lattice (open-ended last tile)
                }
                let wx = -WIN + (cx as f64 + 0.5) * cell_w;
                let wy = -WIN + (cy as f64 + 0.5) * cell_w;
                let (rcx, rcy) = q.cell(wx, wy);
                prop_assert_eq!((rcx, rcy), (cx, cy), "cell centre re-quantises");
                prop_assert_eq!(b.tile_of(curve.encode(rcx, rcy)), t);
            }
            // The key just below a tile's start belongs to the previous
            // tile — the boundary is exact, not fuzzy.
            if t > 0 {
                prop_assert_eq!(b.tile_of(b.start(t) - 1), t - 1);
            }
        }
    }
}
