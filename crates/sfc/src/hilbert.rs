//! Hilbert curve encode/decode.
//!
//! The classic iterative quadrant-rotation algorithm (Sagan's construction,
//! the reference the paper cites for Oracle's Hilbert-sorted point-cloud
//! blocks). Unlike the Morton curve, every step of the Hilbert curve moves
//! to a 4-neighbour, which is what gives it its superior locality — the
//! exhaustive adjacency test below pins that property down.

/// Rotate/flip a quadrant of side `s` (power of two) appropriately.
#[inline]
fn rot(s: u64, x: &mut u64, y: &mut u64, rx: u64, ry: u64) {
    if ry == 0 {
        if rx == 1 {
            *x = (s - 1).wrapping_sub(*x);
            *y = (s - 1).wrapping_sub(*y);
        }
        std::mem::swap(x, y);
    }
}

/// Encode a point of the `2^order × 2^order` grid into its Hilbert index.
///
/// # Panics
/// Panics when a coordinate does not fit in `order` bits or `order > 32`.
pub fn hilbert_encode_order(order: u32, x: u32, y: u32) -> u64 {
    assert!((1..=32).contains(&order), "order must be in 1..=32");
    if order < 32 {
        assert!(
            (u64::from(x) < (1u64 << order)) && (u64::from(y) < (1u64 << order)),
            "coordinates must fit in {order} bits"
        );
    }
    let mut x = u64::from(x);
    let mut y = u64::from(y);
    let mut d: u64 = 0;
    let mut s: u64 = 1u64 << (order - 1);
    while s > 0 {
        let rx = u64::from(x & s > 0);
        let ry = u64::from(y & s > 0);
        d = d.wrapping_add(s.wrapping_mul(s).wrapping_mul((3 * rx) ^ ry));
        rot(s, &mut x, &mut y, rx, ry);
        s /= 2;
    }
    d
}

/// Decode a Hilbert index of the `2^order × 2^order` grid back to a point.
pub fn hilbert_decode_order(order: u32, key: u64) -> (u32, u32) {
    assert!((1..=32).contains(&order), "order must be in 1..=32");
    let mut t = key;
    let mut x: u64 = 0;
    let mut y: u64 = 0;
    let mut s: u64 = 1;
    while s < (1u64 << order) {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        rot(s, &mut x, &mut y, rx, ry);
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x as u32, y as u32)
}

/// Encode on the full 32-bit lattice (the curve order used by the system).
#[inline]
pub fn hilbert_encode(x: u32, y: u32) -> u64 {
    hilbert_encode_order(32, x, y)
}

/// Decode on the full 32-bit lattice.
#[inline]
pub fn hilbert_decode(key: u64) -> (u32, u32) {
    hilbert_decode_order(32, key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_quadrant_order1() {
        // Order-1 curve visits (0,0) (0,1) (1,1) (1,0).
        assert_eq!(hilbert_encode_order(1, 0, 0), 0);
        assert_eq!(hilbert_encode_order(1, 0, 1), 1);
        assert_eq!(hilbert_encode_order(1, 1, 1), 2);
        assert_eq!(hilbert_encode_order(1, 1, 0), 3);
    }

    #[test]
    fn exhaustive_bijection_and_adjacency_order6() {
        // 64x64 grid: the curve must visit every cell exactly once and every
        // consecutive pair of indexes must be 4-neighbours.
        let order = 6;
        let n = 1u32 << order;
        let mut seen = vec![false; (n * n) as usize];
        for y in 0..n {
            for x in 0..n {
                let d = hilbert_encode_order(order, x, y);
                assert!(d < u64::from(n * n));
                assert!(!seen[d as usize], "key collision at ({x},{y})");
                seen[d as usize] = true;
                assert_eq!(hilbert_decode_order(order, d), (x, y));
            }
        }
        assert!(seen.iter().all(|&s| s));
        let mut prev = hilbert_decode_order(order, 0);
        for d in 1..u64::from(n * n) {
            let cur = hilbert_decode_order(order, d);
            let dist = (i64::from(cur.0) - i64::from(prev.0)).abs()
                + (i64::from(cur.1) - i64::from(prev.1)).abs();
            assert_eq!(dist, 1, "step {d} jumps from {prev:?} to {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn full_order_roundtrip() {
        for &(x, y) in &[
            (0u32, 0u32),
            (1, 0),
            (u32::MAX, u32::MAX),
            (u32::MAX, 0),
            (0, u32::MAX),
            (0xCAFE_BABE, 0x0BAD_F00D),
        ] {
            let d = hilbert_encode(x, y);
            assert_eq!(hilbert_decode(d), (x, y), "({x},{y}) -> {d}");
        }
    }

    #[test]
    fn origin_maps_to_zero() {
        assert_eq!(hilbert_encode(0, 0), 0);
        assert_eq!(hilbert_decode(0), (0, 0));
    }

    #[test]
    #[should_panic(expected = "fit in")]
    fn out_of_range_coordinate_panics() {
        hilbert_encode_order(4, 16, 0);
    }

    #[test]
    fn orders_agree_on_prefix_grid() {
        // The order-k curve restricted to the lower-left quadrant is the
        // order-(k-1) curve (up to the known traversal); at least verify
        // bijectivity at several orders.
        for order in [2u32, 3, 8, 12] {
            let n = 1u32 << order;
            let pts = [(0, 0), (n - 1, 0), (0, n - 1), (n - 1, n - 1), (n / 2, n / 3)];
            for &(x, y) in &pts {
                let d = hilbert_encode_order(order, x, y);
                assert_eq!(hilbert_decode_order(order, d), (x, y));
            }
        }
    }
}
