//! Morton (Z-order) curve: bit interleaving of two 32-bit coordinates.

/// Spread the bits of `v` so that bit `i` moves to bit `2 i`.
#[inline]
fn spread(v: u32) -> u64 {
    let mut v = v as u64;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Inverse of [`spread`]: collect every second bit.
#[inline]
fn squash(v: u64) -> u32 {
    let mut v = v & 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v >> 16)) & 0x0000_0000_FFFF_FFFF;
    v as u32
}

/// Interleave `x` (even bits) and `y` (odd bits) into a 64-bit Morton key.
#[inline]
pub fn morton_encode(x: u32, y: u32) -> u64 {
    spread(x) | (spread(y) << 1)
}

/// Invert [`morton_encode`].
#[inline]
pub fn morton_decode(key: u64) -> (u32, u32) {
    (squash(key), squash(key >> 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(morton_encode(0, 0), 0);
        assert_eq!(morton_encode(1, 0), 0b01);
        assert_eq!(morton_encode(0, 1), 0b10);
        assert_eq!(morton_encode(1, 1), 0b11);
        assert_eq!(morton_encode(2, 0), 0b0100);
        assert_eq!(morton_encode(3, 3), 0b1111);
        assert_eq!(morton_encode(7, 5), 0b110111);
    }

    #[test]
    fn roundtrip_extremes() {
        for &(x, y) in &[
            (0u32, 0u32),
            (u32::MAX, 0),
            (0, u32::MAX),
            (u32::MAX, u32::MAX),
            (0xDEAD_BEEF, 0x1234_5678),
        ] {
            assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
        }
    }

    #[test]
    fn z_order_visits_quadrants_in_order() {
        // Within a 4x4 grid the curve visits quadrant (0,0) first, then
        // (x-high), then (y-high), then both-high.
        let q00 = morton_encode(1, 1);
        let q10 = morton_encode(3, 1);
        let q01 = morton_encode(1, 3);
        let q11 = morton_encode(3, 3);
        assert!(q00 < q10 && q10 < q01 && q01 < q11);
    }

    #[test]
    fn monotone_in_each_coordinate() {
        for y in 0..16u32 {
            for x in 0..15u32 {
                assert!(morton_encode(x, y) < morton_encode(x + 1, y));
                assert!(morton_encode(y, x) < morton_encode(y, x + 1));
            }
        }
    }
}
