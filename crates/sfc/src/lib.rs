//! # lidardb-sfc — space-filling curves
//!
//! §2.3 of the paper: *"Sorting the point cloud data using space filling
//! curves is a common technique used by spatial DBMS and file-based
//! solutions"* — Oracle sorts SDO_PC blocks along a **Hilbert** curve,
//! LAStools' `lassort` uses a **Z-order (Morton)** sort. This crate provides
//! both curves on 2-D unsigned lattices plus the quantisation and sorting
//! helpers the baselines use, and the locality statistics of experiment E8.

pub mod binning;
pub mod hilbert;
pub mod locality;
pub mod morton;
pub mod quantize;

pub use binning::TileBinning;
pub use hilbert::{hilbert_decode, hilbert_encode};
pub use locality::{curve_locality, LocalityStats};
pub use morton::{morton_decode, morton_encode};
pub use quantize::Quantizer;

/// Which space-filling curve to order data by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Curve {
    /// Z-order / Morton / Lebesgue curve (bit interleaving).
    Morton,
    /// Hilbert curve (rotation-aware, better locality).
    Hilbert,
}

impl Curve {
    /// Encode a 2-D lattice point into a 1-D key along the curve.
    pub fn encode(self, x: u32, y: u32) -> u64 {
        match self {
            Curve::Morton => morton_encode(x, y),
            Curve::Hilbert => hilbert_encode(x, y),
        }
    }

    /// Decode a 1-D key back into the 2-D lattice point.
    pub fn decode(self, key: u64) -> (u32, u32) {
        match self {
            Curve::Morton => morton_decode(key),
            Curve::Hilbert => hilbert_decode(key),
        }
    }
}

/// Produce the permutation that sorts `(x, y)` pairs along `curve`.
///
/// Returns row indexes in curve order; apply with `Column::gather`.
pub fn sort_permutation(curve: Curve, xs: &[u32], ys: &[u32]) -> Vec<usize> {
    assert_eq!(xs.len(), ys.len(), "coordinate arrays must align");
    let mut perm: Vec<usize> = (0..xs.len()).collect();
    perm.sort_by_key(|&i| curve.encode(xs[i], ys[i]));
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_dispatch_roundtrip() {
        for curve in [Curve::Morton, Curve::Hilbert] {
            for &(x, y) in &[(0u32, 0u32), (1, 0), (12345, 67890), (u32::MAX, u32::MAX)] {
                assert_eq!(curve.decode(curve.encode(x, y)), (x, y), "{curve:?}");
            }
        }
    }

    #[test]
    fn sort_permutation_orders_by_key() {
        let xs = [3u32, 0, 2, 1];
        let ys = [3u32, 0, 2, 1];
        let perm = sort_permutation(Curve::Morton, &xs, &ys);
        let keys: Vec<u64> = perm.iter().map(|&i| morton_encode(xs[i], ys[i])).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(perm.len(), 4);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_coords_panic() {
        sort_permutation(Curve::Hilbert, &[1], &[]);
    }
}
