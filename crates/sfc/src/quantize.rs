//! Quantisation of floating-point coordinates onto the curve lattice.
//!
//! Space-filling curves operate on integer lattices; LIDAR coordinates are
//! metric doubles. The [`Quantizer`] maps an axis-aligned world window onto
//! the `2^bits × 2^bits` lattice, clamping out-of-window points to the edge
//! (matching how `lassort` handles points outside the declared header bbox).

/// Affine quantiser from a world rectangle to a `2^bits` square lattice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    min_x: f64,
    min_y: f64,
    scale_x: f64,
    scale_y: f64,
    max_cell: u32,
}

impl Quantizer {
    /// Build a quantiser for the world window `[min_x, max_x] × [min_y,
    /// max_y]` at `bits` bits of resolution per axis.
    ///
    /// # Panics
    /// Panics on an empty/inverted window, non-finite bounds, or
    /// `bits` outside `1..=32`.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64, bits: u32) -> Self {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        assert!(
            min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite(),
            "window must be finite"
        );
        assert!(max_x > min_x && max_y > min_y, "window must be non-empty");
        let cells = (1u64 << bits) as f64;
        Quantizer {
            min_x,
            min_y,
            scale_x: cells / (max_x - min_x),
            scale_y: cells / (max_y - min_y),
            max_cell: ((1u64 << bits) - 1) as u32,
        }
    }

    /// Quantise a world point to lattice coordinates, clamping to the
    /// window.
    #[inline]
    pub fn cell(&self, x: f64, y: f64) -> (u32, u32) {
        (
            self.axis(x, self.min_x, self.scale_x),
            self.axis(y, self.min_y, self.scale_y),
        )
    }

    #[inline]
    fn axis(&self, v: f64, min: f64, scale: f64) -> u32 {
        let c = (v - min) * scale;
        // NaN and <= 0 both clamp to the low edge.
        if c.is_nan() || c <= 0.0 {
            0
        } else if c >= self.max_cell as f64 {
            self.max_cell
        } else {
            c as u32
        }
    }

    /// Highest lattice coordinate per axis (`2^bits - 1`).
    pub fn max_cell(&self) -> u32 {
        self.max_cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_window_corners() {
        let q = Quantizer::new(0.0, 0.0, 100.0, 200.0, 8);
        assert_eq!(q.cell(0.0, 0.0), (0, 0));
        assert_eq!(q.cell(100.0, 200.0), (255, 255));
        assert_eq!(q.cell(50.0, 100.0), (128, 128));
        assert_eq!(q.max_cell(), 255);
    }

    #[test]
    fn clamps_outside_window() {
        let q = Quantizer::new(0.0, 0.0, 10.0, 10.0, 4);
        assert_eq!(q.cell(-5.0, 20.0), (0, 15));
        assert_eq!(q.cell(1e9, -1e9), (15, 0));
        assert_eq!(q.cell(f64::NAN, 5.0).0, 0);
    }

    #[test]
    fn monotone_within_window() {
        let q = Quantizer::new(-10.0, -10.0, 10.0, 10.0, 16);
        let mut prev = 0;
        for i in 0..100 {
            let x = -10.0 + 20.0 * (i as f64) / 100.0;
            let (cx, _) = q.cell(x, 0.0);
            assert!(cx >= prev, "quantisation must be monotone");
            prev = cx;
        }
    }

    #[test]
    fn full_32_bits() {
        let q = Quantizer::new(0.0, 0.0, 1.0, 1.0, 32);
        assert_eq!(q.cell(1.0, 1.0), (u32::MAX, u32::MAX));
        assert_eq!(q.cell(0.0, 0.0), (0, 0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_window_panics() {
        Quantizer::new(10.0, 0.0, 0.0, 10.0, 8);
    }
}
