//! Partitioning a sorted run of SFC keys into contiguous tiles.
//!
//! The tiled storage layer orders points by their Hilbert/Morton key and
//! cuts the sorted run into tiles of roughly `target_rows` points. The one
//! invariant everything downstream leans on: **equal keys never straddle a
//! tile boundary**. A lattice cell maps to exactly one key, so every point
//! quantising into that cell lands in exactly one tile — which is what
//! makes per-tile zone maps safe to prune with (a point "epsilon inside"
//! a tile's bbox cannot secretly live in the neighbour tile).

/// A partition of the `u64` key space into contiguous half-open tiles.
///
/// Tile `i` covers keys in `[starts[i], starts[i+1])`; the last tile is
/// open-ended. `starts[0]` is always 0 so every key bins somewhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileBinning {
    starts: Vec<u64>,
}

impl TileBinning {
    /// Build a binning that cuts `sorted_keys` into tiles of roughly
    /// `target_rows` keys each. Cuts are only placed *between* distinct
    /// key values, so a run of equal keys always stays in one tile even
    /// when it overshoots the target.
    ///
    /// # Panics
    /// Panics if `sorted_keys` is not ascending or `target_rows == 0`.
    pub fn from_sorted_keys(sorted_keys: &[u64], target_rows: usize) -> TileBinning {
        assert!(target_rows > 0, "target_rows must be positive");
        assert!(
            sorted_keys.windows(2).all(|w| w[0] <= w[1]),
            "keys must be sorted ascending"
        );
        let mut starts = vec![0u64];
        let mut tile_rows = 0usize;
        for i in 0..sorted_keys.len() {
            tile_rows += 1;
            // Cut after this key once the tile is full — but only if the
            // next key differs (equal keys must share a tile).
            if tile_rows >= target_rows {
                if let Some(&next) = sorted_keys.get(i + 1) {
                    if next != sorted_keys[i] {
                        starts.push(next);
                        tile_rows = 0;
                    }
                }
            }
        }
        TileBinning { starts }
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the binning is the trivial single tile.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First key of tile `i`.
    pub fn start(&self, i: usize) -> u64 {
        self.starts[i]
    }

    /// Inclusive last key of tile `i` (`u64::MAX` for the final tile).
    pub fn end_inclusive(&self, i: usize) -> u64 {
        match self.starts.get(i + 1) {
            Some(&next) => next - 1,
            None => u64::MAX,
        }
    }

    /// The tile a key bins into. Total: every `u64` maps to exactly one
    /// tile.
    pub fn tile_of(&self, key: u64) -> usize {
        // partition_point returns the count of starts <= key; starts[0]=0
        // guarantees at least one.
        self.starts.partition_point(|&s| s <= key) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_and_empty_inputs_yield_one_tile() {
        let b = TileBinning::from_sorted_keys(&[], 10);
        assert_eq!(b.len(), 1);
        assert_eq!(b.tile_of(0), 0);
        assert_eq!(b.tile_of(u64::MAX), 0);
        let b = TileBinning::from_sorted_keys(&[5, 6, 7], 10);
        assert_eq!(b.len(), 1, "under target: single tile");
    }

    #[test]
    fn cuts_at_target_and_bins_consistently() {
        let keys: Vec<u64> = (0..100).collect();
        let b = TileBinning::from_sorted_keys(&keys, 25);
        assert_eq!(b.len(), 4);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(b.tile_of(k), i / 25, "key {k}");
        }
        // Boundaries are exact: last key of tile 0 / first key of tile 1.
        assert_eq!(b.end_inclusive(0), 24);
        assert_eq!(b.start(1), 25);
        assert_eq!(b.tile_of(24), 0);
        assert_eq!(b.tile_of(25), 1);
    }

    #[test]
    fn equal_keys_never_straddle_a_boundary() {
        // 50 copies of key 7, target 10: one oversized tile, no cut inside
        // the run.
        let mut keys = vec![7u64; 50];
        keys.extend([9, 10, 11]);
        let b = TileBinning::from_sorted_keys(&keys, 10);
        assert_eq!(b.tile_of(7), 0);
        assert!(b.start(1) > 7, "cut placed after the equal-key run");
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_keys_panic() {
        TileBinning::from_sorted_keys(&[3, 1], 2);
    }
}
