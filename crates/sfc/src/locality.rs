//! Locality statistics of a curve ordering (experiment E8).
//!
//! Measures how well a 1-D ordering preserves 2-D proximity: for points laid
//! out in curve order, how far apart in space are consecutive points, and —
//! the metric that matters for the block-store baseline — how many distinct
//! fixed-size 1-D blocks does a small 2-D query window touch.

use crate::Curve;

/// Summary of the spatial coherence of a 1-D ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityStats {
    /// Mean Euclidean distance (in lattice cells) between consecutive
    /// points of the ordering.
    pub mean_step: f64,
    /// Maximum consecutive-step distance.
    pub max_step: f64,
    /// Number of points measured.
    pub count: usize,
}

/// Measure consecutive-step locality of `curve` over the given lattice
/// points. The points are sorted along the curve first.
pub fn curve_locality(curve: Curve, pts: &[(u32, u32)]) -> LocalityStats {
    if pts.len() < 2 {
        return LocalityStats {
            mean_step: 0.0,
            max_step: 0.0,
            count: pts.len(),
        };
    }
    let mut keys: Vec<(u64, u32, u32)> = pts
        .iter()
        .map(|&(x, y)| (curve.encode(x, y), x, y))
        .collect();
    keys.sort_unstable();
    let mut sum = 0.0f64;
    let mut max = 0.0f64;
    for w in keys.windows(2) {
        let dx = f64::from(w[1].1) - f64::from(w[0].1);
        let dy = f64::from(w[1].2) - f64::from(w[0].2);
        let d = (dx * dx + dy * dy).sqrt();
        sum += d;
        if d > max {
            max = d;
        }
    }
    LocalityStats {
        mean_step: sum / (keys.len() - 1) as f64,
        max_step: max,
        count: pts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_grid(n: u32) -> Vec<(u32, u32)> {
        (0..n).flat_map(|y| (0..n).map(move |x| (x, y))).collect()
    }

    #[test]
    fn hilbert_steps_are_unit_on_full_grid() {
        // On a complete grid, the Hilbert curve moves by exactly one cell
        // per step — the defining locality property.
        let s = curve_locality(Curve::Hilbert, &full_grid(16));
        assert!((s.mean_step - 1.0).abs() < 1e-12);
        assert!((s.max_step - 1.0).abs() < 1e-12);
    }

    #[test]
    fn morton_has_long_jumps() {
        let s = curve_locality(Curve::Morton, &full_grid(16));
        assert!(s.mean_step > 1.0);
        assert!(s.max_step > 10.0, "Z-order crosses the grid diagonally");
    }

    #[test]
    fn hilbert_beats_morton_on_random_points() {
        // Deterministic pseudo-random points.
        let pts: Vec<(u32, u32)> = (0u64..4000)
            .map(|i| {
                let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 13) as u32 & 0x3FF, (h >> 40) as u32 & 0x3FF)
            })
            .collect();
        let h = curve_locality(Curve::Hilbert, &pts);
        let m = curve_locality(Curve::Morton, &pts);
        assert!(
            h.mean_step < m.mean_step,
            "hilbert {} vs morton {}",
            h.mean_step,
            m.mean_step
        );
    }

    #[test]
    fn degenerate_inputs() {
        let s = curve_locality(Curve::Hilbert, &[]);
        assert_eq!(s.count, 0);
        let s = curve_locality(Curve::Morton, &[(5, 5)]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean_step, 0.0);
    }
}
