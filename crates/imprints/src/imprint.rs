//! The imprint vector array and its cacheline dictionary.
//!
//! One 64-bit vector summarises one 64-byte cacheline of column values.
//! Consecutive identical vectors — extremely common on acquisition-ordered
//! LIDAR data, where a flight line sweeps slowly through X/Y — are collapsed
//! by the SIGMOD'13 *cacheline dictionary*: a sequence of `(count, repeat)`
//! entries where `repeat = 1` means "the next `count` cachelines all share
//! the single following vector" and `repeat = 0` means "`count` individual
//! vectors follow".

use lidardb_storage::Native;

use crate::bins::BinMap;
use crate::candidates::CandidateList;

/// A packed cacheline-dictionary entry: 31-bit counter + 1 repeat bit, the
/// 4-byte layout of the original implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DictEntry(u32);

const COUNT_MAX: u32 = (1 << 31) - 1;

impl DictEntry {
    #[inline]
    fn new(count: u32, repeat: bool) -> Self {
        debug_assert!(count <= COUNT_MAX);
        DictEntry(count | (u32::from(repeat) << 31))
    }
    #[inline]
    pub(crate) fn count(self) -> u32 {
        self.0 & COUNT_MAX
    }
    #[inline]
    pub(crate) fn repeat(self) -> bool {
        self.0 >> 31 == 1
    }
}

/// A column imprints index over values of type `T`.
#[derive(Debug, Clone, PartialEq)]
pub struct Imprints<T> {
    bins: BinMap<T>,
    dict: Vec<DictEntry>,
    vectors: Vec<u64>,
    values_per_line: usize,
    len: usize,
}

impl<T: Native> Imprints<T> {
    /// Build an imprint index over `data` with sampled bin borders.
    pub fn build(data: &[T]) -> Self {
        Self::build_with_bins(data, BinMap::from_data(data))
    }

    /// Build with an explicit bin layout (E7 ablations, tests).
    pub fn build_with_bins(data: &[T], bins: BinMap<T>) -> Self {
        let values_per_line = T::PHYS.values_per_cacheline();
        let mut imp = Imprints {
            bins,
            dict: Vec::new(),
            vectors: Vec::new(),
            values_per_line,
            len: 0,
        };
        for line in data.chunks(values_per_line) {
            let mut d = 0u64;
            for &v in line {
                d |= imp.bins.bit_of(v);
            }
            imp.push_line(d);
        }
        imp.len = data.len();
        imp
    }

    /// Feed one line vector through the cacheline-dictionary state machine
    /// (shared by [`Self::build_with_bins`] and [`Self::append`]).
    fn push_line(&mut self, d: u64) {
        match (self.vectors.last().copied(), self.dict.last_mut()) {
            (Some(prev), Some(last)) if prev == d && last.count() < COUNT_MAX => {
                if last.repeat() {
                    *last = DictEntry::new(last.count() + 1, true);
                } else if last.count() == 1 {
                    *last = DictEntry::new(2, true);
                } else {
                    // Split the trailing vector of the non-repeat run
                    // into a fresh repeat entry of length 2.
                    *last = DictEntry::new(last.count() - 1, false);
                    self.dict.push(DictEntry::new(2, true));
                }
            }
            _ => {
                self.vectors.push(d);
                match self.dict.last_mut() {
                    Some(last) if !last.repeat() && last.count() < COUNT_MAX => {
                        *last = DictEntry::new(last.count() + 1, false);
                    }
                    _ => self.dict.push(DictEntry::new(1, false)),
                }
            }
        }
    }

    /// Remove the trailing line from the dictionary/vector tail and return
    /// its vector, so [`Self::append`] can extend a partial last cacheline.
    fn pop_last_line(&mut self) -> u64 {
        let last = self.dict.last_mut().expect("pop_last_line on empty index");
        if last.repeat() {
            // A repeat run stores a single vector for all its lines; the
            // vector stays because the shortened run still uses it.
            let d = *self.vectors.last().expect("repeat entry has a vector");
            if last.count() > 2 {
                *last = DictEntry::new(last.count() - 1, true);
            } else {
                *last = DictEntry::new(1, false);
            }
            d
        } else if last.count() > 1 {
            *last = DictEntry::new(last.count() - 1, false);
            self.vectors.pop().expect("non-repeat entry has vectors")
        } else {
            self.dict.pop();
            self.vectors.pop().expect("non-repeat entry has vectors")
        }
    }

    /// Extend the index with `added` values appended after the indexed
    /// prefix, without rebuilding: the trailing (possibly partial)
    /// cacheline vector is popped, OR-extended with the new values that
    /// land in it, and re-fed through the dictionary state machine, then
    /// whole new lines follow.
    ///
    /// The bin borders stay fixed. That is sound — the edge bins are
    /// open-ended, so appended values outside the sampled domain still map
    /// to a bin and probes keep producing supersets — but selectivity can
    /// degrade if the appended distribution drifts far from the sample;
    /// callers may rebuild when that matters.
    pub fn append(&mut self, added: &[T]) {
        if added.is_empty() {
            return;
        }
        let vpl = self.values_per_line;
        let fill = self.len % vpl;
        let mut rest = added;
        if fill != 0 {
            // New values falling into the trailing partial cacheline OR
            // their bin bits into its existing vector (OR is monotonic, so
            // the old tail values need not be re-read).
            let take = (vpl - fill).min(added.len());
            let mut d = self.pop_last_line();
            for &v in &added[..take] {
                d |= self.bins.bit_of(v);
            }
            self.push_line(d);
            rest = &added[take..];
        }
        for line in rest.chunks(vpl) {
            let mut d = 0u64;
            for &v in line {
                d |= self.bins.bit_of(v);
            }
            self.push_line(d);
        }
        self.len += added.len();
    }

    /// The bin layout.
    pub fn bins(&self) -> &BinMap<T> {
        &self.bins
    }

    /// Number of indexed values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index covers no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of values summarised per imprint vector.
    pub fn values_per_line(&self) -> usize {
        self.values_per_line
    }

    /// Number of cachelines covered.
    pub fn num_lines(&self) -> usize {
        self.len.div_ceil(self.values_per_line)
    }

    /// Number of stored (compressed) imprint vectors.
    pub fn num_vectors(&self) -> usize {
        self.vectors.len()
    }

    /// Number of cacheline-dictionary entries.
    pub fn num_dict_entries(&self) -> usize {
        self.dict.len()
    }

    /// Index size in bytes: vectors + packed dictionary + borders.
    pub fn byte_size(&self) -> usize {
        self.vectors.len() * 8 + self.dict.len() * 4 + self.bins.borders().len() * T::PHYS.size()
    }

    /// Probe the index with the inclusive range `[lo, hi]`.
    ///
    /// Returns maximal candidate row runs; see [`CandidateList`].
    pub fn probe(&self, lo: T, hi: T) -> CandidateList {
        if lo.total_cmp(&hi).is_gt() {
            return CandidateList::empty();
        }
        let (mask, inner) = self.bins.range_masks(lo, hi);
        self.probe_masks(mask, inner)
    }

    /// Probe with precomputed `(mask, innermask)` bit masks.
    pub fn probe_masks(&self, mask: u64, inner: u64) -> CandidateList {
        let mut out = CandidateList::empty();
        let mut line = 0usize;
        let mut vi = 0usize;
        for &e in &self.dict {
            let count = e.count() as usize;
            if e.repeat() {
                let d = self.vectors[vi];
                vi += 1;
                if d & mask != 0 {
                    let all = d & !inner == 0;
                    self.push_lines(&mut out, line, line + count, all);
                }
                line += count;
            } else {
                for k in 0..count {
                    let d = self.vectors[vi + k];
                    if d & mask != 0 {
                        let all = d & !inner == 0;
                        self.push_lines(&mut out, line + k, line + k + 1, all);
                    }
                }
                vi += count;
                line += count;
            }
        }
        debug_assert_eq!(vi, self.vectors.len());
        debug_assert_eq!(line, self.num_lines());
        out
    }

    #[inline]
    fn push_lines(&self, out: &mut CandidateList, from_line: usize, to_line: usize, all: bool) {
        let start = from_line * self.values_per_line;
        let end = (to_line * self.values_per_line).min(self.len);
        out.push(start, end, all);
    }

    /// Expand the compressed representation back into one vector per
    /// cacheline (tests and stats only — queries never need this).
    pub fn expand_vectors(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.num_lines());
        let mut vi = 0usize;
        for &e in &self.dict {
            let count = e.count() as usize;
            if e.repeat() {
                out.extend(std::iter::repeat_n(self.vectors[vi], count));
                vi += 1;
            } else {
                out.extend_from_slice(&self.vectors[vi..vi + count]);
                vi += count;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(data: &[i64], lo: i64, hi: i64) -> Vec<usize> {
        data.iter()
            .enumerate()
            .filter(|(_, &v)| v >= lo && v <= hi)
            .map(|(i, _)| i)
            .collect()
    }

    fn assert_sound(data: &[i64], imp: &Imprints<i64>, lo: i64, hi: i64) {
        let cand = imp.probe(lo, hi);
        // No false negatives.
        for row in brute_force(data, lo, hi) {
            assert!(cand.contains(row), "row {row} missed for [{lo},{hi}]");
        }
        // all_qualify runs contain only matches.
        for r in cand.ranges() {
            if r.all_qualify {
                for (off, &v) in data[r.start..r.end].iter().enumerate() {
                    assert!(
                        v >= lo && v <= hi,
                        "row {}={v} falsely sure for [{lo},{hi}]",
                        r.start + off
                    );
                }
            }
        }
    }

    #[test]
    fn dict_entry_packing() {
        let e = DictEntry::new(12345, true);
        assert_eq!(e.count(), 12345);
        assert!(e.repeat());
        let e = DictEntry::new(COUNT_MAX, false);
        assert_eq!(e.count(), COUNT_MAX);
        assert!(!e.repeat());
    }

    #[test]
    fn clustered_data_compresses() {
        // 8 i64 per cacheline; 8000 sorted values -> long runs of identical
        // imprint vectors.
        let data: Vec<i64> = (0..8000).map(|i| i / 500).collect();
        let imp = Imprints::build(&data);
        assert_eq!(imp.num_lines(), 1000);
        assert!(
            imp.num_vectors() < 100,
            "sorted data should compress: {} vectors",
            imp.num_vectors()
        );
        assert_eq!(imp.expand_vectors().len(), 1000);
        assert_sound(&data, &imp, 3, 7);
        assert_sound(&data, &imp, 0, 0);
    }

    #[test]
    fn shuffled_data_still_sound() {
        let mut data: Vec<i64> = (0..4096).collect();
        // Deterministic shuffle.
        for i in 0..data.len() {
            let j = (i * 2654435761) % data.len();
            data.swap(i, j);
        }
        let imp = Imprints::build(&data);
        for (lo, hi) in [(0, 10), (1000, 1100), (4000, 5000), (-5, -1)] {
            assert_sound(&data, &imp, lo, hi);
        }
    }

    #[test]
    fn probe_empty_range_and_miss() {
        let data: Vec<i64> = (0..100).collect();
        let imp = Imprints::build(&data);
        assert!(imp.probe(50, 40).is_empty(), "inverted range");
        // Out-of-domain probes may hit the open-ended first/last bins; they
        // must still be supersets (possibly non-empty) — just verify
        // soundness.
        assert_sound(&data, &imp, 1000, 2000);
    }

    #[test]
    fn partial_last_cacheline_clamped() {
        let data: Vec<i64> = (0..13).collect(); // 8 + 5 values
        let imp = Imprints::build(&data);
        assert_eq!(imp.num_lines(), 2);
        let cand = imp.probe(0, 100);
        assert_eq!(cand.num_rows(), 13, "rows must clamp to len");
        assert_sound(&data, &imp, 9, 20);
    }

    #[test]
    fn empty_column() {
        let imp = Imprints::<i64>::build(&[]);
        assert!(imp.is_empty());
        assert_eq!(imp.num_lines(), 0);
        assert!(imp.probe(0, 1).is_empty());
    }

    #[test]
    fn all_qualify_fast_path_fires() {
        // Sorted data, probe a range covering whole inner bins: the middle
        // cachelines must be flagged all_qualify.
        let data: Vec<i64> = (0..64_000).collect();
        let imp = Imprints::build(&data);
        let borders = imp.bins().borders().to_vec();
        assert!(borders.len() > 10);
        // Pick a range aligned on borders: [borders[5], borders[20] - 1].
        let (lo, hi) = (borders[5], borders[20] - 1);
        let cand = imp.probe(lo, hi);
        assert!(
            cand.num_sure_rows() > 0,
            "border-aligned probe should produce sure rows"
        );
        assert_sound(&data, &imp, lo, hi);
    }

    #[test]
    fn repeat_run_split_is_correct() {
        // Force the dictionary split path: several distinct vectors, then a
        // repeat of the last one.
        let mut data = Vec::new();
        for line in 0..4 {
            for _ in 0..8 {
                data.push(line * 1000); // distinct vector per line
            }
        }
        // 5 more cachelines repeating the 4th vector.
        data.extend(std::iter::repeat_n(3000, 5 * 8));
        let imp = Imprints::build_with_bins(
            &data,
            BinMap::from_borders(vec![500, 1500, 2500]),
        );
        assert_eq!(imp.expand_vectors().len(), imp.num_lines());
        // Vector storage: 4 distinct vectors only.
        assert_eq!(imp.num_vectors(), 4);
        assert_sound(&data, &imp, 3000, 3000);
        let cand = imp.probe(3000, 3000);
        assert_eq!(cand.num_rows(), 6 * 8); // line 3 + the 5 repeats
    }

    #[test]
    fn append_matches_full_rebuild_line_for_line() {
        // Appending in arbitrary batch sizes must yield exactly the
        // expanded vectors a full build over the concatenation (with the
        // same bins) would produce — including partial-cacheline tails and
        // repeat-run surgery.
        let bins = BinMap::from_borders(vec![100i64, 200, 300, 400]);
        let full: Vec<i64> = (0..1000).map(|i| (i * 37) % 500).collect();
        for split in [0usize, 1, 7, 8, 13, 64, 999, 1000] {
            let mut imp = Imprints::build_with_bins(&full[..split], bins.clone());
            // Drip the rest in uneven batches.
            let mut at = split;
            for step in [1usize, 3, 8, 11, 90].iter().cycle() {
                if at >= full.len() {
                    break;
                }
                let end = (at + step).min(full.len());
                imp.append(&full[at..end]);
                at = end;
            }
            let rebuilt = Imprints::build_with_bins(&full, bins.clone());
            assert_eq!(imp.len(), rebuilt.len(), "split={split}");
            assert_eq!(
                imp.expand_vectors(),
                rebuilt.expand_vectors(),
                "split={split}"
            );
            assert_sound(&full, &imp, 150, 350);
        }
    }

    #[test]
    fn append_extends_repeat_runs() {
        // Sorted data compresses to repeat runs; appending more identical
        // lines must extend the run, not explode the dictionary.
        let data: Vec<i64> = vec![5; 8 * 100];
        let mut imp = Imprints::build(&data);
        let before = imp.num_vectors();
        imp.append(&vec![5i64; 8 * 100]);
        assert_eq!(imp.len(), 1600);
        assert_eq!(imp.num_vectors(), before, "repeat run extended in place");
        let cand = imp.probe(5, 5);
        assert_eq!(cand.num_rows(), 1600);
    }

    #[test]
    fn append_out_of_domain_values_stays_sound() {
        // Bins were sampled from 0..100; appended values far outside land
        // in the open-ended edge bins and must still be findable.
        let data: Vec<i64> = (0..100).collect();
        let mut imp = Imprints::build(&data);
        let tail: Vec<i64> = (0..40).map(|i| 1_000_000 + i).collect();
        imp.append(&tail);
        let all: Vec<i64> = data.iter().chain(tail.iter()).copied().collect();
        assert_eq!(imp.len(), all.len());
        assert_sound(&all, &imp, 1_000_010, 1_000_020);
        assert_sound(&all, &imp, -50, 5);
    }

    #[test]
    fn append_to_empty_equals_build() {
        let data: Vec<i64> = (0..500).map(|i| i % 60).collect();
        let bins = BinMap::from_borders(vec![10i64, 20, 30, 40, 50]);
        let mut imp = Imprints::build_with_bins(&[], bins.clone());
        imp.append(&data);
        let rebuilt = Imprints::build_with_bins(&data, bins);
        assert_eq!(imp.expand_vectors(), rebuilt.expand_vectors());
        assert_eq!(imp.len(), rebuilt.len());
    }

    #[test]
    fn u8_column_uses_64_values_per_line() {
        let data: Vec<u8> = (0..=255).cycle().take(1024).collect();
        let imp = Imprints::build(&data);
        assert_eq!(imp.values_per_line(), 64);
        assert_eq!(imp.num_lines(), 16);
        let cand = imp.probe(0, 255);
        assert_eq!(cand.num_rows(), 1024);
    }

    #[test]
    fn byte_size_accounts_all_parts() {
        let data: Vec<i64> = (0..8000).collect();
        let imp = Imprints::build(&data);
        let expect =
            imp.num_vectors() * 8 + imp.num_dict_entries() * 4 + imp.bins().borders().len() * 8;
        assert_eq!(imp.byte_size(), expect);
        assert!(imp.byte_size() < data.len() * 8 / 4, "index far smaller than data");
    }
}
