//! Candidate lists — the result of probing an imprint.
//!
//! The filtering step of the two-step query model (§3.3) produces "a
//! superset of the solution": maximal runs of rows whose cachelines may hold
//! qualifying values. Ranges where the imprint proves that *every* value
//! qualifies carry the `all_qualify` flag, which lets the executor emit the
//! whole run without reading the data at all.

/// One maximal candidate run of rows, `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateRange {
    /// First candidate row.
    pub start: usize,
    /// One past the last candidate row.
    pub end: usize,
    /// Whether the imprint guarantees every row in the run qualifies.
    pub all_qualify: bool,
}

impl CandidateRange {
    /// Number of rows in the run.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// An ordered, non-overlapping list of candidate runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CandidateList {
    ranges: Vec<CandidateRange>,
}

impl CandidateList {
    /// An empty list (no cacheline can match).
    pub fn empty() -> Self {
        CandidateList::default()
    }

    /// Append a run, merging with the previous one when contiguous and of
    /// equal `all_qualify` status.
    pub fn push(&mut self, start: usize, end: usize, all_qualify: bool) {
        if start >= end {
            return;
        }
        if let Some(last) = self.ranges.last_mut() {
            debug_assert!(last.end <= start, "ranges must be pushed in order");
            if last.end == start && last.all_qualify == all_qualify {
                last.end = end;
                return;
            }
        }
        self.ranges.push(CandidateRange {
            start,
            end,
            all_qualify,
        });
    }

    /// The runs in increasing row order.
    pub fn ranges(&self) -> &[CandidateRange] {
        &self.ranges
    }

    /// Total number of candidate rows.
    pub fn num_rows(&self) -> usize {
        self.ranges.iter().map(CandidateRange::len).sum()
    }

    /// Number of rows in `all_qualify` runs.
    pub fn num_sure_rows(&self) -> usize {
        self.ranges
            .iter()
            .filter(|r| r.all_qualify)
            .map(CandidateRange::len)
            .sum()
    }

    /// Whether no rows are candidates.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether `row` is inside some candidate run.
    pub fn contains(&self, row: usize) -> bool {
        self.ranges
            .binary_search_by(|r| {
                if row < r.start {
                    std::cmp::Ordering::Greater
                } else if row >= r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Drop the qualify flags, yielding plain `(start, end)` ranges for the
    /// scan kernels.
    pub fn as_plain_ranges(&self) -> Vec<(usize, usize)> {
        self.ranges.iter().map(|r| (r.start, r.end)).collect()
    }

    /// Partition the list into morsels of at most `max_rows` candidate rows
    /// each, preserving row order and `all_qualify` flags.
    ///
    /// This is the work-division primitive of the morsel-driven parallel
    /// executor: runs larger than `max_rows` are split mid-range, so morsel
    /// sizes stay balanced regardless of how clustered the candidates are.
    /// Concatenating the returned lists in order yields exactly the original
    /// candidate rows.
    pub fn split_rows(&self, max_rows: usize) -> Vec<CandidateList> {
        let max_rows = max_rows.max(1);
        let mut out = Vec::new();
        let mut cur = CandidateList::empty();
        let mut budget = max_rows;
        for r in &self.ranges {
            let mut start = r.start;
            while start < r.end {
                let take = budget.min(r.end - start);
                cur.push(start, start + take, r.all_qualify);
                start += take;
                budget -= take;
                if budget == 0 {
                    out.push(std::mem::take(&mut cur));
                    budget = max_rows;
                }
            }
        }
        if !cur.is_empty() {
            out.push(cur);
        }
        out
    }

    /// Drop every candidate row at or beyond `max_row`.
    ///
    /// This is the snapshot-isolation clamp: a query captures a visibility
    /// watermark once, and rows appended past it must not surface even
    /// when an (incrementally refreshed) imprint already covers them.
    pub fn clamp(&mut self, max_row: usize) {
        while let Some(last) = self.ranges.last_mut() {
            if last.start >= max_row {
                self.ranges.pop();
            } else {
                last.end = last.end.min(max_row);
                break;
            }
        }
    }

    /// Intersect two candidate lists (used to AND the X- and Y-imprint
    /// results in the spatial filter). A row qualifies-for-sure only when
    /// both sides say so.
    pub fn intersect(&self, other: &CandidateList) -> CandidateList {
        let mut out = CandidateList::empty();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let a = self.ranges[i];
            let b = other.ranges[j];
            let start = a.start.max(b.start);
            let end = a.end.min(b.end);
            if start < end {
                out.push(start, end, a.all_qualify && b.all_qualify);
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_merges_compatible_runs() {
        let mut c = CandidateList::empty();
        c.push(0, 8, false);
        c.push(8, 16, false);
        c.push(16, 24, true); // different flag: no merge
        c.push(32, 40, true); // gap: no merge
        assert_eq!(c.ranges().len(), 3);
        assert_eq!(c.num_rows(), 32);
        assert_eq!(c.num_sure_rows(), 16);
    }

    #[test]
    fn empty_push_ignored() {
        let mut c = CandidateList::empty();
        c.push(5, 5, true);
        assert!(c.is_empty());
        assert_eq!(c.num_rows(), 0);
    }

    #[test]
    fn contains_uses_binary_search() {
        let mut c = CandidateList::empty();
        c.push(10, 20, false);
        c.push(30, 31, true);
        assert!(!c.contains(9));
        assert!(c.contains(10));
        assert!(c.contains(19));
        assert!(!c.contains(20));
        assert!(c.contains(30));
        assert!(!c.contains(31));
    }

    #[test]
    fn intersect_basic() {
        let mut a = CandidateList::empty();
        a.push(0, 10, true);
        a.push(20, 30, false);
        let mut b = CandidateList::empty();
        b.push(5, 25, true);
        let c = a.intersect(&b);
        assert_eq!(
            c.ranges(),
            &[
                CandidateRange {
                    start: 5,
                    end: 10,
                    all_qualify: true
                },
                CandidateRange {
                    start: 20,
                    end: 25,
                    all_qualify: false
                }
            ]
        );
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        let mut a = CandidateList::empty();
        a.push(0, 100, true);
        assert!(a.intersect(&CandidateList::empty()).is_empty());
        assert!(CandidateList::empty().intersect(&a).is_empty());
    }

    #[test]
    fn intersect_is_commutative() {
        let mut a = CandidateList::empty();
        a.push(0, 4, false);
        a.push(6, 12, true);
        a.push(14, 20, false);
        let mut b = CandidateList::empty();
        b.push(2, 8, true);
        b.push(10, 16, true);
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.num_rows(), 2 + 2 + 2 + 2);
    }

    #[test]
    fn split_rows_preserves_rows_and_flags() {
        let mut c = CandidateList::empty();
        c.push(0, 100, false);
        c.push(100, 130, true);
        c.push(200, 205, false);
        for max in [1usize, 7, 32, 64, 1000] {
            let morsels = c.split_rows(max);
            // Every morsel respects the budget.
            assert!(morsels.iter().all(|m| m.num_rows() <= max), "max={max}");
            // Concatenating the morsels reproduces the original list exactly
            // (runs may be split, so compare per-row flags).
            let flat: Vec<(usize, bool)> = morsels
                .iter()
                .flat_map(|m| m.ranges())
                .flat_map(|r| (r.start..r.end).map(|row| (row, r.all_qualify)))
                .collect();
            let orig: Vec<(usize, bool)> = c
                .ranges()
                .iter()
                .flat_map(|r| (r.start..r.end).map(|row| (row, r.all_qualify)))
                .collect();
            assert_eq!(flat, orig, "max={max}");
        }
    }

    #[test]
    fn split_rows_balances_one_huge_run() {
        let mut c = CandidateList::empty();
        c.push(0, 10_000, true);
        let morsels = c.split_rows(1024);
        assert_eq!(morsels.len(), 10); // ceil(10000 / 1024)
        assert!(morsels[..9].iter().all(|m| m.num_rows() == 1024));
        assert_eq!(morsels[9].num_rows(), 10_000 - 9 * 1024);
        assert!(morsels.iter().all(|m| m.num_sure_rows() == m.num_rows()));
    }

    #[test]
    fn split_rows_of_empty_is_empty() {
        assert!(CandidateList::empty().split_rows(8).is_empty());
    }

    /// Replays the executor's split math on the degenerate shapes the
    /// morsel planner can hand it: fewer candidate rows than workers,
    /// zero-width runs interleaved with real ones, a single run larger
    /// than every budget, and long strings of 1-row runs. Every morsel
    /// must be non-empty and the concatenation byte-identical.
    #[test]
    fn split_rows_degenerate_inputs_yield_no_empty_morsels() {
        let fewer_than_workers = {
            let mut c = CandidateList::empty();
            c.push(10, 13, false); // 3 rows, split for up to 8 workers
            c
        };
        let zero_width_runs = {
            let mut c = CandidateList::empty();
            c.push(0, 0, true); // dropped by push
            c.push(5, 8, false);
            c.push(8, 8, true); // dropped by push
            c.push(9, 9, false); // dropped by push
            c.push(12, 20, true);
            c
        };
        let one_huge_run = {
            let mut c = CandidateList::empty();
            c.push(0, 100_000, false);
            c
        };
        let many_one_row_runs = {
            let mut c = CandidateList::empty();
            for i in 0..500 {
                c.push(i * 2, i * 2 + 1, i % 3 == 0);
            }
            c
        };
        for (label, c) in [
            ("fewer_than_workers", fewer_than_workers),
            ("zero_width_runs", zero_width_runs),
            ("one_huge_run", one_huge_run),
            ("many_one_row_runs", many_one_row_runs),
        ] {
            let orig: Vec<(usize, bool)> = c
                .ranges()
                .iter()
                .flat_map(|r| (r.start..r.end).map(|row| (row, r.all_qualify)))
                .collect();
            for workers in [2usize, 4, 8] {
                // The executor's per-worker budget, floored at 1 like
                // `split_rows` itself does.
                let max = (c.num_rows() / (workers * 4)).max(1);
                let morsels = c.split_rows(max);
                assert!(
                    morsels.iter().all(|m| !m.is_empty() && m.num_rows() > 0),
                    "{label} at {workers} workers produced an empty morsel"
                );
                assert!(
                    morsels.iter().all(|m| m.num_rows() <= max),
                    "{label} at {workers} workers overflowed the budget"
                );
                let flat: Vec<(usize, bool)> = morsels
                    .iter()
                    .flat_map(|m| m.ranges())
                    .flat_map(|r| (r.start..r.end).map(|row| (row, r.all_qualify)))
                    .collect();
                assert_eq!(flat, orig, "{label} at {workers} workers lost or reordered rows");
            }
        }
    }

    #[test]
    fn clamp_cuts_ranges_at_the_watermark() {
        let mut c = CandidateList::empty();
        c.push(0, 10, true);
        c.push(20, 30, false);
        c.push(40, 50, true);
        let mut mid = c.clone();
        mid.clamp(25);
        assert_eq!(mid.as_plain_ranges(), vec![(0, 10), (20, 25)]);
        assert_eq!(mid.num_sure_rows(), 10, "flags survive the clamp");
        let mut all = c.clone();
        all.clamp(100);
        assert_eq!(all, c, "clamp beyond the end is a no-op");
        let mut none = c.clone();
        none.clamp(0);
        assert!(none.is_empty());
        let mut edge = c.clone();
        edge.clamp(40);
        assert_eq!(edge.as_plain_ranges(), vec![(0, 10), (20, 30)]);
        let mut empty = CandidateList::empty();
        empty.clamp(10);
        assert!(empty.is_empty());
    }

    #[test]
    fn plain_ranges() {
        let mut c = CandidateList::empty();
        c.push(1, 3, true);
        c.push(7, 9, false);
        assert_eq!(c.as_plain_ranges(), vec![(1, 3), (7, 9)]);
    }
}
