//! Bin border construction and range-to-bitmask translation.
//!
//! The 64 value ranges of an imprint are global to the index and "decided
//! based on the distribution of the values of the indexed column"
//! (§2.1.1). Following SIGMOD'13 we take a fixed-size sample of the column,
//! sort it, and place borders at equi-depth quantiles, deduplicating so that
//! heavily skewed columns get fewer, wider bins rather than empty ones.

use lidardb_storage::Native;

use crate::{MAX_BINS, SAMPLE_SIZE};

/// The global bin layout of one imprint index.
///
/// `borders` is a sorted list of at most [`MAX_BINS`]` - 1` distinct values.
/// Bin `i` covers the half-open interval `[borders[i-1], borders[i])`, with
/// bin `0` open below and the last bin open above:
///
/// ```text
/// bin 0          bin 1               bin n-1
/// (-inf, b0)  [b0, b1)  ...  [b_{n-2}, +inf)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BinMap<T> {
    borders: Vec<T>,
}

impl<T: Native> BinMap<T> {
    /// Derive bin borders from the column data using equi-depth sampling.
    ///
    /// Deterministic: the sample takes every `len / SAMPLE_SIZE`-th value,
    /// which suffices because the *order* of the sample is destroyed by the
    /// sort anyway and the generator-seeded benchmarks must be reproducible.
    pub fn from_data(data: &[T]) -> Self {
        Self::from_data_with(data, MAX_BINS, SAMPLE_SIZE)
    }

    /// As [`BinMap::from_data`] with explicit bin budget and sample size
    /// (used by the bin-count ablation in E7).
    pub fn from_data_with(data: &[T], max_bins: usize, sample_size: usize) -> Self {
        assert!(
            (2..=MAX_BINS).contains(&max_bins),
            "bin budget must be in 2..=64"
        );
        if data.is_empty() {
            return BinMap { borders: vec![] };
        }
        let step = (data.len() / sample_size.max(1)).max(1);
        let mut sample: Vec<T> = data.iter().copied().step_by(step).collect();
        sample.sort_by(|a, b| a.total_cmp(b));
        // Place max_bins-1 borders at equi-depth positions, dedup.
        let mut borders: Vec<T> = Vec::with_capacity(max_bins - 1);
        let min = sample[0];
        for k in 1..max_bins {
            let idx = k * sample.len() / max_bins;
            let v = sample[idx.min(sample.len() - 1)];
            // A border equal to the minimum would leave bin 0 empty; skip it
            // along with duplicates.
            let above_prev = borders.last().is_none_or(|&b| v.total_cmp(&b).is_gt());
            if above_prev && v.total_cmp(&min).is_gt() {
                borders.push(v);
            }
        }
        BinMap { borders }
    }

    /// Construct from explicit borders (test helper). Borders must be
    /// strictly increasing and at most `MAX_BINS - 1` long.
    pub fn from_borders(borders: Vec<T>) -> Self {
        assert!(borders.len() < MAX_BINS, "too many borders");
        assert!(
            borders.windows(2).all(|w| w[0].total_cmp(&w[1]).is_lt()),
            "borders must be strictly increasing"
        );
        BinMap { borders }
    }

    /// Number of bins (`borders.len() + 1`, at least 1).
    pub fn num_bins(&self) -> usize {
        self.borders.len() + 1
    }

    /// The sorted borders.
    pub fn borders(&self) -> &[T] {
        &self.borders
    }

    /// The bin index of a value: the number of borders `<=` the value.
    #[inline]
    pub fn bin_of(&self, v: T) -> u32 {
        // Branch-free enough: borders are <= 63, a linear scan would also
        // work, but partition_point is O(log 64) and obviously correct.
        self.borders
            .partition_point(|b| b.total_cmp(&v).is_le()) as u32
    }

    /// Bit mask with exactly the bit `bin_of(v)` set.
    #[inline]
    pub fn bit_of(&self, v: T) -> u64 {
        1u64 << self.bin_of(v)
    }

    /// Translate an inclusive value range into imprint probe masks.
    ///
    /// Returns `(mask, innermask)`:
    /// * `mask` — bits of every bin that *overlaps* `[lo, hi]`; a cacheline
    ///   whose imprint misses `mask` entirely cannot contain a match.
    /// * `innermask` — bits of bins that lie *entirely within* `[lo, hi]`;
    ///   a cacheline whose imprint is a subset of `innermask` contains
    ///   *only* matches (the "all qualify" fast path). Conservative: a
    ///   boundary bin is included only when the query bound provably covers
    ///   the whole bin.
    pub fn range_masks(&self, lo: T, hi: T) -> (u64, u64) {
        debug_assert!(lo.total_cmp(&hi).is_le(), "range must be ordered");
        let lo_bin = self.bin_of(lo) as usize;
        let hi_bin = self.bin_of(hi) as usize;
        let mask = span_mask(lo_bin, hi_bin);

        // Inner bins: strictly between the boundary bins...
        let mut inner = if hi_bin > lo_bin + 1 {
            span_mask(lo_bin + 1, hi_bin - 1)
        } else {
            0
        };
        // ...plus the low boundary bin when lo is exactly its lower border
        // (bins are closed below), or when the bin is open below and lo
        // cannot exclude anything (-inf).
        let lo_covers_bin = if lo_bin == 0 {
            lo.to_f64() == f64::NEG_INFINITY
        } else {
            self.borders[lo_bin - 1].total_cmp(&lo).is_eq()
        };
        // ...plus the high boundary bin when hi covers it entirely: only
        // possible for the last (open above) bin with hi = +inf, or for an
        // integer domain where hi + 1 == upper border. We keep the check
        // conservative and domain-agnostic: last bin + infinite bound.
        let hi_covers_bin =
            hi_bin == self.borders.len() && hi.to_f64() == f64::INFINITY;
        if lo_covers_bin
            && (lo_bin < hi_bin || hi_covers_bin) {
                inner |= 1u64 << lo_bin;
            }
            // lo_bin == hi_bin and hi does not cover the bin: the single
            // boundary bin is only partially covered, leave it out.
        if hi_covers_bin && (hi_bin > lo_bin || lo_covers_bin) {
            inner |= 1u64 << hi_bin;
        }
        (mask, inner)
    }
}

/// Mask with bits `lo..=hi` set.
#[inline]
fn span_mask(lo: usize, hi: usize) -> u64 {
    debug_assert!(lo <= hi && hi < 64);
    let width = hi - lo + 1;
    if width == 64 {
        !0
    } else {
        ((1u64 << width) - 1) << lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_0_10_20() -> BinMap<i64> {
        // bins: (-inf,10) [10,20) [20,+inf)
        BinMap::from_borders(vec![10, 20])
    }

    #[test]
    fn bin_of_boundaries() {
        let m = map_0_10_20();
        assert_eq!(m.num_bins(), 3);
        assert_eq!(m.bin_of(-5), 0);
        assert_eq!(m.bin_of(9), 0);
        assert_eq!(m.bin_of(10), 1); // closed below
        assert_eq!(m.bin_of(19), 1);
        assert_eq!(m.bin_of(20), 2);
        assert_eq!(m.bin_of(1000), 2);
        assert_eq!(m.bit_of(10), 0b010);
    }

    #[test]
    fn range_masks_cover_overlapping_bins() {
        let m = map_0_10_20();
        let (mask, _) = m.range_masks(5, 15);
        assert_eq!(mask, 0b011);
        let (mask, _) = m.range_masks(10, 25);
        assert_eq!(mask, 0b110);
        let (mask, _) = m.range_masks(21, 22);
        assert_eq!(mask, 0b100);
    }

    #[test]
    fn innermask_is_conservative() {
        let m = map_0_10_20();
        // [5,25] fully covers bin 1 ([10,20)) but only parts of bins 0,2.
        let (_, inner) = m.range_masks(5, 25);
        assert_eq!(inner, 0b010);
        // [10,25]: bin 1 fully covered because lo == its lower border.
        let (_, inner) = m.range_masks(10, 25);
        assert_eq!(inner, 0b010);
        // [11,25]: bin 1 only partially covered.
        let (_, inner) = m.range_masks(11, 25);
        assert_eq!(inner, 0b000);
        // A range inside one bin is never "all qualify".
        let (_, inner) = m.range_masks(12, 13);
        assert_eq!(inner, 0);
    }

    #[test]
    fn infinite_bounds_cover_open_bins() {
        let m = BinMap::from_borders(vec![10.0f64, 20.0]);
        let (mask, inner) = m.range_masks(f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(mask, 0b111);
        assert_eq!(inner, 0b111);
        let (_, inner) = m.range_masks(f64::NEG_INFINITY, 15.0);
        assert_eq!(inner, 0b001); // bin 0 fully covered, bin 1 partially
        let (_, inner) = m.range_masks(10.0, f64::INFINITY);
        assert_eq!(inner, 0b110);
    }

    #[test]
    fn single_bin_range_masks() {
        // Single-bin map (empty borders): everything is bin 0.
        let m = BinMap::<i32>::from_borders(vec![]);
        assert_eq!(m.num_bins(), 1);
        assert_eq!(m.bin_of(i32::MIN), 0);
        let (mask, inner) = m.range_masks(1, 5);
        assert_eq!(mask, 0b1);
        assert_eq!(inner, 0);
    }

    #[test]
    fn from_data_equidepth() {
        let data: Vec<i64> = (0..10_000).collect();
        let m = BinMap::from_data(&data);
        assert!(m.num_bins() > 32, "uniform data should use most bins");
        // Every border strictly increasing.
        assert!(m.borders().windows(2).all(|w| w[0] < w[1]));
        // Values distribute across bins roughly evenly.
        let mid = m.bin_of(5_000);
        assert!(mid > 20 && mid < 44, "mid bin {mid}");
    }

    #[test]
    fn from_data_skewed_dedups() {
        let mut data = vec![7i64; 10_000];
        data.extend(0..16i64);
        let m = BinMap::from_data(&data);
        assert!(m.num_bins() <= 3, "constant-ish data needs few bins");
    }

    #[test]
    fn from_data_empty_and_constant() {
        let m = BinMap::<f64>::from_data(&[]);
        assert_eq!(m.num_bins(), 1);
        let m = BinMap::from_data(&vec![3.5f64; 100]);
        assert_eq!(m.num_bins(), 1);
        assert_eq!(m.bin_of(3.5), 0);
    }

    #[test]
    fn span_mask_edges() {
        assert_eq!(span_mask(0, 0), 1);
        assert_eq!(span_mask(0, 63), !0);
        assert_eq!(span_mask(63, 63), 1 << 63);
        assert_eq!(span_mask(1, 3), 0b1110);
    }

    #[test]
    fn nan_goes_to_last_bin() {
        let m = BinMap::from_borders(vec![0.0f64]);
        assert_eq!(m.bin_of(f64::NAN), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_borders_rejected() {
        BinMap::from_borders(vec![5i32, 5]);
    }
}
