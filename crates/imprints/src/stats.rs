//! Storage-overhead and precision accounting for imprints.
//!
//! §3.2 of the paper: *"Imprints storage comes with a 5-12% storage
//! overhead."* Experiment E2 reproduces this number on AHN2-like columns;
//! experiment E7 uses [`candidate_stats`] to contrast the imprint candidate
//! rate against zonemaps on unclustered data.

use lidardb_storage::Native;

use crate::imprint::Imprints;

/// Size and compression accounting for one imprint index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImprintStats {
    /// Payload size of the indexed column in bytes.
    pub column_bytes: usize,
    /// Total index size in bytes (vectors + dictionary + borders).
    pub index_bytes: usize,
    /// Number of cachelines covered.
    pub num_lines: usize,
    /// Number of imprint vectors actually stored after compression.
    pub num_vectors: usize,
    /// Number of cacheline-dictionary entries.
    pub num_dict_entries: usize,
    /// Number of bins in use.
    pub num_bins: usize,
}

impl ImprintStats {
    /// Gather statistics for an index over `data`.
    pub fn of<T: Native>(imp: &Imprints<T>) -> Self {
        ImprintStats {
            column_bytes: imp.len() * T::PHYS.size(),
            index_bytes: imp.byte_size(),
            num_lines: imp.num_lines(),
            num_vectors: imp.num_vectors(),
            num_dict_entries: imp.num_dict_entries(),
            num_bins: imp.bins().num_bins(),
        }
    }

    /// Index size as a fraction of the column size (the paper's
    /// "storage overhead": 0.05–0.12 on real data).
    pub fn overhead(&self) -> f64 {
        if self.column_bytes == 0 {
            0.0
        } else {
            self.index_bytes as f64 / self.column_bytes as f64
        }
    }

    /// Compression ratio of the vector array: cachelines per stored vector.
    pub fn vector_compression(&self) -> f64 {
        if self.num_vectors == 0 {
            1.0
        } else {
            self.num_lines as f64 / self.num_vectors as f64
        }
    }
}

/// Precision of one probe: how tight the candidate superset is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeStats {
    /// Rows in the candidate list.
    pub candidate_rows: usize,
    /// Rows flagged all-qualify (no per-value check needed).
    pub sure_rows: usize,
    /// Rows that actually satisfy the predicate.
    pub matching_rows: usize,
    /// Total rows in the column.
    pub total_rows: usize,
}

impl ProbeStats {
    /// Fraction of the column that survived filtering.
    pub fn candidate_rate(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            self.candidate_rows as f64 / self.total_rows as f64
        }
    }

    /// True selectivity of the predicate.
    pub fn selectivity(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            self.matching_rows as f64 / self.total_rows as f64
        }
    }

    /// Candidate rows that do not match, relative to the column size — the
    /// false-positive burden the refinement step must absorb.
    pub fn false_positive_rate(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            (self.candidate_rows - self.matching_rows) as f64 / self.total_rows as f64
        }
    }
}

/// Probe `imp` for `[lo, hi]` and measure the filter precision against the
/// ground truth computed from `data`.
pub fn candidate_stats<T: Native>(imp: &Imprints<T>, data: &[T], lo: T, hi: T) -> ProbeStats {
    let cand = imp.probe(lo, hi);
    let matching = data.iter().filter(|&&v| v >= lo && v <= hi).count();
    ProbeStats {
        candidate_rows: cand.num_rows(),
        sure_rows: cand.num_sure_rows(),
        matching_rows: matching,
        total_rows: data.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_small_on_clustered_data() {
        let data: Vec<i64> = (0..100_000).collect();
        let imp = Imprints::build(&data);
        let s = ImprintStats::of(&imp);
        assert_eq!(s.column_bytes, 800_000);
        assert!(
            s.overhead() < 0.15,
            "overhead {:.3} should be in the paper's band",
            s.overhead()
        );
        assert!(s.vector_compression() > 1.0);
    }

    #[test]
    fn probe_stats_consistency() {
        let data: Vec<i64> = (0..10_000).map(|i| i % 97).collect();
        let imp = Imprints::build(&data);
        let s = candidate_stats(&imp, &data, 10, 20);
        assert!(s.candidate_rows >= s.matching_rows, "superset property");
        assert!(s.sure_rows <= s.candidate_rows);
        assert!(s.candidate_rate() >= s.selectivity());
        assert!((s.candidate_rate() - s.selectivity() - s.false_positive_rate()).abs() < 1e-12);
    }

    #[test]
    fn empty_column_stats() {
        let imp = Imprints::<f64>::build(&[]);
        let s = ImprintStats::of(&imp);
        assert_eq!(s.overhead(), 0.0);
        let p = candidate_stats(&imp, &[], 0.0, 1.0);
        assert_eq!(p.candidate_rate(), 0.0);
        assert_eq!(p.false_positive_rate(), 0.0);
    }

    #[test]
    fn sure_rows_all_match() {
        let data: Vec<i64> = (0..50_000).collect();
        let imp = Imprints::build(&data);
        let borders = imp.bins().borders().to_vec();
        let (lo, hi) = (borders[2], borders[40] - 1);
        let s = candidate_stats(&imp, &data, lo, hi);
        assert!(s.sure_rows > 0);
        assert!(s.sure_rows <= s.matching_rows);
    }
}
