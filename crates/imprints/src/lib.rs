//! # lidardb-imprints — the column imprints secondary index
//!
//! Implementation of **column imprints** [Sidirourgos & Kersten, SIGMOD
//! 2013], the lightweight cache-conscious secondary index that the paper
//! (*"GIS Navigation Boosted by Column Stores"*, VLDB 2015, §2.1.1/§3.2)
//! uses in place of a spatial R-tree for the coarse filtering step of
//! geospatial selections.
//!
//! ## The structure
//!
//! A column imprint is *"a collection of 64-bit vectors, each indexing data
//! points that fit into a single cache line. Each of the 64 bits is
//! associated with a range of values. A bit is set to 1 when the cache line
//! indexed by the vector contains values in the corresponding range. The 64
//! ranges are global to an imprint and are decided based on the distribution
//! of the values of the indexed column."*
//!
//! Concretely:
//!
//! * [`BinMap`] — at most 64 value ranges ("bins") whose borders come from an
//!   equi-depth histogram over a small sample of the column;
//! * [`Imprints`] — one 64-bit vector per 64-byte cacheline of column data
//!   (8 × `f64`, 16 × `i32`, … values per vector), compressed with the
//!   SIGMOD'13 *cacheline dictionary*: runs of identical vectors collapse to
//!   a single vector plus a repetition counter, exploiting the local
//!   clustering that acquisition-ordered data (LIDAR flight lines!) exhibits;
//! * [`CandidateList`] — the result of probing the index with a range
//!   predicate: maximal row ranges that *may* contain qualifying values,
//!   each flagged when the imprint proves that *every* value in it
//!   qualifies, letting the executor skip per-value checking entirely;
//! * [`ColumnImprints`] — a type-erased wrapper that builds over any
//!   [`lidardb_storage::Column`] and answers `f64` range probes with
//!   correct inward rounding on integer columns;
//! * [`ImprintStats`] — storage-overhead and precision accounting used by
//!   experiments E2 and E7 (the paper reports 5–12 % overhead).
//!
//! ## Guarantees
//!
//! * **No false negatives**: every row whose value satisfies the probed
//!   range is covered by the returned candidate list (property-tested).
//! * **Sound all-qualify flags**: a range flagged `all_qualify` contains
//!   only qualifying values (property-tested).

pub mod bins;
pub mod candidates;
pub mod erased;
pub mod imprint;
pub mod stats;

pub use bins::BinMap;
pub use candidates::{CandidateList, CandidateRange};
pub use erased::{probe_count, probe_rows, reset_probe_count, ColumnImprints};
pub use imprint::Imprints;
pub use stats::ImprintStats;

/// Maximum number of bins of an imprint (one per bit of the vector).
pub const MAX_BINS: usize = 64;

/// Default sample size used to derive the bin borders, as in SIGMOD'13.
pub const SAMPLE_SIZE: usize = 2048;
