//! Type-erased imprints over storage columns.
//!
//! The query layer works with dynamically typed [`Column`]s; this wrapper
//! dispatches to the monomorphised [`Imprints`] and translates `f64` query
//! bounds onto the column's native domain with inward rounding, so an
//! `x BETWEEN 2.3 AND 7.9` probe on an `i32` column correctly becomes
//! `[3, 7]`.

use std::sync::atomic::{AtomicU64, Ordering};

use lidardb_storage::{Column, Native, StorageError};

use crate::candidates::CandidateList;
use crate::imprint::Imprints;
use crate::stats::ImprintStats;

/// Process-wide count of [`ColumnImprints::probe_f64`] calls. The imprints
/// crate sits below the engine's metrics registry in the dependency graph,
/// so the counter lives here and the registry pulls it into its snapshot.
static PROBES: AtomicU64 = AtomicU64::new(0);

/// Process-wide total of candidate rows produced by those probes (the
/// pre-intersection selectivity of the index).
static PROBE_ROWS: AtomicU64 = AtomicU64::new(0);

/// Total probes answered by erased imprint indexes since process start
/// (or the last [`reset_probe_count`]).
pub fn probe_count() -> u64 {
    PROBES.load(Ordering::Relaxed)
}

/// Total candidate rows produced by [`ColumnImprints::probe_f64`] calls
/// since process start (or the last [`reset_probe_count`]).
pub fn probe_rows() -> u64 {
    PROBE_ROWS.load(Ordering::Relaxed)
}

/// Zero the process-wide probe counters (benchmarks/tests).
pub fn reset_probe_count() {
    PROBES.store(0, Ordering::Relaxed);
    PROBE_ROWS.store(0, Ordering::Relaxed);
}

/// An imprints index over a type-erased column.
#[derive(Debug, Clone)]
pub enum ColumnImprints {
    /// Index over an `i8` column.
    I8(Imprints<i8>),
    /// Index over an `i16` column.
    I16(Imprints<i16>),
    /// Index over an `i32` column.
    I32(Imprints<i32>),
    /// Index over an `i64` column.
    I64(Imprints<i64>),
    /// Index over a `u8` column.
    U8(Imprints<u8>),
    /// Index over a `u16` column.
    U16(Imprints<u16>),
    /// Index over a `u32` column.
    U32(Imprints<u32>),
    /// Index over a `u64` column.
    U64(Imprints<u64>),
    /// Index over an `f32` column.
    F32(Imprints<f32>),
    /// Index over an `f64` column.
    F64(Imprints<f64>),
}

macro_rules! dispatch {
    ($self:expr, $imp:ident => $body:expr) => {
        match $self {
            ColumnImprints::I8($imp) => $body,
            ColumnImprints::I16($imp) => $body,
            ColumnImprints::I32($imp) => $body,
            ColumnImprints::I64($imp) => $body,
            ColumnImprints::U8($imp) => $body,
            ColumnImprints::U16($imp) => $body,
            ColumnImprints::U32($imp) => $body,
            ColumnImprints::U64($imp) => $body,
            ColumnImprints::F32($imp) => $body,
            ColumnImprints::F64($imp) => $body,
        }
    };
}

/// Translate an `f64` range onto `T`'s domain with inward rounding.
/// Returns `None` when the translated range is empty.
fn native_range<T: Native>(lo: f64, hi: f64) -> Option<(T, T)> {
    if lo.is_nan() || hi.is_nan() || lo > hi {
        return None;
    }
    let (lo, hi) = if T::IS_INT {
        let lo = lo.ceil();
        let hi = hi.floor();
        if lo > hi || lo > T::MAX_F || hi < T::MIN_F {
            return None;
        }
        (lo, hi)
    } else {
        (lo, hi)
    };
    Some((T::from_f64(lo.max(T::MIN_F)), T::from_f64(hi.min(T::MAX_F))))
}

impl ColumnImprints {
    /// Build an imprints index over `column`.
    pub fn build(column: &Column) -> Result<Self, StorageError> {
        Ok(match column {
            Column::I8(_) => ColumnImprints::I8(Imprints::build(column.as_slice()?)),
            Column::I16(_) => ColumnImprints::I16(Imprints::build(column.as_slice()?)),
            Column::I32(_) => ColumnImprints::I32(Imprints::build(column.as_slice()?)),
            Column::I64(_) => ColumnImprints::I64(Imprints::build(column.as_slice()?)),
            Column::U8(_) => ColumnImprints::U8(Imprints::build(column.as_slice()?)),
            Column::U16(_) => ColumnImprints::U16(Imprints::build(column.as_slice()?)),
            Column::U32(_) => ColumnImprints::U32(Imprints::build(column.as_slice()?)),
            Column::U64(_) => ColumnImprints::U64(Imprints::build(column.as_slice()?)),
            Column::F32(_) => ColumnImprints::F32(Imprints::build(column.as_slice()?)),
            Column::F64(_) => ColumnImprints::F64(Imprints::build(column.as_slice()?)),
        })
    }

    /// Probe with an inclusive `f64` range, rounding inward on integer
    /// columns.
    pub fn probe_f64(&self, lo: f64, hi: f64) -> CandidateList {
        PROBES.fetch_add(1, Ordering::Relaxed);
        macro_rules! probe {
            ($imp:expr) => {
                match native_range(lo, hi) {
                    Some((l, h)) => $imp.probe(l, h),
                    None => CandidateList::empty(),
                }
            };
        }
        let cand = match self {
            ColumnImprints::I8(i) => probe!(i),
            ColumnImprints::I16(i) => probe!(i),
            ColumnImprints::I32(i) => probe!(i),
            ColumnImprints::I64(i) => probe!(i),
            ColumnImprints::U8(i) => probe!(i),
            ColumnImprints::U16(i) => probe!(i),
            ColumnImprints::U32(i) => probe!(i),
            ColumnImprints::U64(i) => probe!(i),
            ColumnImprints::F32(i) => probe!(i),
            ColumnImprints::F64(i) => probe!(i),
        };
        PROBE_ROWS.fetch_add(cand.num_rows() as u64, Ordering::Relaxed);
        cand
    }

    /// Extend the index with the rows of `column` beyond the already
    /// indexed prefix (incremental refresh after a table append — the
    /// column is the *full* post-append column, and rows `len()..` are
    /// new). Errs on a column whose physical type differs from the one
    /// the index was built over.
    ///
    /// The bin layout is fixed at build time; its edge bins are
    /// open-ended, so appended values outside the sampled domain still
    /// map to a bin and probes stay sound (supersets, no false
    /// negatives) — only selectivity can degrade.
    pub fn append_column(&mut self, column: &Column) -> Result<(), StorageError> {
        macro_rules! extend {
            ($imp:expr) => {{
                let s = column.as_slice()?;
                let from = $imp.len().min(s.len());
                $imp.append(&s[from..]);
            }};
        }
        match self {
            ColumnImprints::I8(i) => extend!(i),
            ColumnImprints::I16(i) => extend!(i),
            ColumnImprints::I32(i) => extend!(i),
            ColumnImprints::I64(i) => extend!(i),
            ColumnImprints::U8(i) => extend!(i),
            ColumnImprints::U16(i) => extend!(i),
            ColumnImprints::U32(i) => extend!(i),
            ColumnImprints::U64(i) => extend!(i),
            ColumnImprints::F32(i) => extend!(i),
            ColumnImprints::F64(i) => extend!(i),
        }
        Ok(())
    }

    /// Number of indexed values.
    pub fn len(&self) -> usize {
        dispatch!(self, i => i.len())
    }

    /// Whether the index covers no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index size in bytes.
    pub fn byte_size(&self) -> usize {
        dispatch!(self, i => i.byte_size())
    }

    /// Size/compression statistics.
    pub fn stats(&self) -> ImprintStats {
        dispatch!(self, i => ImprintStats::of(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidardb_storage::PhysicalType;

    #[test]
    fn build_over_every_column_type() {
        let cols = [
            Column::from_iter(0..100i8),
            Column::from_iter(0..100i16),
            Column::from_iter(0..100i32),
            Column::from_iter(0..100i64),
            Column::from_iter(0..100u8),
            Column::from_iter(0..100u16),
            Column::from_iter(0..100u32),
            Column::from_iter(0..100u64),
            Column::from_iter((0..100).map(|v| v as f32)),
            Column::from_iter((0..100).map(|v| v as f64)),
        ];
        for col in &cols {
            let imp = ColumnImprints::build(col).unwrap();
            assert_eq!(imp.len(), 100);
            let cand = imp.probe_f64(10.0, 20.0);
            // Soundness: rows 10..=20 must all be covered.
            for row in 10..=20 {
                assert!(cand.contains(row), "{:?} row {row}", col.ptype());
            }
        }
    }

    #[test]
    fn integer_inward_rounding() {
        assert_eq!(native_range::<i32>(2.3, 7.9), Some((3, 7)));
        assert_eq!(native_range::<i32>(2.3, 2.9), None);
        assert_eq!(native_range::<i32>(3.0, 3.0), Some((3, 3)));
        assert_eq!(native_range::<u8>(-10.0, 5.5), Some((0, 5)));
        assert_eq!(native_range::<u8>(300.0, 400.0), None);
        assert_eq!(native_range::<u8>(-5.0, -1.0), None);
        assert_eq!(native_range::<f64>(2.3, 7.9), Some((2.3, 7.9)));
        assert_eq!(native_range::<f64>(5.0, 4.0), None);
        assert_eq!(native_range::<f64>(f64::NAN, 4.0), None);
    }

    #[test]
    fn fractional_only_range_on_int_column_is_empty() {
        let col: Column = (0..1000i32).collect();
        let imp = ColumnImprints::build(&col).unwrap();
        assert!(imp.probe_f64(10.2, 10.8).is_empty());
        assert!(!imp.probe_f64(10.0, 10.0).is_empty());
    }

    #[test]
    fn append_column_refreshes_and_rejects_type_mismatch() {
        let mut col: Column = (0..100i32).collect();
        let mut imp = ColumnImprints::build(&col).unwrap();
        assert_eq!(imp.len(), 100);
        for v in 100..250i32 {
            col.push(lidardb_storage::Value::I64(v as i64));
        }
        imp.append_column(&col).unwrap();
        assert_eq!(imp.len(), 250);
        let cand = imp.probe_f64(150.0, 200.0);
        for row in 150..=200 {
            assert!(cand.contains(row), "appended row {row} must be covered");
        }
        // Probing the old domain still works.
        assert!(imp.probe_f64(10.0, 20.0).contains(15));
        // Wrong physical type is an error, not a silent corruption.
        let wrong: Column = (0..300i64).collect();
        assert!(imp.append_column(&wrong).is_err());
        assert_eq!(imp.len(), 250, "failed append leaves the index unchanged");
    }

    #[test]
    fn stats_accessible_through_erased_index() {
        let col: Column = (0..100_000i64).collect();
        let imp = ColumnImprints::build(&col).unwrap();
        let s = imp.stats();
        assert!(s.overhead() > 0.0 && s.overhead() < 0.2);
        assert_eq!(imp.byte_size(), s.index_bytes);
    }

    #[test]
    fn empty_column_builds() {
        let col = Column::new(PhysicalType::F64);
        let imp = ColumnImprints::build(&col).unwrap();
        assert!(imp.is_empty());
        assert!(imp.probe_f64(0.0, 1.0).is_empty());
    }
}
