//! Property-based tests of the imprints invariants.
//!
//! The two guarantees the query engine relies on (see crate docs):
//! 1. no false negatives — every matching row is in the candidate list;
//! 2. sound all-qualify flags — a `sure` run holds only matching rows.

use lidardb_imprints::{BinMap, CandidateList, ColumnImprints, Imprints};
use lidardb_storage::Column;
use proptest::prelude::*;

fn check_sound_i64(data: &[i64], lo: i64, hi: i64) {
    let imp = Imprints::build(data);
    let cand = imp.probe(lo, hi);
    for (row, &v) in data.iter().enumerate() {
        if v >= lo && v <= hi {
            assert!(cand.contains(row), "false negative at row {row} (v={v})");
        }
    }
    for r in cand.ranges() {
        if r.all_qualify {
            for (off, &v) in data[r.start..r.end].iter().enumerate() {
                assert!(v >= lo && v <= hi, "unsound sure flag at row {} (v={v})", r.start + off);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_false_negatives_random_i64(
        data in prop::collection::vec(-1000i64..1000, 0..600),
        a in -1100i64..1100,
        b in -1100i64..1100,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        check_sound_i64(&data, lo, hi);
    }

    #[test]
    fn no_false_negatives_clustered_i64(
        start in -1000i64..1000,
        step in 0i64..4,
        len in 0usize..600,
        a in -1100i64..3000,
        b in -1100i64..3000,
    ) {
        let data: Vec<i64> = (0..len as i64).map(|i| start + i * step / 3).collect();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        check_sound_i64(&data, lo, hi);
    }

    #[test]
    fn no_false_negatives_f64(
        data in prop::collection::vec(-1e6f64..1e6, 0..500),
        a in -1e6f64..1e6,
        b in -1e6f64..1e6,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let imp = Imprints::build(&data);
        let cand = imp.probe(lo, hi);
        for (row, &v) in data.iter().enumerate() {
            if v >= lo && v <= hi {
                prop_assert!(cand.contains(row));
            }
        }
        for r in cand.ranges() {
            if r.all_qualify {
                for &v in &data[r.start..r.end] {
                    prop_assert!(v >= lo && v <= hi);
                }
            }
        }
    }

    #[test]
    fn erased_probe_matches_typed_probe(
        data in prop::collection::vec(0u16..500, 1..400),
        a in 0.0f64..600.0,
        b in 0.0f64..600.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let col: Column = data.iter().copied().collect();
        let erased = ColumnImprints::build(&col).unwrap();
        let cand = erased.probe_f64(lo, hi);
        for (row, &v) in data.iter().enumerate() {
            if (v as f64) >= lo && (v as f64) <= hi {
                prop_assert!(cand.contains(row), "row {row} v={v} range [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn intersection_soundness(
        xs in prop::collection::vec(0i64..100, 64..256),
        ys in prop::collection::vec(0i64..100, 64..256),
        xl in 0i64..100, xh in 0i64..100,
        yl in 0i64..100, yh in 0i64..100,
    ) {
        // Model the spatial AND: rows matching BOTH predicates must survive
        // the intersection of the two candidate lists.
        let n = xs.len().min(ys.len());
        let xs = &xs[..n];
        let ys = &ys[..n];
        let (xl, xh) = if xl <= xh { (xl, xh) } else { (xh, xl) };
        let (yl, yh) = if yl <= yh { (yl, yh) } else { (yh, yl) };
        let ix = Imprints::build(xs);
        let iy = Imprints::build(ys);
        let cand: CandidateList = ix.probe(xl, xh).intersect(&iy.probe(yl, yh));
        for row in 0..n {
            let m = xs[row] >= xl && xs[row] <= xh && ys[row] >= yl && ys[row] <= yh;
            if m {
                prop_assert!(cand.contains(row), "row {row} escaped the AND");
            }
        }
        for r in cand.ranges() {
            if r.all_qualify {
                for row in r.start..r.end {
                    prop_assert!(xs[row] >= xl && xs[row] <= xh);
                    prop_assert!(ys[row] >= yl && ys[row] <= yh);
                }
            }
        }
    }

    #[test]
    fn bin_of_respects_borders(
        mut borders in prop::collection::btree_set(-1000i64..1000, 1..63),
        v in -1100i64..1100,
    ) {
        let borders: Vec<i64> = std::mem::take(&mut borders).into_iter().collect();
        let m = BinMap::from_borders(borders.clone());
        let bin = m.bin_of(v) as usize;
        // bin counts the borders <= v.
        let expect = borders.iter().filter(|&&b| b <= v).count();
        prop_assert_eq!(bin, expect);
    }

    #[test]
    fn compression_roundtrip_vector_count(
        data in prop::collection::vec(0i64..50, 0..2000),
    ) {
        let imp = Imprints::build(&data);
        let expanded = imp.expand_vectors();
        prop_assert_eq!(expanded.len(), imp.num_lines());
        prop_assert!(imp.num_vectors() <= imp.num_lines());
    }
}
