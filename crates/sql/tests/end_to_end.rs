//! End-to-end SQL tests over a real point cloud and vector tables.

use std::sync::Arc;

use lidardb_core::PointCloud;
use lidardb_geom::{Geometry, LineString, Point, Polygon};
use lidardb_las::PointRecord;
use lidardb_sql::catalog::VColumn;
use lidardb_sql::{query, Catalog, SqlValue, VectorTable};

/// 100x100 integer grid; classification 6 for x > 50, else 2; z = x/10.
fn setup() -> Catalog {
    let mut pc = PointCloud::new();
    let recs: Vec<PointRecord> = (0..100)
        .flat_map(|y| {
            (0..100).map(move |x| PointRecord {
                x: x as f64,
                y: y as f64,
                z: x as f64 / 10.0,
                classification: if x > 50 { 6 } else { 2 },
                intensity: 100,
                ..Default::default()
            })
        })
        .collect();
    pc.append_records(&recs).unwrap();

    let roads = VectorTable::new()
        .with_column("id", VColumn::Int(vec![1, 2]))
        .with_column(
            "class",
            VColumn::Str(vec!["motorway".into(), "residential".into()]),
        )
        .with_column(
            "geom",
            VColumn::Geom(vec![
                Geometry::LineString(
                    LineString::new(vec![Point::new(0.0, 50.0), Point::new(99.0, 50.0)]).unwrap(),
                ),
                Geometry::LineString(
                    LineString::new(vec![Point::new(20.0, 0.0), Point::new(20.0, 99.0)]).unwrap(),
                ),
            ]),
        );

    let zones = VectorTable::new()
        .with_column("id", VColumn::Int(vec![10]))
        .with_column("code", VColumn::Int(vec![12210]))
        .with_column(
            "geom",
            VColumn::Geom(vec![Geometry::Polygon(
                Polygon::from_exterior(vec![
                    Point::new(0.0, 45.0),
                    Point::new(99.0, 45.0),
                    Point::new(99.0, 55.0),
                    Point::new(0.0, 55.0),
                ])
                .unwrap(),
            )]),
        );

    let mut c = Catalog::new();
    c.register_pointcloud("points", Arc::new(pc));
    c.register_vector("roads", roads);
    c.register_vector("ua", zones);
    c
}

#[test]
fn count_points_in_region() {
    let c = setup();
    let rs = query(
        &c,
        "SELECT COUNT(*) FROM points WHERE \
         ST_Contains(ST_MakeEnvelope(10, 10, 20, 20), ST_Point(x, y))",
    )
    .unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(11 * 11));
    // The trace shows the two-step engine ran.
    assert!(rs
        .trace
        .iter()
        .any(|t| t.operator.contains("imprint filter")));
}

#[test]
fn catalog_parallelism_yields_identical_results() {
    let sqls = [
        "SELECT COUNT(*) FROM points WHERE \
         ST_Contains(ST_MakeEnvelope(10, 10, 20, 20), ST_Point(x, y))",
        "SELECT x, y, z FROM points WHERE \
         ST_Contains(ST_MakeEnvelope(40, 0, 60, 99), ST_Point(x, y)) \
         AND classification = 6 ORDER BY y, x LIMIT 50",
        "SELECT p.x, p.y, r.class FROM points p, roads r WHERE \
         ST_DWithin(ST_Point(p.x, p.y), r.geom, 1.5) \
         AND r.class = 'motorway' ORDER BY p.x, p.y LIMIT 40",
    ];
    let mut serial = setup();
    serial.set_parallelism(lidardb_core::Parallelism::Serial);
    let mut parallel = setup();
    parallel.set_parallelism(lidardb_core::Parallelism::Threads(2));
    assert!(matches!(
        parallel.parallelism(),
        lidardb_core::Parallelism::Threads(2)
    ));
    for sql in sqls {
        let a = query(&serial, sql).unwrap();
        let b = query(&parallel, sql).unwrap();
        assert_eq!(a.columns, b.columns, "{sql}");
        assert_eq!(a.rows, b.rows, "{sql}");
    }
}

#[test]
fn thematic_and_spatial_combined() {
    let c = setup();
    let rs = query(
        &c,
        "SELECT COUNT(*) FROM points WHERE \
         ST_Contains(ST_MakeEnvelope(40, 0, 60, 99), ST_Point(x, y)) \
         AND classification = 6",
    )
    .unwrap();
    // x in 51..=60 -> 10 columns x 100 rows.
    assert_eq!(rs.rows[0][0], SqlValue::Int(1000));
}

#[test]
fn aggregates_and_group_by() {
    let c = setup();
    let rs = query(
        &c,
        "SELECT classification, COUNT(*) AS n, AVG(z) AS mean_z FROM points \
         GROUP BY classification ORDER BY n DESC",
    )
    .unwrap();
    assert_eq!(rs.columns, vec!["classification", "n", "mean_z"]);
    assert_eq!(rs.rows.len(), 2);
    // Class 2 (x 0..=50): 51 cols -> majority group first.
    assert_eq!(rs.rows[0][0], SqlValue::Int(2));
    assert_eq!(rs.rows[0][1], SqlValue::Int(5100));
    assert_eq!(rs.rows[1][1], SqlValue::Int(4900));
    // AVG z of class 2 = avg(x in 0..=50)/10 = 2.5.
    assert_eq!(rs.rows[0][2], SqlValue::Float(2.5));
}

#[test]
fn select_star_projection() {
    let c = setup();
    let rs = query(
        &c,
        "SELECT * FROM points WHERE \
         ST_Contains(ST_MakeEnvelope(0, 0, 1, 0), ST_Point(x, y)) LIMIT 5",
    )
    .unwrap();
    assert_eq!(rs.columns.len(), 26);
    assert_eq!(rs.rows.len(), 2); // (0,0) and (1,0)
}

#[test]
fn roads_intersecting_region() {
    let c = setup();
    // Scenario 1: "select all roads that intersect a given region".
    let rs = query(
        &c,
        "SELECT id, class FROM roads WHERE \
         ST_Intersects(geom, ST_MakeEnvelope(0, 40, 99, 60))",
    )
    .unwrap();
    assert_eq!(rs.rows.len(), 2, "both roads cross the band");
    let rs = query(
        &c,
        "SELECT id FROM roads WHERE \
         ST_Intersects(geom, ST_MakeEnvelope(15, 60, 25, 70))",
    )
    .unwrap();
    assert_eq!(rs.rows.len(), 1, "only the vertical road");
    assert_eq!(rs.rows[0][0], SqlValue::Int(2));
}

#[test]
fn scenario2_points_near_fast_transit_road() {
    let c = setup();
    // "select all LIDAR points near a fast transit road".
    let rs = query(
        &c,
        "SELECT COUNT(*) FROM points p, roads r WHERE \
         ST_DWithin(ST_Point(p.x, p.y), r.geom, 2) AND r.class = 'motorway'",
    )
    .unwrap();
    // y in 48..=52 -> 5 rows x 100 cols.
    assert_eq!(rs.rows[0][0], SqlValue::Int(500));
    assert!(rs.trace.iter().any(|t| t.operator.contains("spatial join")));
}

#[test]
fn scenario2_average_elevation_near_road() {
    let c = setup();
    // "compute the average elevation of the LIDAR points near ...".
    let rs = query(
        &c,
        "SELECT AVG(p.z) AS elev FROM points p, roads r WHERE \
         ST_DWithin(ST_Point(p.x, p.y), r.geom, 2) AND r.class = 'motorway'",
    )
    .unwrap();
    // All x columns are included, avg z = avg(0..=99)/10 = 4.95.
    match &rs.rows[0][0] {
        SqlValue::Float(v) => assert!((v - 4.95).abs() < 1e-9, "{v}"),
        other => panic!("wrong type {other:?}"),
    }
}

#[test]
fn join_with_zone_table_contains() {
    let c = setup();
    let rs = query(
        &c,
        "SELECT COUNT(*) FROM points p, ua z WHERE \
         ST_Contains(z.geom, ST_Point(p.x, p.y)) AND z.code = 12210",
    )
    .unwrap();
    // y in 45..=55 -> 11 rows x 100 cols.
    assert_eq!(rs.rows[0][0], SqlValue::Int(1100));
}

#[test]
fn explain_returns_plan() {
    let c = setup();
    let rs = query(
        &c,
        "EXPLAIN SELECT COUNT(*) FROM points WHERE \
         ST_Contains(ST_MakeEnvelope(0, 0, 10, 10), ST_Point(x, y))",
    )
    .unwrap();
    assert_eq!(rs.columns, vec!["plan"]);
    let text: String = rs
        .rows
        .iter()
        .map(|r| r[0].render())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("spatial pushdown"));
    assert!(rs.trace.is_empty(), "EXPLAIN does not execute");
}

#[test]
fn explain_analyze_executes_and_annotates() {
    let c = setup();
    let sql = "SELECT COUNT(*) FROM points WHERE \
               ST_Contains(ST_MakeEnvelope(10, 10, 20, 20), ST_Point(x, y))";
    let rs = query(&c, &format!("EXPLAIN ANALYZE {sql}")).unwrap();
    assert_eq!(rs.columns, vec!["plan"]);
    let text: String = rs
        .rows
        .iter()
        .map(|r| r[0].render())
        .collect::<Vec<_>>()
        .join("\n");
    // The planned tree is still there...
    assert!(text.contains("spatial pushdown"), "{text}");
    // ...followed by the executed operators with real cardinalities.
    assert!(text.contains("actual:"), "{text}");
    assert!(text.contains("imprint filter"), "{text}");
    assert!(text.contains("time="), "{text}");
    assert!(text.contains("total"), "{text}");
    // ANALYZE really executed: the trace is populated (plain EXPLAIN keeps
    // it empty) and the engine's counters match a direct run of the query.
    assert!(!rs.trace.is_empty(), "EXPLAIN ANALYZE executes");
    let direct = query(&c, sql).unwrap();
    assert_eq!(direct.rows[0][0], SqlValue::Int(11 * 11));
    let rows_of = |rs: &lidardb_sql::ResultSet, op: &str| {
        rs.trace
            .iter()
            .find(|t| t.operator.contains(op))
            .map(|t| t.rows)
            .unwrap_or_else(|| panic!("missing {op} in trace"))
    };
    for op in ["imprint filter", "exact bbox scan"] {
        assert_eq!(rows_of(&rs, op), rows_of(&direct, op), "{op}");
    }
    // The rendered per-operator rows are the trace's rows verbatim.
    for t in &rs.trace {
        assert!(
            text.contains(&format!("rows={:<10}", t.rows)),
            "trace rows {} not rendered: {text}",
            t.rows
        );
    }
}

#[test]
fn order_by_and_limit() {
    let c = setup();
    let rs = query(
        &c,
        "SELECT x, y FROM points WHERE \
         ST_Contains(ST_MakeEnvelope(0, 0, 3, 0), ST_Point(x, y)) \
         ORDER BY x DESC LIMIT 2",
    )
    .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0][0], SqlValue::Float(3.0));
    assert_eq!(rs.rows[1][0], SqlValue::Float(2.0));
    // Ordinal form.
    let rs = query(
        &c,
        "SELECT x FROM points WHERE \
         ST_Contains(ST_MakeEnvelope(0, 0, 3, 0), ST_Point(x, y)) ORDER BY 1 LIMIT 1",
    )
    .unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Float(0.0));
}

#[test]
fn between_and_arithmetic() {
    let c = setup();
    let rs = query(
        &c,
        "SELECT COUNT(*) FROM points WHERE x BETWEEN 10 AND 12 AND y = 0",
    )
    .unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(3));
    let rs = query(&c, "SELECT MAX(z) * 10 + 1 AS v FROM points").unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Float(100.0)); // max z = 9.9
}

#[test]
fn empty_results() {
    let c = setup();
    let rs = query(
        &c,
        "SELECT COUNT(*), AVG(z) FROM points WHERE x > 1000",
    )
    .unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(0));
    assert_eq!(rs.rows[0][1], SqlValue::Null);
    let rs = query(&c, "SELECT x FROM points WHERE x > 1000").unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn errors_are_reported() {
    let c = setup();
    assert!(query(&c, "SELECT nope FROM points LIMIT 1").is_err());
    assert!(query(&c, "SELECT * FROM missing_table").is_err());
    assert!(query(&c, "SELECT COUNT(*) FROM points p, roads r WHERE p.x = 1").is_err());
    assert!(query(&c, "SELECT x, COUNT(*) FROM points").is_err());
    assert!(query(&c, "SELECT ST_X(x) FROM points LIMIT 1").is_err());
}

#[test]
fn render_tables() {
    let c = setup();
    let rs = query(&c, "SELECT id, class FROM roads ORDER BY id").unwrap();
    let text = rs.render();
    assert!(text.contains("motorway"));
    assert!(text.contains("2 row(s)"));
    assert!(!rs.render_trace().is_empty());
}

#[test]
fn thematic_predicates_are_index_driven() {
    let c = setup();
    // Attribute-only query: the classification imprint should serve it.
    let rs = query(
        &c,
        "SELECT COUNT(*) FROM points WHERE classification = 6 AND z BETWEEN 6 AND 8",
    )
    .unwrap();
    // class 6 = x in 51..=99; z = x/10 in [6,8] -> x in 60..=80 -> 21 cols.
    assert_eq!(rs.rows[0][0], SqlValue::Int(21 * 100));
    let probe_trace = rs
        .trace
        .iter()
        .find(|t| t.operator.contains("imprint filter"))
        .expect("imprint filter must appear in the trace");
    assert!(
        probe_trace.operator.contains("attribute probes"),
        "trace: {}",
        probe_trace.operator
    );
    // EXPLAIN names the pushdowns.
    let rs = query(
        &c,
        "EXPLAIN SELECT COUNT(*) FROM points WHERE classification = 6 AND z BETWEEN 6 AND 8",
    )
    .unwrap();
    let text: String = rs
        .rows
        .iter()
        .map(|r| r[0].render())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("attribute pushdown: classification in [6, 6]"));
    assert!(text.contains("attribute pushdown: z in [6, 8]"));
}

#[test]
fn strict_bounds_stay_exact_under_pushdown() {
    let c = setup();
    // z > 5.0 must NOT include z == 5.0 even though the index range is
    // widened to [5, inf].
    let rs = query(&c, "SELECT COUNT(*) FROM points WHERE z > 5.0 AND y = 0").unwrap();
    // z = x/10 > 5 -> x in 51..=99 -> 49 points on row y=0.
    assert_eq!(rs.rows[0][0], SqlValue::Int(49));
    let rs = query(&c, "SELECT COUNT(*) FROM points WHERE z >= 5.0 AND y = 0").unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(50), "inclusive keeps x=50");
}

#[test]
fn distinct_and_having() {
    let c = setup();
    // DISTINCT: classification takes exactly two values.
    let rs = query(
        &c,
        "SELECT DISTINCT classification FROM points ORDER BY classification",
    )
    .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0][0], SqlValue::Int(2));
    assert_eq!(rs.rows[1][0], SqlValue::Int(6));
    // HAVING filters groups by an aggregate.
    let rs = query(
        &c,
        "SELECT classification, COUNT(*) AS n FROM points \
         GROUP BY classification HAVING COUNT(*) > 5000",
    )
    .unwrap();
    assert_eq!(rs.rows.len(), 1, "only class 2 has 5100 rows");
    assert_eq!(rs.rows[0][0], SqlValue::Int(2));
    // HAVING without GROUP BY applies to the single global group.
    let rs = query(&c, "SELECT COUNT(*) FROM points HAVING COUNT(*) > 1000000").unwrap();
    assert!(rs.rows.is_empty());
    let rs = query(&c, "SELECT COUNT(*) FROM points HAVING COUNT(*) > 100").unwrap();
    assert_eq!(rs.rows.len(), 1);
}

#[test]
fn having_applies_to_empty_global_group() {
    let c = setup();
    let rs = query(
        &c,
        "SELECT COUNT(*) FROM points WHERE x > 100000 HAVING COUNT(*) > 0",
    )
    .unwrap();
    assert!(rs.rows.is_empty(), "zero-count group filtered by HAVING");
    let rs = query(&c, "SELECT COUNT(*), AVG(z) FROM points WHERE x > 100000").unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], SqlValue::Int(0));
    assert_eq!(rs.rows[0][1], SqlValue::Null);
}

#[test]
fn st_buffer_envelope_numpoints() {
    let c = setup();
    // Buffer the motorway and count points inside the corridor — should
    // match the ST_DWithin count for the same distance (corridor is the
    // flat-cap buffer; the grid points near segment interiors agree).
    let rs = query(
        &c,
        "SELECT ST_NumPoints(ST_Buffer(ST_GeomFromText('LINESTRING (0 50, 99 50)'), 2)) AS n \
         FROM roads LIMIT 1",
    )
    .unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(4), "corridor of a 2-vertex line");
    let rs = query(
        &c,
        "SELECT ST_AsText(ST_Envelope(ST_GeomFromText('LINESTRING (1 2, 5 9)'))) AS e \
         FROM roads LIMIT 1",
    )
    .unwrap();
    assert!(rs.rows[0][0].render().contains("POLYGON"));
}

/// The process-wide slow-query log is shared state: tests that clear and
/// inspect it must not interleave.
static SLOW_LOG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn set_trace_session_records_spans_and_shows_slow_queries() {
    let _serial = SLOW_LOG_LOCK.lock().unwrap();
    let c = setup();

    // Parser shapes first.
    assert!(query(&c, "SET TRACE = maybe").is_err());
    assert!(query(&c, "SHOW SLOW").is_err());

    // Untraced session: queries get no trace id, the session flag is off.
    assert!(!c.trace_enabled());
    let rs = query(&c, "SET TRACE = ON").unwrap();
    assert_eq!(rs.columns, vec!["trace"]);
    assert_eq!(rs.rows[0][0], SqlValue::Str("ON".into()));
    assert!(c.trace_enabled());

    // A traced SELECT lands in the slow-query log with a span tree that
    // includes the query root and its bbox scan.
    lidardb_core::SlowQueryLog::global().clear();
    let rs = query(
        &c,
        "SELECT COUNT(*) FROM points WHERE \
         ST_Contains(ST_MakeEnvelope(10, 10, 30, 30), ST_Point(x, y))",
    )
    .unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(21 * 21));
    let slow = lidardb_core::SlowQueryLog::global().worst();
    assert!(!slow.is_empty(), "traced query entered the slow log");
    let q = &slow[0];
    assert!(q.profile.trace_id.is_some());
    let names: Vec<&str> = q.spans.iter().map(|s| s.kind.name()).collect();
    assert!(names.contains(&"query"), "{names:?}");
    assert!(names.contains(&"bbox_scan"), "{names:?}");

    let rs = query(&c, "SHOW SLOW QUERIES").unwrap();
    assert_eq!(
        rs.columns,
        vec!["trace_id", "seconds", "result_rows", "cancelled", "spans", "tree"]
    );
    assert!(!rs.rows.is_empty());
    assert_eq!(rs.rows[0][3], SqlValue::Int(0), "not cancelled");
    assert!(rs.rows[0][5].render().contains("query"), "span tree rendered");

    // OFF stops new queries from being traced.
    query(&c, "SET TRACE = OFF").unwrap();
    assert!(!c.trace_enabled());
    lidardb_core::SlowQueryLog::global().clear();
    query(&c, "SELECT COUNT(*) FROM points WHERE x BETWEEN 0 AND 5").unwrap();
    assert!(
        lidardb_core::SlowQueryLog::global().worst().is_empty(),
        "untraced queries stay out of the slow log"
    );

    // Clones of the catalog share the session flag.
    let clone = c.clone();
    clone.set_trace(true);
    assert!(c.trace_enabled());
    c.set_trace(false);
}

#[test]
fn session_governance_statements() {
    let c = setup();

    // Parser shapes.
    assert!(query(&c, "SET STATEMENT_TIMEOUT = banana").is_err());
    assert!(query(&c, "SET MEM_BUDGET = -3").is_err());
    assert!(query(&c, "KILL").is_err());
    assert!(query(&c, "SET LIFE = 42").is_err());

    // SET STATEMENT_TIMEOUT: acknowledged, visible on the session, and 0
    // clears it.
    let rs = query(&c, "SET STATEMENT_TIMEOUT = 250").unwrap();
    assert_eq!(rs.columns, vec!["statement_timeout_ms"]);
    assert_eq!(rs.rows[0][0], SqlValue::Int(250));
    assert_eq!(
        c.statement_timeout(),
        Some(std::time::Duration::from_millis(250))
    );
    // A generous timeout leaves a small query unaffected.
    let rs = query(&c, "SELECT COUNT(*) FROM points WHERE x BETWEEN 0 AND 5").unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(600));
    query(&c, "SET STATEMENT_TIMEOUT = 0").unwrap();
    assert_eq!(c.statement_timeout(), None);

    // SET MEM_BUDGET: a 32-byte budget cannot materialise thousands of
    // rows — the scan is cancelled with a typed, rendered error.
    query(&c, "SET MEM_BUDGET = 32").unwrap();
    assert_eq!(c.mem_budget(), Some(32));
    let err = query(&c, "SELECT COUNT(*) FROM points WHERE x >= 0").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("memory budget"), "{msg}");
    query(&c, "SET MEM_BUDGET = 0").unwrap();
    let rs = query(&c, "SELECT COUNT(*) FROM points WHERE x >= 0").unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(10_000));

    // Session knobs are shared across catalog clones, like SET TRACE.
    let clone = c.clone();
    clone.set_statement_timeout_ms(77);
    assert_eq!(
        c.statement_timeout(),
        Some(std::time::Duration::from_millis(77))
    );
    c.set_statement_timeout_ms(0);

    // KILL on an unknown id is a polite no-op.
    let rs = query(&c, "KILL 999999999").unwrap();
    assert_eq!(rs.columns, vec!["killed"]);
    assert_eq!(rs.rows[0][0], SqlValue::Str("no such query".into()));

    // SHOW QUERIES lists in-flight queries; idle sessions see none of
    // their own (the statement itself is not a point-cloud query).
    let rs = query(&c, "SHOW QUERIES").unwrap();
    assert_eq!(
        rs.columns,
        vec!["query_id", "elapsed_seconds", "detail", "cancelled"]
    );
}

#[test]
fn cancelled_queries_render_in_show_slow_queries() {
    let _serial = SLOW_LOG_LOCK.lock().unwrap();
    let c = setup();
    query(&c, "SET TRACE = ON").unwrap();
    lidardb_core::SlowQueryLog::global().clear();
    // A 1-byte budget cancels the scan after the governance checkpoint.
    query(&c, "SET MEM_BUDGET = 1").unwrap();
    let err = query(&c, "SELECT COUNT(*) FROM points WHERE x >= 0").unwrap_err();
    assert!(err.to_string().contains("cancelled"), "{err}");
    let rs = query(&c, "SHOW SLOW QUERIES").unwrap();
    let cancelled_rows: Vec<_> = rs
        .rows
        .iter()
        .filter(|r| r[3] == SqlValue::Int(1))
        .collect();
    assert!(
        !cancelled_rows.is_empty(),
        "cancelled query appears in SHOW SLOW QUERIES: {rs:?}"
    );
    assert!(
        cancelled_rows[0][5].render().contains("[cancelled]"),
        "tree renders the cancelled marker: {}",
        cancelled_rows[0][5].render()
    );
    query(&c, "SET MEM_BUDGET = 0").unwrap();
    query(&c, "SET TRACE = OFF").unwrap();
    lidardb_core::SlowQueryLog::global().clear();
}

// ---------------------------------------------------- streaming ingestion

/// A streaming catalog: table `pts` is an ingest-enabled cloud with a WAL
/// beside `dir`, registered via `register_stream`.
fn streaming_catalog(
    name: &str,
    durability: lidardb_core::Durability,
) -> (Catalog, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("lidardb_sql_stream_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(lidardb_core::wal::wal_path_for(&dir));
    let pc = PointCloud::open_ingest(&dir, durability).unwrap();
    let mut c = Catalog::new();
    c.register_stream("pts", Arc::new(std::sync::RwLock::new(pc)));
    (c, dir)
}

fn cleanup_stream(dir: &std::path::Path) {
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_file(lidardb_core::wal::wal_path_for(dir));
}

#[test]
fn insert_is_wal_logged_and_queryable() {
    let (c, dir) = streaming_catalog("insert", lidardb_core::Durability::Always);
    let rs = query(
        &c,
        "INSERT INTO pts (x, y, z, classification) \
         VALUES (1, 2, 10, 6), (3, 4, 20, 2), (5, 6, 30, 6)",
    )
    .unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(3), "inserted count");
    assert_eq!(rs.rows[0][1], SqlValue::Int(1), "Always fsyncs: durable ack");

    let rs = query(&c, "SELECT COUNT(*) FROM pts WHERE classification = 6").unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(2), "inserted rows are queryable");

    // The batch survives a crash: reopen the directory cold.
    drop(c);
    let pc = PointCloud::open_ingest(&dir, lidardb_core::Durability::Always).unwrap();
    assert_eq!(pc.num_points(), 3, "WAL replay restores the insert");
    assert_eq!(pc.record(2).unwrap().z, 30.0);
    cleanup_stream(&dir);
}

#[test]
fn insert_token_replay_is_deduped() {
    let (c, dir) = streaming_catalog("ins_token", lidardb_core::Durability::Always);
    let stmt = "INSERT INTO pts (x, y) VALUES (1, 2), (3, 4) TOKEN 424242";
    let rs = query(&c, stmt).unwrap();
    assert_eq!(rs.columns, vec!["inserted", "durable", "deduped"]);
    assert_eq!(rs.rows[0][0], SqlValue::Int(2), "first send inserts");
    assert_eq!(rs.rows[0][2], SqlValue::Int(0), "not a dedup");
    // The retry (same token — a client that lost the ack): acknowledged,
    // applied zero rows.
    let rs = query(&c, stmt).unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(0), "replay inserts nothing");
    assert_eq!(rs.rows[0][1], SqlValue::Int(1), "original append is durable");
    assert_eq!(rs.rows[0][2], SqlValue::Int(1), "flagged as deduped");
    let rs = query(&c, "SELECT COUNT(*) FROM pts").unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(2), "no double insert");
    // A different token inserts normally; token-less keeps the old shape.
    query(&c, "INSERT INTO pts (x, y) VALUES (5, 6) TOKEN 424243").unwrap();
    let rs = query(&c, "INSERT INTO pts (x, y) VALUES (7, 8)").unwrap();
    assert_eq!(rs.columns, vec!["inserted", "durable"]);
    let rs = query(&c, "SELECT COUNT(*) FROM pts").unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(4));
    cleanup_stream(&dir);
}

#[test]
fn group_commit_inserts_stay_invisible_until_flushed() {
    let (c, dir) = streaming_catalog(
        "groupvis",
        lidardb_core::Durability::GroupCommit {
            max_batches: 1_000,
            max_delay: std::time::Duration::from_secs(3_600),
        },
    );
    let rs = query(&c, "INSERT INTO pts (x, y, z) VALUES (1, 1, 5)").unwrap();
    assert_eq!(rs.rows[0][1], SqlValue::Int(0), "group commit: not yet durable");
    let rs = query(&c, "SELECT COUNT(*) FROM pts").unwrap();
    assert_eq!(
        rs.rows[0][0],
        SqlValue::Int(0),
        "snapshot isolation: unacked insert is invisible to readers"
    );
    // Flushing the WAL advances the snapshot.
    {
        let mut pc = c.write_stream("pts").unwrap();
        pc.flush_wal().unwrap();
    }
    let rs = query(&c, "SELECT COUNT(*) FROM pts").unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(1), "flushed insert is visible");
    cleanup_stream(&dir);
}

#[test]
fn show_recovery_reports_the_stream_state() {
    let (c, dir) = streaming_catalog("showrec", lidardb_core::Durability::Always);
    query(&c, "INSERT INTO pts (x, y) VALUES (1, 2), (3, 4)").unwrap();
    drop(c);
    // Reopen: recovery replays the WAL and SHOW RECOVERY narrates it.
    let pc = PointCloud::open_ingest(&dir, lidardb_core::Durability::Always).unwrap();
    let mut c = Catalog::new();
    c.register_stream("pts", Arc::new(std::sync::RwLock::new(pc)));
    let rs = query(&c, "SHOW RECOVERY").unwrap();
    assert_eq!(rs.columns, vec!["table", "stat", "value"]);
    let stat = |name: &str| -> SqlValue {
        rs.rows
            .iter()
            .find(|r| r[0] == SqlValue::Str("pts".into()) && r[1] == SqlValue::Str(name.into()))
            .unwrap_or_else(|| panic!("missing stat {name}: {rs:?}"))[2]
            .clone()
    };
    assert_eq!(stat("replayed_rows"), SqlValue::Int(2));
    assert_eq!(stat("total_rows"), SqlValue::Int(2));
    assert_eq!(stat("visible_rows"), SqlValue::Int(2));
    assert_eq!(stat("durable_rows"), SqlValue::Int(2));
    assert_eq!(stat("durability"), SqlValue::Str("always".into()));
    assert_eq!(stat("torn_tail"), SqlValue::Int(0));
    cleanup_stream(&dir);
}

#[test]
fn insert_errors_are_reported() {
    let (c, dir) = streaming_catalog("inserr", lidardb_core::Durability::Always);
    // Unknown column.
    assert!(query(&c, "INSERT INTO pts (bogus) VALUES (1)").is_err());
    // Duplicate column.
    assert!(query(&c, "INSERT INTO pts (x, x) VALUES (1, 2)").is_err());
    // Non-constant value.
    assert!(query(&c, "INSERT INTO pts (x) VALUES (y + 1)").is_err());
    // Failed inserts leave nothing behind.
    let rs = query(&c, "SELECT COUNT(*) FROM pts").unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(0));
    cleanup_stream(&dir);

    // Plain (non-streaming) tables are read-only.
    let c = setup();
    let err = query(&c, "INSERT INTO points (x) VALUES (1)").unwrap_err();
    assert!(err.to_string().contains("read-only"), "{err}");
}

// ---- sys.* virtual tables ----------------------------------------------

#[test]
fn sys_metrics_readable_with_predicates_and_projection() {
    let c = setup();
    // Run a real query first so the counters are warm.
    query(&c, "SELECT COUNT(*) FROM points WHERE x < 10").unwrap();
    let rs = query(&c, "SELECT name, value FROM sys.metrics WHERE kind = 'counter'").unwrap();
    assert_eq!(rs.columns, vec!["name", "value"]);
    let queries = rs
        .rows
        .iter()
        .find(|r| r[0] == SqlValue::Str("queries".into()))
        .expect("queries counter row");
    assert!(matches!(queries[1], SqlValue::Int(n) if n >= 1), "{queries:?}");
    // Predicates narrow: only counter rows came back.
    let all = query(&c, "SELECT kind FROM sys.metrics").unwrap();
    assert!(all.rows.len() > rs.rows.len(), "kinds beyond counters exist");
    // ORDER BY + LIMIT work like on any table.
    let top = query(
        &c,
        "SELECT name, value FROM sys.metrics WHERE kind = 'counter' ORDER BY value DESC LIMIT 3",
    )
    .unwrap();
    assert_eq!(top.rows.len(), 3);
}

#[test]
fn sys_metrics_counters_match_snapshot_json_names() {
    let c = setup();
    let rs = query(&c, "SELECT name FROM sys.metrics WHERE kind = 'counter'").unwrap();
    let json = lidardb_core::MetricsRegistry::global().snapshot_json();
    assert!(!rs.rows.is_empty());
    for row in &rs.rows {
        let SqlValue::Str(name) = &row[0] else {
            panic!("name not a string: {row:?}")
        };
        assert!(json.contains(&format!("\"{name}\"")), "{name} not in snapshot_json");
    }
}

#[test]
fn sys_queries_and_sessions_have_stable_schemas() {
    let c = setup();
    let rs = query(&c, "SELECT * FROM sys.queries").unwrap();
    assert_eq!(
        rs.columns,
        vec![
            "query_id",
            "elapsed_seconds",
            "queue_wait_seconds",
            "state",
            "rows_so_far",
            "mem_bytes",
            "detail"
        ]
    );
    let rs = query(&c, "SELECT * FROM sys.sessions").unwrap();
    assert_eq!(
        rs.columns,
        vec!["session_id", "peer", "elapsed_seconds", "statements", "state"]
    );
    let rs = query(&c, "SELECT * FROM sys.wal").unwrap();
    assert_eq!(
        rs.columns,
        vec![
            "table_name",
            "durability",
            "total_rows",
            "durable_rows",
            "visible_rows",
            "backlog_rows",
            "degraded"
        ]
    );
    // No streaming tables registered here.
    assert!(rs.rows.is_empty());
}

#[test]
fn sys_recorder_exposes_sampled_series() {
    let c = setup();
    lidardb_core::Recorder::global().sample_now();
    let rs = query(
        &c,
        "SELECT seq, value FROM sys.recorder WHERE series = 'queries' ORDER BY seq",
    )
    .unwrap();
    assert!(!rs.rows.is_empty(), "at least the sample just taken");
    // seq ascends.
    let seqs: Vec<i64> = rs
        .rows
        .iter()
        .map(|r| match r[0] {
            SqlValue::Int(s) => s,
            ref other => panic!("seq not an int: {other:?}"),
        })
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
}

#[test]
fn sys_tiles_reports_residency() {
    let dir = std::env::temp_dir().join(format!("lidardb-sys-tiles-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut pc = PointCloud::new();
    let recs: Vec<PointRecord> = (0..4096)
        .map(|i| PointRecord {
            x: (i % 64) as f64,
            y: (i / 64) as f64,
            ..Default::default()
        })
        .collect();
    pc.append_records(&recs).unwrap();
    pc.save_tiled(&dir, &lidardb_core::TileOptions { target_rows: 512, ..Default::default() })
        .unwrap();
    let tc = Arc::new(lidardb_core::TiledCloud::open(&dir).unwrap());
    let mut c = Catalog::new();
    c.register_tiled("tiled_pts", Arc::clone(&tc));
    let rs = query(&c, "SELECT COUNT(*) FROM sys.tiles WHERE table_name = 'tiled_pts'").unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Int(tc.num_tiles() as i64));
    // Touch one tile, then its residency flips to 1.
    query(&c, "SELECT COUNT(*) FROM tiled_pts WHERE x < 4 AND y < 4").unwrap();
    let rs = query(&c, "SELECT COUNT(*) FROM sys.tiles WHERE resident = 1").unwrap();
    assert!(matches!(rs.rows[0][0], SqlValue::Int(n) if n >= 1), "{rs:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sys_tables_join_and_unknown_sys_name_errors() {
    let c = setup();
    // A sys table joins against another sys table like any pair of
    // vector tables.
    let rs = query(
        &c,
        "SELECT m.name FROM sys.metrics m, sys.sessions s WHERE m.kind = 'counter'",
    );
    assert!(rs.is_ok() || rs.unwrap_err().to_string().contains("join"));
    let err = query(&c, "SELECT * FROM sys.bogus").unwrap_err();
    assert!(err.to_string().contains("sys.bogus"), "{err}");
}
