//! SQL over a sealed tiled table: same answers as the flat table, with
//! zone-map tile pruning visible in `EXPLAIN ANALYZE`.

use std::sync::Arc;

use lidardb_core::{PointCloud, TileOptions, TiledCloud};
use lidardb_las::PointRecord;
use lidardb_sql::{query, Catalog, SqlValue};

/// 100x100 integer grid; classification 6 for x > 50, else 2; z = x/10.
fn grid_cloud() -> PointCloud {
    let mut pc = PointCloud::new();
    let recs: Vec<PointRecord> = (0..100)
        .flat_map(|y| {
            (0..100).map(move |x| PointRecord {
                x: x as f64,
                y: y as f64,
                z: x as f64 / 10.0,
                classification: if x > 50 { 6 } else { 2 },
                intensity: 100,
                ..Default::default()
            })
        })
        .collect();
    pc.append_records(&recs).unwrap();
    pc
}

fn tdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lidardb_sql_tiled_{name}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One catalog with the same data registered flat (`points`) and tiled
/// (`tiles`), so every query can be answered both ways and compared.
fn setup(name: &str) -> (Catalog, Arc<TiledCloud>) {
    let dir = tdir(name);
    let mut pc = grid_cloud();
    let opts = TileOptions {
        target_rows: 1024,
        ..Default::default()
    };
    let n = pc.save_tiled(&dir, &opts).unwrap();
    assert!(n > 4, "expected several tiles, got {n}");
    let tc = Arc::new(TiledCloud::open(&dir).unwrap());
    let mut c = Catalog::new();
    c.register_pointcloud("points", Arc::new(grid_cloud()));
    c.register_tiled("tiles", Arc::clone(&tc));
    (c, tc)
}

fn one_value(c: &Catalog, sql: &str) -> SqlValue {
    let rs = query(c, sql).unwrap();
    assert_eq!(rs.rows.len(), 1);
    rs.rows[0][0].clone()
}

#[test]
fn tiled_answers_match_flat_answers() {
    let (c, _tc) = setup("match");
    for (flat_sql, tiled_sql) in [
        // Spatial pushdown.
        (
            "SELECT COUNT(*) FROM points WHERE \
             ST_Contains(ST_MakeEnvelope(10, 10, 20, 20), ST_Point(x, y))",
            "SELECT COUNT(*) FROM tiles WHERE \
             ST_Contains(ST_MakeEnvelope(10, 10, 20, 20), ST_Point(x, y))",
        ),
        // Attribute pushdown + residual.
        (
            "SELECT COUNT(*) FROM points WHERE z >= 2 AND z <= 4 AND classification = 2",
            "SELECT COUNT(*) FROM tiles WHERE z >= 2 AND z <= 4 AND classification = 2",
        ),
        // Aggregate over a spatial window.
        (
            "SELECT AVG(z) FROM points WHERE \
             ST_Contains(ST_MakeEnvelope(0, 0, 50, 50), ST_Point(x, y))",
            "SELECT AVG(z) FROM tiles WHERE \
             ST_Contains(ST_MakeEnvelope(0, 0, 50, 50), ST_Point(x, y))",
        ),
        // Full scan, no pushdown at all.
        (
            "SELECT COUNT(*) FROM points",
            "SELECT COUNT(*) FROM tiles",
        ),
    ] {
        let flat = one_value(&c, flat_sql);
        let tiled = one_value(&c, tiled_sql);
        match (&flat, &tiled) {
            (SqlValue::Float(a), SqlValue::Float(b)) => {
                assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{flat_sql}: {a} vs {b}")
            }
            _ => assert_eq!(flat, tiled, "{flat_sql}"),
        }
    }
}

#[test]
fn projected_rows_read_the_right_tile_values() {
    let (c, _tc) = setup("project");
    let rs = query(
        &c,
        "SELECT x, y, z FROM tiles WHERE \
         ST_Contains(ST_MakeEnvelope(7, 7, 9, 9), ST_Point(x, y))",
    )
    .unwrap();
    assert_eq!(rs.rows.len(), 9);
    for row in &rs.rows {
        let (SqlValue::Float(x), SqlValue::Float(z)) = (&row[0], &row[2]) else {
            panic!("x/z should be floats: {row:?}");
        };
        assert!((7.0..=9.0).contains(x));
        assert!((z - x / 10.0).abs() < 1e-12, "z column must come from the same point as x");
    }
}

#[test]
fn explain_analyze_shows_tile_pruning() {
    let (c, tc) = setup("explain");
    let rs = query(
        &c,
        "EXPLAIN ANALYZE SELECT COUNT(*) FROM tiles WHERE \
         ST_Contains(ST_MakeEnvelope(0, 0, 5, 5), ST_Point(x, y))",
    )
    .unwrap();
    let text: String = rs
        .rows
        .iter()
        .map(|r| match &r[0] {
            SqlValue::Str(s) => s.clone(),
            other => other.render(),
        })
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("tile prune"), "no tile prune operator in:\n{text}");
    assert!(text.contains("pruned"), "prune counts missing in:\n{text}");
    // The tiny window must actually skip tiles.
    let pruned_somewhere = (1..tc.num_tiles())
        .any(|k| text.contains(&format!("{k} pruned")));
    assert!(pruned_somewhere, "expected a non-zero pruned count in:\n{text}");
}

#[test]
fn tiled_tables_reject_writes_and_joins() {
    let (mut c, _tc) = setup("reject");
    let err = query(&c, "INSERT INTO tiles (x, y, z) VALUES (1, 2, 3)")
        .unwrap_err()
        .to_string();
    assert!(err.contains("read-only"), "unexpected INSERT error: {err}");

    c.register_vector(
        "roads",
        lidardb_sql::VectorTable::new()
            .with_column("id", lidardb_sql::catalog::VColumn::Int(vec![1]))
            .with_column(
                "geom",
                lidardb_sql::catalog::VColumn::Geom(vec![lidardb_geom::Geometry::Point(
                    lidardb_geom::Point::new(50.0, 50.0),
                )]),
            ),
    );
    let err = query(
        &c,
        "SELECT COUNT(*) FROM tiles p, roads r WHERE \
         ST_DWithin(ST_Point(p.x, p.y), r.geom, 5)",
    )
    .unwrap_err()
    .to_string();
    assert!(
        err.contains("not supported"),
        "unexpected join error: {err}"
    );
}

#[test]
fn select_star_expands_tiled_columns() {
    let (c, _tc) = setup("star");
    let rs = query(
        &c,
        "SELECT * FROM tiles WHERE \
         ST_Contains(ST_MakeEnvelope(3, 3, 3, 3), ST_Point(x, y))",
    )
    .unwrap();
    assert_eq!(rs.columns.len(), 26);
    assert_eq!(rs.rows.len(), 1);
}
