//! Hostile-input sweep of the SQL surface: every byte string a network
//! client can send must come back as `Ok` or a typed [`SqlError`] — the
//! parse → plan → exec pipeline never panics. This is the regression
//! suite for the server-facing panic sweep: the fuzzer is a deterministic
//! LCG so failures replay exactly.

use std::sync::Arc;

use lidardb_core::PointCloud;
use lidardb_geom::{Geometry, Point, Polygon};
use lidardb_las::PointRecord;
use lidardb_sql::catalog::VColumn;
use lidardb_sql::parser::MAX_EXPR_DEPTH;
use lidardb_sql::{query, Catalog, SqlError, VectorTable};

/// Small catalog with every table kind the executor dispatches on.
fn setup() -> Catalog {
    let mut pc = PointCloud::new();
    let recs: Vec<PointRecord> = (0..64)
        .map(|i| PointRecord {
            x: (i % 8) as f64,
            y: (i / 8) as f64,
            z: i as f64 / 10.0,
            classification: (i % 3) as u8,
            intensity: 100 + i as u16,
            ..Default::default()
        })
        .collect();
    pc.append_records(&recs).unwrap();

    let zones = VectorTable::new()
        .with_column("id", VColumn::Int(vec![1]))
        .with_column(
            "geom",
            VColumn::Geom(vec![Geometry::Polygon(
                Polygon::from_exterior(vec![
                    Point::new(0.0, 0.0),
                    Point::new(7.0, 0.0),
                    Point::new(7.0, 7.0),
                    Point::new(0.0, 7.0),
                ])
                .unwrap(),
            )]),
        );

    let mut c = Catalog::new();
    c.register_pointcloud("points", Arc::new(pc));
    c.register_vector("zones", zones);
    c
}

/// Deterministic LCG (same constants as `rand`'s minstd family).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Seed statements covering the executor's dispatch arms.
const SEEDS: &[&str] = &[
    "SELECT x, y, z FROM points WHERE classification = 2 LIMIT 10",
    "SELECT COUNT(*), AVG(z) FROM points WHERE intensity > 110",
    "SELECT * FROM points WHERE ST_Contains(ST_MakeEnvelope(0,0,4,4), ST_Point(x, y))",
    "SELECT p.x, z.id FROM points p, zones z WHERE ST_Contains(z.geom, ST_Point(p.x, p.y))",
    "SELECT classification, COUNT(*) FROM points GROUP BY classification ORDER BY 2 DESC",
    "EXPLAIN SELECT x FROM points WHERE z BETWEEN 1 AND 2",
    "SET STATEMENT_TIMEOUT = 1000",
    "SHOW QUERIES",
    "KILL 12345",
    "INSERT INTO points VALUES (1, 2, 3)",
    "SELECT ST_AsText(ST_GeomFromText('POINT(1 2)')) FROM points LIMIT 1",
    "SELECT ST_X() FROM points",
    "SELECT DISTINCT classification FROM points HAVING COUNT(*) > 0",
];

/// The one invariant: whatever happens, it is a `Result`, not a panic.
/// `query` runs the full pipeline, so a panic anywhere in lex/parse/plan/
/// exec fails the test by unwinding through it.
fn must_not_panic(c: &Catalog, sql: &str) {
    let _ = query(c, sql);
}

#[test]
fn seeds_execute_or_fail_typed() {
    let c = setup();
    for sql in SEEDS {
        must_not_panic(&c, sql);
    }
}

#[test]
fn truncations_never_panic() {
    let c = setup();
    for sql in SEEDS {
        // Every prefix, byte by byte (seeds are ASCII so all are char
        // boundaries).
        for end in 0..sql.len() {
            must_not_panic(&c, &sql[..end]);
        }
    }
}

#[test]
fn mutated_statements_never_panic() {
    let c = setup();
    let mut rng = Lcg(0x5eed_1da8_db01);
    let garbage = ['\0', '(', ')', '\'', '"', ',', '.', ';', '%', 'Ω', '\u{7f}', ' '];
    for round in 0..2000 {
        let seed = SEEDS[round % SEEDS.len()];
        let mut bytes: Vec<char> = seed.chars().collect();
        // 1-4 random edits: delete, duplicate, or splice garbage.
        for _ in 0..1 + rng.below(4) {
            if bytes.is_empty() {
                break;
            }
            let at = rng.below(bytes.len());
            match rng.below(3) {
                0 => {
                    bytes.remove(at);
                }
                1 => {
                    let ch = bytes[at];
                    bytes.insert(at, ch);
                }
                _ => bytes.insert(at, garbage[rng.below(garbage.len())]),
            }
        }
        let mutated: String = bytes.into_iter().collect();
        must_not_panic(&c, &mutated);
    }
}

#[test]
fn garbage_bytes_never_panic() {
    let c = setup();
    let mut rng = Lcg(0xdead_beef_cafe);
    let alphabet: Vec<char> = "SELECT FROM WHERE AND OR NOT () ',.*=<>0123456789xyz\0\u{1}Ω"
        .chars()
        .collect();
    for _ in 0..2000 {
        let len = rng.below(80);
        let s: String = (0..len).map(|_| alphabet[rng.below(alphabet.len())]).collect();
        must_not_panic(&c, &s);
    }
}

#[test]
fn deep_nesting_returns_parse_error_not_stack_overflow() {
    let c = setup();
    // Far past the cap: without the parser's depth limit this would
    // recurse ~100k frames and abort the process.
    let deep = format!(
        "SELECT {}x{} FROM points",
        "(".repeat(100_000),
        ")".repeat(100_000)
    );
    match query(&c, &deep) {
        Err(SqlError::Parse { reason, .. }) => {
            assert!(
                reason.contains(&MAX_EXPR_DEPTH.to_string()),
                "error names the depth cap: {reason}"
            );
        }
        other => panic!("expected Parse error, got {other:?}"),
    }

    // Unary chains recurse through a different production.
    let minus = format!("SELECT {}1 FROM points", "-".repeat(100_000));
    assert!(query(&c, &minus).is_err());
    let nots = format!("SELECT * FROM points WHERE {}TRUE", "NOT ".repeat(100_000));
    assert!(query(&c, &nots).is_err());
}

#[test]
fn wrong_arity_functions_return_exec_error() {
    let c = setup();
    for sql in [
        "SELECT ST_X() FROM points LIMIT 1",
        "SELECT ST_Point(1) FROM points LIMIT 1",
        "SELECT ST_Distance(ST_Point(1,2)) FROM points LIMIT 1",
        "SELECT ST_MakeEnvelope(1,2,3) FROM points LIMIT 1",
    ] {
        match query(&c, sql) {
            Err(SqlError::Exec(msg)) => {
                assert!(msg.contains("argument"), "arity error message: {msg}")
            }
            other => panic!("{sql}: expected Exec arity error, got {other:?}"),
        }
    }
}
