//! Property-based tests of the SQL front-end: parsing is total (never
//! panics) and rendering a parsed expression re-parses to the same AST.

use lidardb_sql::ast::{Expr, SelectItem, Statement};
use lidardb_sql::parser::parse;
use proptest::prelude::*;

/// A generator of well-formed scalar expressions (as SQL text).
fn expr_text() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (-1000i32..1000).prop_map(|v| v.to_string()),
        (0.0f64..100.0).prop_map(|v| format!("{v:.3}")),
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| s),
        "[a-z]{1,4}\\.[a-z]{1,6}".prop_map(|s| s),
        "'[a-z ]{0,8}'".prop_map(|s| s),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just("+"), Just("-"), Just("*"), Just("/"),
                Just("="), Just("<>"), Just("<"), Just("<="), Just(">"), Just(">="),
                Just("AND"), Just("OR"),
            ])
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            inner.clone().prop_map(|a| format!("(NOT {a})")),
            inner.clone().prop_map(|a| format!("ABS({a})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, c)| format!("({a} BETWEEN {b} AND {c})")),
        ]
    })
}

fn first_expr(stmt: &Statement) -> Expr {
    let Statement::Select(s) = stmt else {
        panic!("generator only emits SELECT")
    };
    match &s.items[0] {
        SelectItem::Expr { expr, .. } => expr.clone(),
        SelectItem::Wildcard => panic!("generator never emits *"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn render_reparse_is_fixpoint(e in expr_text()) {
        let sql = format!("SELECT {e} FROM t");
        // Generated expressions are syntactically valid by construction.
        let stmt = parse(&sql).unwrap_or_else(|err| panic!("{sql}: {err}"));
        let ast = first_expr(&stmt);
        let rendered = ast.render();
        let stmt2 = parse(&format!("SELECT {rendered} FROM t"))
            .unwrap_or_else(|err| panic!("re-parse of {rendered}: {err}"));
        prop_assert_eq!(first_expr(&stmt2), ast);
    }

    #[test]
    fn parser_never_panics_on_garbage(input in "\\PC{0,80}") {
        // Totality: arbitrary input must produce Ok or a typed error.
        let _ = parse(&input);
        let _ = parse(&format!("SELECT {input} FROM t"));
    }

    #[test]
    fn keyword_case_is_insensitive(
        upper in prop::bool::ANY,
        col in "[a-z]{1,6}",
    ) {
        let kw = |s: &str| if upper { s.to_uppercase() } else { s.to_lowercase() };
        let sql = format!(
            "{} {col} {} t {} {col} > 1 {} {} {col} {} 3",
            kw("select"), kw("from"), kw("where"), kw("order"), kw("by"), kw("limit")
        );
        prop_assert!(parse(&sql).is_ok(), "{sql}");
    }
}
