//! The table catalog: point-cloud tables and in-memory vector tables.

use std::collections::BTreeMap;
use std::ops::Deref;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use lidardb_core::{Parallelism, PointCloud, TiledCloud};
use lidardb_geom::Geometry;

use crate::error::SqlError;
use crate::value::SqlValue;

/// A column of a vector table.
#[derive(Debug, Clone)]
pub enum VColumn {
    /// Doubles.
    Float(Vec<f64>),
    /// Integers.
    Int(Vec<i64>),
    /// Text.
    Str(Vec<String>),
    /// Geometries.
    Geom(Vec<Geometry>),
}

impl VColumn {
    fn len(&self) -> usize {
        match self {
            VColumn::Float(v) => v.len(),
            VColumn::Int(v) => v.len(),
            VColumn::Str(v) => v.len(),
            VColumn::Geom(v) => v.len(),
        }
    }

    fn get(&self, row: usize) -> SqlValue {
        match self {
            VColumn::Float(v) => SqlValue::Float(v[row]),
            VColumn::Int(v) => SqlValue::Int(v[row]),
            VColumn::Str(v) => SqlValue::Str(v[row].clone()),
            VColumn::Geom(v) => SqlValue::Geom(v[row].clone()),
        }
    }
}

/// A small in-memory feature table (roads, zones, POIs).
#[derive(Debug, Clone, Default)]
pub struct VectorTable {
    names: Vec<String>,
    columns: Vec<VColumn>,
}

impl VectorTable {
    /// An empty table.
    pub fn new() -> Self {
        VectorTable::default()
    }

    /// Add a column. All columns must end up the same length.
    pub fn with_column(mut self, name: impl Into<String>, col: VColumn) -> Self {
        self.names.push(name.into());
        self.columns.push(col);
        self
    }

    /// Column names.
    pub fn column_names(&self) -> &[String] {
        &self.names
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, VColumn::len)
    }

    /// Validate equal column lengths.
    pub fn validate(&self) -> Result<(), SqlError> {
        let n = self.num_rows();
        for (name, c) in self.names.iter().zip(&self.columns) {
            if c.len() != n {
                return Err(SqlError::Plan(format!(
                    "vector table column {name} has {} rows, expected {n}",
                    c.len()
                )));
            }
        }
        Ok(())
    }

    /// Value of `column` at `row`.
    pub fn value(&self, column: &str, row: usize) -> Result<SqlValue, SqlError> {
        let idx = self
            .names
            .iter()
            .position(|n| n == column)
            .ok_or_else(|| SqlError::Exec(format!("unknown column {column}")))?;
        if row >= self.num_rows() {
            return Err(SqlError::Exec(format!("row {row} out of range")));
        }
        Ok(self.columns[idx].get(row))
    }

    /// Whether the table has a column.
    pub fn has_column(&self, column: &str) -> bool {
        self.names.iter().any(|n| n == column)
    }
}

/// A registered table.
#[derive(Debug, Clone)]
pub enum Table {
    /// The flat point-cloud table served by the two-step engine.
    Points(Arc<PointCloud>),
    /// A point-cloud table open for streaming ingest: INSERTs take the
    /// write lock, scans take the read lock and see the cloud's committed
    /// snapshot (`visible_rows`).
    Stream(Arc<RwLock<PointCloud>>),
    /// An in-memory vector table.
    Vector(Arc<VectorTable>),
    /// A sealed, tiled point-cloud table: SFC-clustered immutable
    /// segments that load lazily and are pruned by per-tile zone maps.
    /// Read-only through SQL.
    Tiled(Arc<TiledCloud>),
}

/// A read view of a point-cloud table — either a plain shared cloud or
/// the read-locked side of a streaming one. Derefs to [`PointCloud`] so
/// scan code is agnostic to which it got.
pub enum PcRead<'a> {
    /// A plain immutable cloud.
    Plain(&'a PointCloud),
    /// A streaming cloud, read-locked for the duration of the scan.
    Stream(RwLockReadGuard<'a, PointCloud>),
}

impl Deref for PcRead<'_> {
    type Target = PointCloud;

    fn deref(&self) -> &PointCloud {
        match self {
            PcRead::Plain(pc) => pc,
            PcRead::Stream(guard) => guard,
        }
    }
}

/// The catalog of queryable tables.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    parallelism: Parallelism,
    /// Session tracing toggle (`SET TRACE = ON`). Shared across clones so
    /// a statement executed on a cloned catalog sees the session's state.
    trace: Arc<std::sync::atomic::AtomicBool>,
    /// Session statement timeout in milliseconds (`SET STATEMENT_TIMEOUT`);
    /// 0 = unset. Shared across clones like `trace`.
    statement_timeout_ms: Arc<std::sync::atomic::AtomicU64>,
    /// Session per-query memory budget in bytes (`SET MEM_BUDGET`);
    /// 0 = unset.
    mem_budget_bytes: Arc<std::sync::atomic::AtomicU64>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Set the worker-count policy point-cloud scans and spatial-join
    /// probes run with (default: [`Parallelism::Auto`]).
    pub fn set_parallelism(&mut self, p: Parallelism) {
        self.parallelism = p;
    }

    /// The catalog's worker-count policy.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Toggle session tracing (`SET TRACE = ON|OFF`): while on, every
    /// statement executed against this catalog runs with per-query span
    /// tracing forced on its thread (see `lidardb_core::trace`).
    pub fn set_trace(&self, on: bool) {
        self.trace.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether session tracing is on.
    pub fn trace_enabled(&self) -> bool {
        self.trace.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// `SET STATEMENT_TIMEOUT = <ms>`: deadline applied to every
    /// point-cloud scan this session runs; 0 clears it.
    pub fn set_statement_timeout_ms(&self, ms: u64) {
        self.statement_timeout_ms
            .store(ms, std::sync::atomic::Ordering::Relaxed);
    }

    /// The session's statement timeout, if set.
    pub fn statement_timeout(&self) -> Option<std::time::Duration> {
        match self
            .statement_timeout_ms
            .load(std::sync::atomic::Ordering::Relaxed)
        {
            0 => None,
            ms => Some(std::time::Duration::from_millis(ms)),
        }
    }

    /// `SET MEM_BUDGET = <bytes>`: per-query memory budget for this
    /// session's point-cloud scans; 0 clears it.
    pub fn set_mem_budget_bytes(&self, bytes: u64) {
        self.mem_budget_bytes
            .store(bytes, std::sync::atomic::Ordering::Relaxed);
    }

    /// The session's per-query memory budget, if set.
    pub fn mem_budget(&self) -> Option<u64> {
        match self.mem_budget_bytes.load(std::sync::atomic::Ordering::Relaxed) {
            0 => None,
            b => Some(b),
        }
    }

    /// Derive a per-session catalog: the table map (and the `Arc`s under
    /// it) is shared with `self`, but the session knobs — `SET TRACE`,
    /// `SET STATEMENT_TIMEOUT`, `SET MEM_BUDGET` — get fresh state seeded
    /// from the current values. This is what gives every network
    /// connection its own session: a `SET` on one connection never leaks
    /// into another, while the data and its admission controller stay
    /// process-wide. (A plain `clone()` is the opposite: it *shares* the
    /// knobs, which is what the in-process single-session callers want.)
    pub fn session(&self) -> Catalog {
        Catalog {
            tables: self.tables.clone(),
            parallelism: self.parallelism,
            trace: Arc::new(std::sync::atomic::AtomicBool::new(self.trace_enabled())),
            statement_timeout_ms: Arc::new(std::sync::atomic::AtomicU64::new(
                self.statement_timeout_ms
                    .load(std::sync::atomic::Ordering::Relaxed),
            )),
            mem_budget_bytes: Arc::new(std::sync::atomic::AtomicU64::new(
                self.mem_budget_bytes
                    .load(std::sync::atomic::Ordering::Relaxed),
            )),
        }
    }

    /// Register a point cloud under `name`.
    pub fn register_pointcloud(&mut self, name: impl Into<String>, pc: Arc<PointCloud>) {
        self.tables.insert(name.into(), Table::Points(pc));
    }

    /// Register a vector table under `name`.
    pub fn register_vector(&mut self, name: impl Into<String>, t: VectorTable) {
        self.tables.insert(name.into(), Table::Vector(Arc::new(t)));
    }

    /// Register a streaming (ingest-enabled) point cloud under `name`.
    /// The cloud accepts `INSERT` and shows up in `SHOW RECOVERY`.
    pub fn register_stream(&mut self, name: impl Into<String>, pc: Arc<RwLock<PointCloud>>) {
        self.tables.insert(name.into(), Table::Stream(pc));
    }

    /// Register a sealed tiled point cloud under `name`. Scans plan
    /// through the same two-step pushdown as flat tables, with zone-map
    /// tile pruning in front; the table is read-only.
    pub fn register_tiled(&mut self, name: impl Into<String>, tc: Arc<TiledCloud>) {
        self.tables.insert(name.into(), Table::Tiled(tc));
    }

    /// The tiled point-cloud table `name`, if it is one.
    pub fn tiled(&self, name: &str) -> Result<Option<&Arc<TiledCloud>>, SqlError> {
        match self.table(name)? {
            Table::Tiled(tc) => Ok(Some(tc)),
            _ => Ok(None),
        }
    }

    /// A read view of the point-cloud table `name` (plain or streaming).
    pub fn read_points(&self, name: &str) -> Result<PcRead<'_>, SqlError> {
        match self.table(name)? {
            Table::Points(pc) => Ok(PcRead::Plain(pc)),
            Table::Stream(pc) => Ok(PcRead::Stream(
                pc.read().unwrap_or_else(std::sync::PoisonError::into_inner),
            )),
            Table::Tiled(_) => Err(SqlError::Plan(format!(
                "{name} is a tiled table; its scan path does not expose a flat read view"
            ))),
            Table::Vector(_) => Err(SqlError::Plan(format!("{name} is not a point cloud"))),
        }
    }

    /// Exclusive access to the streaming table `name` (INSERT, flush,
    /// seal). Plain point clouds are read-only through SQL.
    pub fn write_stream(&self, name: &str) -> Result<RwLockWriteGuard<'_, PointCloud>, SqlError> {
        match self.table(name)? {
            Table::Stream(pc) => {
                Ok(pc.write().unwrap_or_else(std::sync::PoisonError::into_inner))
            }
            Table::Points(_) | Table::Tiled(_) => Err(SqlError::Exec(format!(
                "table {name} is read-only (register it as a stream to INSERT)"
            ))),
            Table::Vector(_) => Err(SqlError::Exec(format!("{name} is not a point cloud"))),
        }
    }

    /// Names of the streaming tables, for `SHOW RECOVERY`.
    pub fn stream_names(&self) -> Vec<&str> {
        self.tables
            .iter()
            .filter(|(_, t)| matches!(t, Table::Stream(_)))
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table, SqlError> {
        self.tables
            .get(name)
            .ok_or_else(|| SqlError::Plan(format!("unknown table {name}")))
    }

    /// Registered table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Column names of a table (for `SELECT *` expansion).
    pub fn columns_of(&self, name: &str) -> Result<Vec<String>, SqlError> {
        match self.table(name)? {
            Table::Points(_) | Table::Stream(_) | Table::Tiled(_) => Ok(lidardb_las::COLUMN_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect()),
            Table::Vector(v) => Ok(v.column_names().to_vec()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidardb_geom::Point;

    fn roads() -> VectorTable {
        VectorTable::new()
            .with_column("id", VColumn::Int(vec![1, 2]))
            .with_column(
                "class",
                VColumn::Str(vec!["motorway".into(), "primary".into()]),
            )
            .with_column(
                "geom",
                VColumn::Geom(vec![
                    Geometry::Point(Point::new(0.0, 0.0)),
                    Geometry::Point(Point::new(1.0, 1.0)),
                ]),
            )
    }

    #[test]
    fn vector_table_access() {
        let t = roads();
        t.validate().unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value("id", 0).unwrap(), SqlValue::Int(1));
        assert_eq!(t.value("class", 1).unwrap(), SqlValue::Str("primary".into()));
        assert!(matches!(t.value("geom", 0).unwrap(), SqlValue::Geom(_)));
        assert!(t.value("nope", 0).is_err());
        assert!(t.value("id", 5).is_err());
        assert!(t.has_column("class") && !t.has_column("speed"));
    }

    #[test]
    fn invalid_lengths_detected() {
        let t = VectorTable::new()
            .with_column("a", VColumn::Int(vec![1, 2]))
            .with_column("b", VColumn::Int(vec![1]));
        assert!(t.validate().is_err());
    }

    #[test]
    fn catalog_lookup() {
        let mut c = Catalog::new();
        c.register_vector("roads", roads());
        c.register_pointcloud("points", Arc::new(PointCloud::new()));
        assert_eq!(c.table_names(), vec!["points", "roads"]);
        assert!(c.table("points").is_ok());
        assert!(c.table("missing").is_err());
        assert_eq!(c.columns_of("points").unwrap().len(), 26);
        assert_eq!(c.columns_of("roads").unwrap(), vec!["id", "class", "geom"]);
    }
}
