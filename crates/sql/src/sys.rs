//! The `sys.*` virtual tables: live server introspection through plain
//! SQL.
//!
//! Every `sys.` table is materialised *at statement time* as an ordinary
//! [`VectorTable`] registered on a throwaway clone of the session catalog
//! (the clone shares the table `Arc`s and session knobs, so it costs a
//! `BTreeMap` clone, nothing more). Planning, projection, predicates,
//! ORDER BY, LIMIT, joins and the streamed wire protocol all work on them
//! for free — the engine cannot tell a `sys.` scan from a roads table.
//!
//! | table          | one row per                                     |
//! |----------------|-------------------------------------------------|
//! | `sys.metrics`  | process counter / gauge / stage percentile      |
//! | `sys.queries`  | in-flight query (subsumes `SHOW QUERIES`)       |
//! | `sys.sessions` | open network session                            |
//! | `sys.tiles`    | tile of every registered tiled table            |
//! | `sys.wal`      | streaming (ingest) table                        |
//! | `sys.recorder` | (sample, series) point of the flight recorder   |
//!
//! The snapshot semantics are per-statement: one `SELECT` sees one
//! consistent build of the table; two scans may differ, like any
//! monitoring view.

use lidardb_core::{
    recorder, MetricsRegistry, QueryRegistry, Recorder, SessionRegistry, Stage,
};

use crate::ast::SelectStmt;
use crate::catalog::{Catalog, Table, VColumn, VectorTable};
use crate::error::SqlError;

/// The six virtual tables, in catalog order.
pub const SYS_TABLES: [&str; 6] = [
    "sys.metrics",
    "sys.queries",
    "sys.recorder",
    "sys.sessions",
    "sys.tiles",
    "sys.wal",
];

/// Whether `name` addresses the sys namespace.
pub fn is_sys_table(name: &str) -> bool {
    name.starts_with("sys.")
}

/// If the statement references any `sys.` table, return a scoped catalog
/// clone with those tables materialised; `None` when the statement never
/// leaves user tables (the common case pays one iterator pass, no clone).
pub fn scoped_catalog(catalog: &Catalog, sel: &SelectStmt) -> Result<Option<Catalog>, SqlError> {
    if !sel.from.iter().any(|t| is_sys_table(&t.name)) {
        return Ok(None);
    }
    let mut scoped = catalog.clone();
    for t in &sel.from {
        if is_sys_table(&t.name) {
            scoped.register_vector(t.name.clone(), build_sys_table(catalog, &t.name)?);
        }
    }
    Ok(Some(scoped))
}

/// Materialise one `sys.` table. The build reads only lock-free state
/// (atomics, seqlock rings) or short registry locks — never a table lock,
/// so monitoring cannot stall the write path.
pub fn build_sys_table(catalog: &Catalog, name: &str) -> Result<VectorTable, SqlError> {
    match name {
        "sys.metrics" => Ok(sys_metrics()),
        "sys.queries" => Ok(sys_queries()),
        "sys.sessions" => Ok(sys_sessions()),
        "sys.tiles" => Ok(sys_tiles(catalog)),
        "sys.wal" => Ok(sys_wal(catalog)),
        "sys.recorder" => Ok(sys_recorder()),
        other => Err(SqlError::Plan(format!(
            "unknown sys table {other} (expected one of: {})",
            SYS_TABLES.join(", ")
        ))),
    }
}

/// `sys.metrics`: one row per process counter, gauge, and per-stage
/// latency percentile. Counter and gauge names (and values) are exactly
/// the ones `MetricsRegistry::snapshot_json` emits — both surfaces read
/// [`MetricsRegistry::counter_values`] / `gauge_values`.
fn sys_metrics() -> VectorTable {
    let m = MetricsRegistry::global();
    let mut kinds = Vec::new();
    let mut names = Vec::new();
    let mut values: Vec<i64> = Vec::new();
    for (n, v) in m.counter_values() {
        kinds.push("counter".to_string());
        names.push(n.to_string());
        values.push(v as i64);
    }
    for (n, v) in m.gauge_values() {
        kinds.push("gauge".to_string());
        names.push(n.to_string());
        values.push(v as i64);
    }
    for stage in Stage::ALL {
        let s = m.stage(stage);
        for (kind, v) in [
            ("stage_calls", s.calls.get()),
            ("stage_rows", s.rows.get()),
            ("stage_p50_ns", s.latency.percentile_ns(0.50)),
            ("stage_p99_ns", s.latency.percentile_ns(0.99)),
        ] {
            kinds.push(kind.to_string());
            names.push(stage.name().to_string());
            values.push(v as i64);
        }
    }
    VectorTable::new()
        .with_column("kind", VColumn::Str(kinds))
        .with_column("name", VColumn::Str(names))
        .with_column("value", VColumn::Int(values))
}

/// `sys.queries`: every in-flight query with queue wait, live row
/// progress and charged memory — the columns `SHOW QUERIES` lacks.
fn sys_queries() -> VectorTable {
    let list = QueryRegistry::global().list();
    VectorTable::new()
        .with_column(
            "query_id",
            VColumn::Int(list.iter().map(|q| q.id.0 as i64).collect()),
        )
        .with_column(
            "elapsed_seconds",
            VColumn::Float(list.iter().map(|q| q.elapsed.as_secs_f64()).collect()),
        )
        .with_column(
            "queue_wait_seconds",
            VColumn::Float(list.iter().map(|q| q.queue_wait.as_secs_f64()).collect()),
        )
        .with_column(
            "state",
            VColumn::Str(
                list.iter()
                    .map(|q| if q.cancelled { "cancelled" } else { "running" }.to_string())
                    .collect(),
            ),
        )
        .with_column(
            "rows_so_far",
            VColumn::Int(list.iter().map(|q| q.rows_so_far as i64).collect()),
        )
        .with_column(
            "mem_bytes",
            VColumn::Int(list.iter().map(|q| q.mem_used as i64).collect()),
        )
        .with_column(
            "detail",
            VColumn::Str(list.into_iter().map(|q| q.detail).collect()),
        )
}

/// `sys.sessions`: open network sessions (embedded use registers none).
fn sys_sessions() -> VectorTable {
    let list = SessionRegistry::global().list();
    VectorTable::new()
        .with_column(
            "session_id",
            VColumn::Int(list.iter().map(|s| s.id as i64).collect()),
        )
        .with_column(
            "peer",
            VColumn::Str(list.iter().map(|s| s.peer.clone()).collect()),
        )
        .with_column(
            "elapsed_seconds",
            VColumn::Float(list.iter().map(|s| s.elapsed.as_secs_f64()).collect()),
        )
        .with_column(
            "statements",
            VColumn::Int(list.iter().map(|s| s.statements as i64).collect()),
        )
        .with_column(
            "state",
            // Drain is server-wide, mirrored through the gauge so the
            // embedded catalog needs no handle to the server: every open
            // session is `draining` once shutdown begins, `active` before.
            VColumn::Str(
                list.iter()
                    .map(|_| {
                        if lidardb_core::MetricsRegistry::global().server_draining.get() != 0 {
                            "draining".to_string()
                        } else {
                            "active".to_string()
                        }
                    })
                    .collect(),
            ),
        )
}

/// `sys.tiles`: per-tile residency and zone-map stats of every registered
/// tiled table.
fn sys_tiles(catalog: &Catalog) -> VectorTable {
    let mut table = Vec::new();
    let mut tile = Vec::new();
    let mut row_start = Vec::new();
    let mut rows = Vec::new();
    let mut key_lo = Vec::new();
    let mut key_hi = Vec::new();
    let mut resident = Vec::new();
    let mut resident_bytes = Vec::new();
    let mut zone_columns = Vec::new();
    for name in catalog.table_names() {
        let Ok(Table::Tiled(tc)) = catalog.table(name) else {
            continue;
        };
        for t in tc.tile_residency() {
            table.push(name.to_string());
            tile.push(t.id as i64);
            row_start.push(t.row_start as i64);
            rows.push(t.rows as i64);
            key_lo.push(t.key_lo as i64);
            key_hi.push(t.key_hi as i64);
            resident.push(i64::from(t.resident_bytes.is_some()));
            resident_bytes.push(t.resident_bytes.unwrap_or(0) as i64);
            zone_columns.push(t.zone_columns as i64);
        }
    }
    VectorTable::new()
        .with_column("table_name", VColumn::Str(table))
        .with_column("tile", VColumn::Int(tile))
        .with_column("row_start", VColumn::Int(row_start))
        .with_column("rows", VColumn::Int(rows))
        .with_column("key_lo", VColumn::Int(key_lo))
        .with_column("key_hi", VColumn::Int(key_hi))
        .with_column("resident", VColumn::Int(resident))
        .with_column("resident_bytes", VColumn::Int(resident_bytes))
        .with_column("zone_columns", VColumn::Int(zone_columns))
}

/// `sys.wal`: durability state of every streaming (ingest) table.
fn sys_wal(catalog: &Catalog) -> VectorTable {
    let mut table = Vec::new();
    let mut durability = Vec::new();
    let mut total_rows = Vec::new();
    let mut durable_rows = Vec::new();
    let mut visible_rows = Vec::new();
    let mut backlog_rows = Vec::new();
    let mut degraded = Vec::new();
    for name in catalog.stream_names() {
        let Ok(pc) = catalog.read_points(name) else {
            continue;
        };
        let durable = pc.durable_rows().unwrap_or(0);
        degraded.push(i64::from(pc.degraded()));
        table.push(name.to_string());
        durability.push(match pc.ingest_durability() {
            Some(lidardb_core::Durability::Always) => "always".to_string(),
            Some(lidardb_core::Durability::GroupCommit { max_batches, .. }) => {
                format!("group_commit({max_batches})")
            }
            Some(lidardb_core::Durability::None) | None => "none".to_string(),
        });
        total_rows.push(pc.num_points() as i64);
        durable_rows.push(durable as i64);
        visible_rows.push(pc.visible_rows() as i64);
        backlog_rows.push(pc.num_points().saturating_sub(durable) as i64);
    }
    VectorTable::new()
        .with_column("table_name", VColumn::Str(table))
        .with_column("durability", VColumn::Str(durability))
        .with_column("total_rows", VColumn::Int(total_rows))
        .with_column("durable_rows", VColumn::Int(durable_rows))
        .with_column("visible_rows", VColumn::Int(visible_rows))
        .with_column("backlog_rows", VColumn::Int(backlog_rows))
        .with_column("degraded", VColumn::Int(degraded))
}

/// `sys.recorder`: the flight recorder's retained history in long format
/// — one row per (sample, series) pair, so `WHERE series = 'queries'`
/// pulls one time series and `WHERE seq = N` pulls one full sample.
fn sys_recorder() -> VectorTable {
    let names = recorder::series_names();
    let samples = Recorder::global().snapshot();
    let points = samples.len() * names.len();
    let mut seq = Vec::with_capacity(points);
    let mut uptime = Vec::with_capacity(points);
    let mut series = Vec::with_capacity(points);
    let mut value = Vec::with_capacity(points);
    for s in &samples {
        for (n, v) in names.iter().zip(&s.values) {
            seq.push(s.seq as i64);
            uptime.push(s.uptime_ns as i64);
            series.push(n.to_string());
            value.push(*v as i64);
        }
    }
    VectorTable::new()
        .with_column("seq", VColumn::Int(seq))
        .with_column("uptime_ns", VColumn::Int(uptime))
        .with_column("series", VColumn::Str(series))
        .with_column("value", VColumn::Int(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sys_metrics_matches_snapshot_json_counters() {
        let m = MetricsRegistry::global();
        m.queries.add(5);
        let t = sys_metrics();
        t.validate().unwrap();
        // Every snapshot_json counter appears as a counter row with the
        // same name; values can drift between the two reads, so compare
        // the name sets, not the numbers.
        let json = m.snapshot_json();
        for (name, _) in m.counter_values() {
            assert!(
                (0..t.num_rows()).any(|r| t.value("name", r).unwrap()
                    == crate::value::SqlValue::Str(name.to_string())),
                "{name} missing from sys.metrics"
            );
            assert!(json.contains(&format!("\"{name}\"")), "{name} not in JSON");
        }
        // Stage percentiles present for every stage.
        for stage in Stage::ALL {
            assert!((0..t.num_rows()).any(|r| {
                t.value("kind", r).unwrap() == crate::value::SqlValue::Str("stage_p99_ns".into())
                    && t.value("name", r).unwrap()
                        == crate::value::SqlValue::Str(stage.name().to_string())
            }));
        }
    }

    #[test]
    fn unknown_sys_table_is_a_plan_error() {
        let c = Catalog::new();
        let err = build_sys_table(&c, "sys.nope").unwrap_err();
        assert!(err.to_string().contains("sys.nope"), "{err}");
        assert!(err.to_string().contains("sys.metrics"), "lists options: {err}");
    }

    #[test]
    fn sys_wal_reports_stream_tables() {
        use lidardb_core::PointCloud;
        let dir = std::env::temp_dir().join(format!("lidardb-sys-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut pc = PointCloud::open_ingest(&dir, lidardb_core::Durability::Always).unwrap();
        let recs: Vec<lidardb_las::PointRecord> = (0..32)
            .map(|i| lidardb_las::PointRecord {
                x: i as f64,
                y: i as f64,
                ..Default::default()
            })
            .collect();
        pc.append_records(&recs).unwrap();
        let mut c = Catalog::new();
        c.register_stream("pts", std::sync::Arc::new(std::sync::RwLock::new(pc)));
        let t = sys_wal(&c);
        t.validate().unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(
            t.value("table_name", 0).unwrap(),
            crate::value::SqlValue::Str("pts".into())
        );
        assert_eq!(t.value("total_rows", 0).unwrap(), crate::value::SqlValue::Int(32));
        assert_eq!(t.value("durable_rows", 0).unwrap(), crate::value::SqlValue::Int(32));
        assert_eq!(t.value("backlog_rows", 0).unwrap(), crate::value::SqlValue::Int(0));
        assert_eq!(
            t.value("durability", 0).unwrap(),
            crate::value::SqlValue::Str("always".into())
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(dir.with_extension("wal"));
    }

    #[test]
    fn sys_recorder_long_format_round_trips() {
        let r = Recorder::global();
        MetricsRegistry::global().queries.inc();
        r.sample_now();
        let t = sys_recorder();
        t.validate().unwrap();
        assert!(t.num_rows() >= recorder::series_names().len());
        assert!(t.num_rows() % recorder::series_names().len() == 0);
        assert!((0..t.num_rows()).any(|row| {
            t.value("series", row).unwrap() == crate::value::SqlValue::Str("queries".into())
        }));
    }
}
