//! Expression evaluation and plan execution.

use std::sync::Arc;
use std::time::Instant;

use lidardb_core::{PointCloud, SpatialPredicate};
use lidardb_storage::Value;

use crate::ast::{BinOp, Expr, SelectItem, SelectStmt, Statement};
use crate::catalog::{Catalog, Table, VectorTable};
use crate::error::SqlError;
use crate::functions;
use crate::plan::{plan_select, JoinPred, Plan};
use crate::value::SqlValue;

/// One traced operator of an executed query — the "execution time spent in
/// each operator" view of §4.2.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Operator label.
    pub operator: String,
    /// Output cardinality.
    pub rows: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// An executed query result.
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<SqlValue>>,
    /// Per-operator trace.
    pub trace: Vec<TraceEntry>,
}

impl ResultSet {
    /// Render as an ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(SqlValue::render).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+\n";
        out += &sep;
        out += "|";
        for (c, w) in self.columns.iter().zip(&widths) {
            out += &format!(" {c:w$} |");
        }
        out += "\n";
        out += &sep;
        for row in &rendered {
            out += "|";
            for (cell, w) in row.iter().zip(&widths) {
                out += &format!(" {cell:w$} |");
            }
            out += "\n";
        }
        out += &sep;
        out += &format!("{} row(s)\n", self.rows.len());
        out
    }

    /// Render the operator trace.
    pub fn render_trace(&self) -> String {
        let mut out = String::from("operator                              rows      seconds\n");
        for t in &self.trace {
            out += &format!("{:<36}  {:<8}  {:.6}\n", t.operator, t.rows, t.seconds);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Row contexts
// ---------------------------------------------------------------------------

/// Column resolution context for one logical row.
pub trait Ctx {
    /// Resolve a (possibly qualified) column to a value.
    fn col(&self, table: Option<&str>, name: &str) -> Result<SqlValue, SqlError>;
}

struct ConstCtx;

impl Ctx for ConstCtx {
    fn col(&self, _table: Option<&str>, name: &str) -> Result<SqlValue, SqlError> {
        Err(SqlError::Exec(format!(
            "column {name} referenced in a constant context"
        )))
    }
}

/// Evaluate a constant expression (no column references).
pub fn eval_const(e: &Expr) -> Result<SqlValue, SqlError> {
    eval(e, &ConstCtx)
}

fn from_storage(v: Value) -> SqlValue {
    match v {
        Value::I64(x) => SqlValue::Int(x),
        Value::U64(x) => i64::try_from(x)
            .map(SqlValue::Int)
            .unwrap_or(SqlValue::Float(x as f64)),
        Value::F64(x) => SqlValue::Float(x),
    }
}

struct PcCtx<'a> {
    pc: &'a PointCloud,
    alias: &'a str,
    row: usize,
}

impl Ctx for PcCtx<'_> {
    fn col(&self, table: Option<&str>, name: &str) -> Result<SqlValue, SqlError> {
        if let Some(t) = table {
            if t != self.alias {
                return Err(SqlError::Exec(format!("unknown table alias {t}")));
            }
        }
        let col = self
            .pc
            .column(name)
            .map_err(|e| SqlError::Exec(e.to_string()))?;
        Ok(from_storage(col.get(self.row).ok_or_else(|| {
            SqlError::Exec(format!("row {} out of range", self.row))
        })?))
    }
}

struct VecCtx<'a> {
    vt: &'a VectorTable,
    alias: &'a str,
    row: usize,
}

impl Ctx for VecCtx<'_> {
    fn col(&self, table: Option<&str>, name: &str) -> Result<SqlValue, SqlError> {
        if let Some(t) = table {
            if t != self.alias {
                return Err(SqlError::Exec(format!("unknown table alias {t}")));
            }
        }
        self.vt.value(name, self.row)
    }
}

struct PairCtx<'a> {
    pc: PcCtx<'a>,
    vec: VecCtx<'a>,
}

impl Ctx for PairCtx<'_> {
    fn col(&self, table: Option<&str>, name: &str) -> Result<SqlValue, SqlError> {
        match table {
            Some(t) if t == self.pc.alias => self.pc.col(table, name),
            Some(t) if t == self.vec.alias => self.vec.col(table, name),
            Some(t) => Err(SqlError::Exec(format!("unknown table alias {t}"))),
            None => self
                .pc
                .col(None, name)
                .or_else(|_| self.vec.col(None, name)),
        }
    }
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

/// Evaluate an expression in a row context (SQL three-valued logic: NULL
/// propagates through comparisons and arithmetic; a NULL filter result is
/// treated as not-matching).
pub fn eval(e: &Expr, ctx: &dyn Ctx) -> Result<SqlValue, SqlError> {
    match e {
        Expr::Number(v) => Ok(if v.fract() == 0.0 && v.abs() < 9e15 {
            SqlValue::Int(*v as i64)
        } else {
            SqlValue::Float(*v)
        }),
        Expr::Str(s) => Ok(SqlValue::Str(s.clone())),
        Expr::Column { table, name } => ctx.col(table.as_deref(), name),
        Expr::CountStar => Err(SqlError::Exec(
            "COUNT(*) outside an aggregate context".into(),
        )),
        Expr::Func { name, args } => {
            if is_aggregate(name) {
                return Err(SqlError::Exec(format!(
                    "{name} outside an aggregate context"
                )));
            }
            let vals: Vec<SqlValue> = args
                .iter()
                .map(|a| eval(a, ctx))
                .collect::<Result<_, _>>()?;
            functions::call(name, &vals)
        }
        Expr::Not(inner) => match eval(inner, ctx)? {
            SqlValue::Null => Ok(SqlValue::Null),
            v => Ok(SqlValue::Bool(!v.as_bool()?)),
        },
        Expr::Neg(inner) => match eval(inner, ctx)? {
            SqlValue::Null => Ok(SqlValue::Null),
            SqlValue::Int(v) => Ok(SqlValue::Int(-v)),
            v => Ok(SqlValue::Float(-v.as_f64()?)),
        },
        Expr::Between { expr, lo, hi } => {
            let v = eval(expr, ctx)?;
            let lo = eval(lo, ctx)?;
            let hi = eval(hi, ctx)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(SqlValue::Null);
            }
            let ge = v.compare(&lo).map(|o| o.is_ge());
            let le = v.compare(&hi).map(|o| o.is_le());
            match (ge, le) {
                (Some(a), Some(b)) => Ok(SqlValue::Bool(a && b)),
                _ => Ok(SqlValue::Null),
            }
        }
        Expr::Binary { op, left, right } => {
            match op {
                BinOp::And => {
                    let l = eval(left, ctx)?;
                    if l == SqlValue::Bool(false) {
                        return Ok(SqlValue::Bool(false));
                    }
                    let r = eval(right, ctx)?;
                    if r == SqlValue::Bool(false) {
                        return Ok(SqlValue::Bool(false));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(SqlValue::Null);
                    }
                    Ok(SqlValue::Bool(l.as_bool()? && r.as_bool()?))
                }
                BinOp::Or => {
                    let l = eval(left, ctx)?;
                    if l == SqlValue::Bool(true) {
                        return Ok(SqlValue::Bool(true));
                    }
                    let r = eval(right, ctx)?;
                    if r == SqlValue::Bool(true) {
                        return Ok(SqlValue::Bool(true));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(SqlValue::Null);
                    }
                    Ok(SqlValue::Bool(l.as_bool()? || r.as_bool()?))
                }
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let l = eval(left, ctx)?;
                    let r = eval(right, ctx)?;
                    if l.is_null() || r.is_null() {
                        return Ok(SqlValue::Null);
                    }
                    match l.compare(&r) {
                        Some(ord) => Ok(SqlValue::Bool(match op {
                            BinOp::Eq => ord.is_eq(),
                            BinOp::Ne => ord.is_ne(),
                            BinOp::Lt => ord.is_lt(),
                            BinOp::Le => ord.is_le(),
                            BinOp::Gt => ord.is_gt(),
                            BinOp::Ge => ord.is_ge(),
                            _ => unreachable!(),
                        })),
                        None => Err(SqlError::Exec(format!(
                            "cannot compare {} with {}",
                            l.type_name(),
                            r.type_name()
                        ))),
                    }
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    let l = eval(left, ctx)?;
                    let r = eval(right, ctx)?;
                    apply_binop(*op, l, r)
                }
            }
        }
    }
}

/// Apply an arithmetic or comparison operator to two computed values
/// (shared by row evaluation and aggregate arithmetic).
fn apply_binop(op: BinOp, l: SqlValue, r: SqlValue) -> Result<SqlValue, SqlError> {
    if l.is_null() || r.is_null() {
        return Ok(SqlValue::Null);
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            if let (SqlValue::Int(a), SqlValue::Int(b)) = (&l, &r) {
                if op != BinOp::Div {
                    let v = match op {
                        BinOp::Add => a.wrapping_add(*b),
                        BinOp::Sub => a.wrapping_sub(*b),
                        BinOp::Mul => a.wrapping_mul(*b),
                        _ => unreachable!(),
                    };
                    return Ok(SqlValue::Int(v));
                }
            }
            let (a, b) = (l.as_f64()?, r.as_f64()?);
            Ok(SqlValue::Float(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                _ => unreachable!(),
            }))
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            match l.compare(&r) {
                Some(ord) => Ok(SqlValue::Bool(match op {
                    BinOp::Eq => ord.is_eq(),
                    BinOp::Ne => ord.is_ne(),
                    BinOp::Lt => ord.is_lt(),
                    BinOp::Le => ord.is_le(),
                    BinOp::Gt => ord.is_gt(),
                    BinOp::Ge => ord.is_ge(),
                    _ => unreachable!(),
                })),
                None => Err(SqlError::Exec(format!(
                    "cannot compare {} with {}",
                    l.type_name(),
                    r.type_name()
                ))),
            }
        }
        BinOp::And | BinOp::Or => Ok(SqlValue::Bool(match op {
            BinOp::And => l.as_bool()? && r.as_bool()?,
            _ => l.as_bool()? || r.as_bool()?,
        })),
    }
}

fn is_aggregate(name: &str) -> bool {
    matches!(name, "COUNT" | "SUM" | "AVG" | "MIN" | "MAX")
}

/// A filter result: NULL counts as not matching.
fn truthy(v: &SqlValue) -> bool {
    *v == SqlValue::Bool(true)
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// One logical input row of the projection stage.
enum RowEnv<'a> {
    Pc(PcCtx<'a>),
    Vec(VecCtx<'a>),
    Pair(PairCtx<'a>),
}

impl Ctx for RowEnv<'_> {
    fn col(&self, table: Option<&str>, name: &str) -> Result<SqlValue, SqlError> {
        match self {
            RowEnv::Pc(c) => c.col(table, name),
            RowEnv::Vec(c) => c.col(table, name),
            RowEnv::Pair(c) => c.col(table, name),
        }
    }
}

/// `SHOW SLOW QUERIES`: the K worst traced queries by wall time, worst
/// first, with a compact rendering of each span tree. Queries that were
/// cancelled (deadline, kill, memory budget) carry `cancelled = 1` and a
/// `[cancelled]` marker in the tree.
fn show_slow_queries() -> ResultSet {
    let rows = lidardb_core::SlowQueryLog::global()
        .worst()
        .into_iter()
        .map(|q| {
            let cancelled = q
                .spans
                .iter()
                .any(|s| s.flags & lidardb_core::trace::FLAG_CANCELLED != 0);
            let tree = lidardb_core::TraceSink { spans: q.spans };
            vec![
                SqlValue::Int(q.trace_id as i64),
                SqlValue::Float(q.seconds),
                SqlValue::Float(q.queue_wait_seconds),
                SqlValue::Int(q.result_rows as i64),
                SqlValue::Int(i64::from(cancelled)),
                SqlValue::Int(tree.len() as i64),
                SqlValue::Str(tree.render_tree()),
            ]
        })
        .collect();
    ResultSet {
        columns: [
            "trace_id",
            "seconds",
            "queue_wait",
            "result_rows",
            "cancelled",
            "spans",
            "tree",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        trace: Vec::new(),
    }
}

/// `SHOW QUERIES`: queries currently in flight (process-wide registry).
fn show_queries() -> ResultSet {
    let rows = lidardb_core::QueryRegistry::global()
        .list()
        .into_iter()
        .map(|q| {
            vec![
                SqlValue::Int(q.id.0 as i64),
                SqlValue::Float(q.elapsed.as_secs_f64()),
                SqlValue::Str(q.detail),
                SqlValue::Int(i64::from(q.cancelled)),
            ]
        })
        .collect();
    ResultSet {
        columns: ["query_id", "elapsed_seconds", "detail", "cancelled"]
            .map(String::from)
            .to_vec(),
        rows,
        trace: Vec::new(),
    }
}

/// Evaluate an INSERT value: a numeric constant, optionally negated.
fn const_num(e: &Expr) -> Result<f64, SqlError> {
    match e {
        Expr::Number(v) => Ok(*v),
        Expr::Neg(inner) => Ok(-const_num(inner)?),
        other => Err(SqlError::Exec(format!(
            "INSERT values must be numeric constants, got {}",
            other.render()
        ))),
    }
}

/// Assign `v` to the named LAS column of `rec`, casting to the column's
/// physical type (the same narrowing the binary loader applies).
fn set_field(rec: &mut lidardb_las::PointRecord, name: &str, v: f64) -> Result<(), SqlError> {
    match name {
        "x" => rec.x = v,
        "y" => rec.y = v,
        "z" => rec.z = v,
        "intensity" => rec.intensity = v as u16,
        "return_number" => rec.return_number = v as u8,
        "number_of_returns" => rec.number_of_returns = v as u8,
        "scan_direction" => rec.scan_direction = v as u8,
        "edge_of_flight_line" => rec.edge_of_flight_line = v as u8,
        "classification" => rec.classification = v as u8,
        "synthetic" => rec.synthetic = v as u8,
        "key_point" => rec.key_point = v as u8,
        "withheld" => rec.withheld = v as u8,
        "scan_angle_rank" => rec.scan_angle_rank = v as i8,
        "user_data" => rec.user_data = v as u8,
        "point_source_id" => rec.point_source_id = v as u16,
        "gps_time" => rec.gps_time = v,
        "red" => rec.red = v as u16,
        "green" => rec.green = v as u16,
        "blue" => rec.blue = v as u16,
        "wave_packet_index" => rec.wave_packet_index = v as u8,
        "wave_offset" => rec.wave_offset = v as u64,
        "wave_size" => rec.wave_size = v as u32,
        "wave_return_loc" => rec.wave_return_loc = v as f32,
        "wave_xt" => rec.wave_xt = v as f32,
        "wave_yt" => rec.wave_yt = v as f32,
        "wave_zt" => rec.wave_zt = v as f32,
        other => {
            return Err(SqlError::Exec(format!(
                "unknown point column {other} in INSERT"
            )))
        }
    }
    Ok(())
}

/// `INSERT INTO t (cols) VALUES ...` against a streaming point-cloud
/// table. The batch is WAL-logged before it is applied; `durable = 1`
/// means the WAL acknowledged it (fsynced under the table's policy),
/// `durable = 0` means it rides in an open group commit. With a
/// `TOKEN <n>` clause the result gains a `deduped` column: `1` means the
/// token was already logged and the rows were NOT applied again (the
/// original insert is acknowledged instead — idempotent replay).
fn exec_insert(catalog: &Catalog, ins: &crate::ast::InsertStmt) -> Result<ResultSet, SqlError> {
    for (i, c) in ins.columns.iter().enumerate() {
        if ins.columns[..i].contains(c) {
            return Err(SqlError::Exec(format!("duplicate INSERT column {c}")));
        }
    }
    let mut recs = Vec::with_capacity(ins.rows.len());
    for row in &ins.rows {
        let mut rec = lidardb_las::PointRecord::default();
        for (c, e) in ins.columns.iter().zip(row) {
            set_field(&mut rec, c, const_num(e)?)?;
        }
        recs.push(rec);
    }
    let t0 = Instant::now();
    let mut pc = catalog.write_stream(&ins.table)?;
    let ack = pc
        .ingest_records_tagged(&recs, ins.token.unwrap_or(0))
        .map_err(|e| SqlError::Exec(format!("ingest into {}: {e}", ins.table)))?;
    drop(pc);
    let (columns, row) = if ins.token.is_some() {
        (
            ["inserted", "durable", "deduped"].map(String::from).to_vec(),
            vec![
                SqlValue::Int(ack.inserted as i64),
                SqlValue::Int(i64::from(ack.durable)),
                SqlValue::Int(i64::from(ack.deduped)),
            ],
        )
    } else {
        // Token-less inserts keep the original two-column shape.
        (
            ["inserted", "durable"].map(String::from).to_vec(),
            vec![
                SqlValue::Int(ack.inserted as i64),
                SqlValue::Int(i64::from(ack.durable)),
            ],
        )
    };
    Ok(ResultSet {
        columns,
        rows: vec![row],
        trace: vec![TraceEntry {
            operator: format!("insert {}", ins.table),
            rows: recs.len(),
            seconds: t0.elapsed().as_secs_f64(),
        }],
    })
}

/// `SHOW RECOVERY`: for every streaming table, the crash-recovery report
/// from its last open plus the live WAL/visibility state.
fn show_recovery(catalog: &Catalog) -> ResultSet {
    fn kv(table: &str, stat: &str, v: SqlValue) -> Vec<SqlValue> {
        vec![
            SqlValue::Str(table.to_string()),
            SqlValue::Str(stat.to_string()),
            v,
        ]
    }
    let mut rows = Vec::new();
    for name in catalog.stream_names() {
        let Ok(pc) = catalog.read_points(name) else {
            continue;
        };
        if let Some(rep) = pc.recovery_report() {
            rows.push(kv(name, "base_rows", SqlValue::Int(rep.base_rows as i64)));
            rows.push(kv(name, "wal_frames", SqlValue::Int(rep.wal_frames as i64)));
            rows.push(kv(
                name,
                "replayed_frames",
                SqlValue::Int(rep.replayed_frames as i64),
            ));
            rows.push(kv(
                name,
                "skipped_frames",
                SqlValue::Int(rep.skipped_frames as i64),
            ));
            rows.push(kv(
                name,
                "replayed_rows",
                SqlValue::Int(rep.replayed_rows as i64),
            ));
            rows.push(kv(
                name,
                "truncated_bytes",
                SqlValue::Int(rep.truncated_bytes as i64),
            ));
            rows.push(kv(name, "torn_tail", SqlValue::Int(i64::from(rep.torn_tail))));
            rows.push(kv(name, "recovery_seconds", SqlValue::Float(rep.seconds)));
        }
        if let Some(d) = pc.ingest_durability() {
            rows.push(kv(name, "durability", SqlValue::Str(d.name().to_string())));
        }
        if let Some(durable) = pc.durable_rows() {
            rows.push(kv(name, "durable_rows", SqlValue::Int(durable as i64)));
        }
        rows.push(kv(
            name,
            "visible_rows",
            SqlValue::Int(pc.visible_rows() as i64),
        ));
        rows.push(kv(
            name,
            "total_rows",
            SqlValue::Int(pc.num_points() as i64),
        ));
    }
    ResultSet {
        columns: ["table", "stat", "value"].map(String::from).to_vec(),
        rows,
        trace: Vec::new(),
    }
}

/// One-row acknowledgement result (session knobs, KILL).
fn ack(column: &str, value: SqlValue) -> ResultSet {
    ResultSet {
        columns: vec![column.to_string()],
        rows: vec![vec![value]],
        trace: Vec::new(),
    }
}

/// Execute a parsed statement against the catalog.
pub fn execute(catalog: &Catalog, stmt: &Statement) -> Result<ResultSet, SqlError> {
    let sel = match stmt {
        Statement::Select(sel) => sel,
        Statement::SetTrace(on) => {
            catalog.set_trace(*on);
            return Ok(ResultSet {
                columns: vec!["trace".to_string()],
                rows: vec![vec![SqlValue::Str(
                    if *on { "ON" } else { "OFF" }.to_string(),
                )]],
                trace: Vec::new(),
            });
        }
        Statement::SetStatementTimeout(ms) => {
            catalog.set_statement_timeout_ms(*ms);
            return Ok(ack("statement_timeout_ms", SqlValue::Int(*ms as i64)));
        }
        Statement::SetMemBudget(bytes) => {
            catalog.set_mem_budget_bytes(*bytes);
            return Ok(ack("mem_budget_bytes", SqlValue::Int(*bytes as i64)));
        }
        Statement::Kill(id) => {
            let hit = lidardb_core::QueryRegistry::global().kill(lidardb_core::QueryId(*id));
            return Ok(ack(
                "killed",
                SqlValue::Str(if hit { "OK" } else { "no such query" }.to_string()),
            ));
        }
        Statement::ShowQueries => return Ok(show_queries()),
        Statement::ShowSlowQueries => return Ok(show_slow_queries()),
        Statement::ShowRecovery => return Ok(show_recovery(catalog)),
        Statement::Insert(ins) => return exec_insert(catalog, ins),
    };
    // `sys.*` references get a scoped catalog clone with those virtual
    // tables materialised for this statement; everything downstream
    // (planner, projection, joins) treats them as ordinary vector tables.
    let sys_scope = crate::sys::scoped_catalog(catalog, sel)?;
    let catalog = sys_scope.as_ref().unwrap_or(catalog);
    // While session tracing is on, everything this statement runs — point
    // scans, join probes, aggregates — records spans (the guard drops
    // when execution finishes).
    let _trace_scope = catalog
        .trace_enabled()
        .then(lidardb_core::trace::force_thread);
    let plan = plan_select(catalog, sel)?;
    if sel.explain && !sel.analyze {
        let lines: Vec<Vec<SqlValue>> = plan
            .describe()
            .lines()
            .map(|l| vec![SqlValue::Str(l.to_string())])
            .collect();
        return Ok(ResultSet {
            columns: vec!["plan".to_string()],
            rows: lines,
            trace: Vec::new(),
        });
    }
    let t_exec = Instant::now();
    let mut trace = Vec::new();

    // Materialise input rows.
    let result = match &plan {
        Plan::PcScan(scan) if catalog.tiled(&scan.table.name)?.is_some() => {
            let tc = match catalog.tiled(&scan.table.name)? {
                Some(tc) => Arc::clone(tc),
                None => {
                    return Err(SqlError::Exec(format!(
                        "table '{}' is no longer tiled",
                        scan.table.name
                    )))
                }
            };
            let rows = tiled_scan_rows(&tc, scan, catalog, &mut trace)?;
            // Group the global row ids by tile and pin each touched tile's
            // segment resident (the Arc keeps it alive past LRU eviction)
            // so projection and residual evaluation can read column values.
            let tiles = tc.tiles();
            let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
            for r in rows {
                let t = tiles.tile_for_row(r).ok_or_else(|| {
                    SqlError::Exec(format!("scan produced out-of-range row id {r}"))
                })?;
                match groups.last_mut() {
                    Some((last, v)) if *last == t => v.push(r),
                    _ => groups.push((t, vec![r])),
                }
            }
            let pinned: Vec<Arc<PointCloud>> = groups
                .iter()
                .map(|(t, _)| tc.tile_cloud(*t))
                .collect::<Result<_, _>>()
                .map_err(|e| SqlError::Exec(e.to_string()))?;
            let t0 = Instant::now();
            let mut envs = Vec::new();
            for ((t, rows), pc) in groups.iter().zip(&pinned) {
                let base = tiles.tiles[*t].row_start;
                'rows: for &r in rows {
                    let ctx = PcCtx {
                        pc,
                        alias: &scan.table.alias,
                        row: r - base,
                    };
                    for term in &scan.residual {
                        if !truthy(&eval(term, &ctx)?) {
                            continue 'rows;
                        }
                    }
                    envs.push(RowEnv::Pc(ctx));
                }
            }
            if !scan.residual.is_empty() {
                trace.push(TraceEntry {
                    operator: "thematic filter".to_string(),
                    rows: envs.len(),
                    seconds: t0.elapsed().as_secs_f64(),
                });
            }
            project(catalog, sel, &plan, envs, trace)
        }
        Plan::PcScan(scan) => {
            // Read view: a streaming table is read-locked for the scan and
            // queried at its committed snapshot (`visible_rows`).
            let pc = catalog.read_points(&scan.table.name)?;
            let pc: &PointCloud = &pc;
            let rows = pc_scan_rows(pc, scan, catalog, &mut trace)?;
            let envs: Vec<RowEnv> = rows
                .into_iter()
                .map(|row| {
                    RowEnv::Pc(PcCtx {
                        pc,
                        alias: &scan.table.alias,
                        row,
                    })
                })
                .collect();
            project(catalog, sel, &plan, envs, trace)
        }
        Plan::VecScan(scan) => {
            let Table::Vector(vt) = catalog.table(&scan.table.name)? else {
                unreachable!("bound as vector");
            };
            let vt = Arc::clone(vt);
            let t0 = Instant::now();
            let mut envs = Vec::new();
            'rows: for row in 0..vt.num_rows() {
                let ctx = VecCtx {
                    vt: &vt,
                    alias: &scan.table.alias,
                    row,
                };
                for term in &scan.residual {
                    if !truthy(&eval(term, &ctx)?) {
                        continue 'rows;
                    }
                }
                envs.push(RowEnv::Vec(ctx));
            }
            trace.push(TraceEntry {
                operator: format!("vector scan {}", scan.table.alias),
                rows: envs.len(),
                seconds: t0.elapsed().as_secs_f64(),
            });
            project(catalog, sel, &plan, envs, trace)
        }
        Plan::SpatialJoin {
            pc: pc_scan,
            vec: vec_scan,
            join,
            pair_residual,
        } => {
            if catalog.tiled(&pc_scan.table.name)?.is_some() {
                return Err(SqlError::Exec(format!(
                    "spatial joins over tiled table {} are not supported; \
                     open the directory eagerly (flat) to join it",
                    pc_scan.table.name
                )));
            }
            let pc = catalog.read_points(&pc_scan.table.name)?;
            let pc: &PointCloud = &pc;
            let Table::Vector(vt) = catalog.table(&vec_scan.table.name)? else {
                unreachable!("bound as vector");
            };
            let vt = Arc::clone(vt);

            // Feature-side filter.
            let t0 = Instant::now();
            let mut features = Vec::new();
            'feat: for row in 0..vt.num_rows() {
                let ctx = VecCtx {
                    vt: &vt,
                    alias: &vec_scan.table.alias,
                    row,
                };
                for term in &vec_scan.residual {
                    if !truthy(&eval(term, &ctx)?) {
                        continue 'feat;
                    }
                }
                features.push(row);
            }
            trace.push(TraceEntry {
                operator: format!("feature filter {}", vec_scan.table.alias),
                rows: features.len(),
                seconds: t0.elapsed().as_secs_f64(),
            });

            // One two-step probe per feature.
            let t0 = Instant::now();
            let geom_col = match join {
                JoinPred::DWithin { geom_col, .. } => geom_col,
                JoinPred::ContainsPoint { geom_col } => geom_col,
            };
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for &frow in &features {
                let g = match vt.value(geom_col, frow)? {
                    SqlValue::Geom(g) => g,
                    other => {
                        return Err(SqlError::Exec(format!(
                            "join column {geom_col} is {}, not GEOMETRY",
                            other.type_name()
                        )))
                    }
                };
                let pred = match join {
                    JoinPred::DWithin { dist, .. } => SpatialPredicate::DWithin(g, *dist),
                    JoinPred::ContainsPoint { .. } => SpatialPredicate::Within(g),
                };
                let sel_rows = governed_select(pc, catalog, Some(&pred), &pc_scan.attr_ranges)?;
                pairs.extend(sel_rows.rows.into_iter().map(|prow| (prow, frow)));
            }
            trace.push(TraceEntry {
                operator: format!("spatial join ({} probes)", features.len()),
                rows: pairs.len(),
                seconds: t0.elapsed().as_secs_f64(),
            });

            // Point-side + pair residuals.
            let t0 = Instant::now();
            let mut envs = Vec::new();
            'pairs: for (prow, frow) in pairs {
                let ctx = PairCtx {
                    pc: PcCtx {
                        pc,
                        alias: &pc_scan.table.alias,
                        row: prow,
                    },
                    vec: VecCtx {
                        vt: &vt,
                        alias: &vec_scan.table.alias,
                        row: frow,
                    },
                };
                for term in pc_scan.residual.iter().chain(pair_residual) {
                    if !truthy(&eval(term, &ctx)?) {
                        continue 'pairs;
                    }
                }
                envs.push(RowEnv::Pair(ctx));
            }
            trace.push(TraceEntry {
                operator: "pair filter".to_string(),
                rows: envs.len(),
                seconds: t0.elapsed().as_secs_f64(),
            });
            project(catalog, sel, &plan, envs, trace)
        }
    }?;
    if sel.analyze {
        // EXPLAIN ANALYZE: the query ran for real above; render the plan
        // annotated with the observed per-operator cardinalities/timings.
        return Ok(analyze_result(
            &plan,
            result,
            t_exec.elapsed().as_secs_f64(),
        ));
    }
    Ok(result)
}

/// Build the `EXPLAIN ANALYZE` output: the planned operator tree followed
/// by the actual per-operator rows and wall-clock of the execution (the
/// same numbers the query's `QueryProfile`/`Explain` carries — the trace
/// entries are derived from it in [`pc_scan_rows`]).
fn analyze_result(plan: &Plan, executed: ResultSet, total_seconds: f64) -> ResultSet {
    let mut lines: Vec<String> = plan.describe().lines().map(str::to_string).collect();
    lines.push(String::new());
    lines.push("actual:".to_string());
    for t in &executed.trace {
        lines.push(format!(
            "  {:<36} rows={:<10} time={:.6}s",
            t.operator, t.rows, t.seconds
        ));
    }
    lines.push(format!(
        "  {:<36} rows={:<10} time={:.6}s",
        "total", executed.rows.len(), total_seconds
    ));
    ResultSet {
        columns: vec!["plan".to_string()],
        rows: lines
            .into_iter()
            .map(|l| vec![SqlValue::Str(l)])
            .collect(),
        trace: executed.trace,
    }
}

/// Run a point-cloud selection under the session's governance settings
/// (`SET STATEMENT_TIMEOUT` / `SET MEM_BUDGET`), falling back to the
/// cloud's own defaults when the session leaves them unset.
fn governed_select(
    pc: &PointCloud,
    catalog: &Catalog,
    pred: Option<&SpatialPredicate>,
    attrs: &[lidardb_core::AttrRange],
) -> Result<lidardb_core::Selection, SqlError> {
    pc.select_query_governed(
        pred,
        attrs,
        Default::default(),
        catalog.parallelism(),
        catalog.statement_timeout().or_else(|| pc.default_deadline()),
        catalog.mem_budget().or_else(|| pc.mem_budget()),
    )
    .map_err(|e| SqlError::Exec(e.to_string()))
}

/// Run a tiled point-cloud scan (pushdown only — the caller applies the
/// residual per tile) and return global row ids. The trace gains a
/// `tile prune` operator showing the zone-map skip/probe/load/evict
/// counts, so `EXPLAIN ANALYZE` makes tile pruning visible.
fn tiled_scan_rows(
    tc: &lidardb_core::TiledCloud,
    scan: &crate::plan::PcScan,
    catalog: &Catalog,
    trace: &mut Vec<TraceEntry>,
) -> Result<Vec<usize>, SqlError> {
    if scan.spatial.is_none() && scan.attr_ranges.is_empty() {
        let t0 = Instant::now();
        let rows: Vec<usize> = (0..tc.num_points()).collect();
        trace.push(TraceEntry {
            operator: format!("full scan ({} tiles)", tc.num_tiles()),
            rows: rows.len(),
            seconds: t0.elapsed().as_secs_f64(),
        });
        return Ok(rows);
    }
    let sel = tc
        .select_query_governed(
            scan.spatial.as_ref(),
            &scan.attr_ranges,
            Default::default(),
            catalog.parallelism(),
            catalog.statement_timeout(),
            catalog.mem_budget(),
        )
        .map_err(|e| SqlError::Exec(e.to_string()))?;
    let e = &sel.explain;
    trace.push(TraceEntry {
        operator: format!(
            "tile prune (zone maps: {} pruned, {} probed of {}; {} loaded, {} evicted)",
            e.tiles_pruned, e.tiles_probed, e.tiles_total, e.tiles_loaded, e.tiles_evicted
        ),
        rows: e.tiles_probed,
        seconds: 0.0,
    });
    if e.t_imprint_build > 0.0 {
        trace.push(TraceEntry {
            operator: "imprint build (lazy)".to_string(),
            rows: 0,
            seconds: e.t_imprint_build,
        });
    }
    trace.push(TraceEntry {
        operator: if e.attr_probes > 0 {
            format!("imprint filter (+{} attribute probes)", e.attr_probes)
        } else {
            "imprint filter".to_string()
        },
        rows: e.after_imprints,
        seconds: e.t_imprints,
    });
    trace.push(TraceEntry {
        operator: "exact bbox scan".to_string(),
        rows: e.after_bbox,
        seconds: e.t_bbox,
    });
    trace.push(TraceEntry {
        operator: format!(
            "grid refinement (cells {}/{}/{})",
            e.cells_inside, e.cells_outside, e.cells_boundary
        ),
        rows: e.result_rows,
        seconds: e.t_refine,
    });
    Ok(sel.rows)
}

/// Run the point-cloud scan (pushdown + residual) and return row ids.
fn pc_scan_rows(
    pc: &PointCloud,
    scan: &crate::plan::PcScan,
    catalog: &Catalog,
    trace: &mut Vec<TraceEntry>,
) -> Result<Vec<usize>, SqlError> {
    let rows = if scan.spatial.is_some() || !scan.attr_ranges.is_empty() {
        {
            let sel = governed_select(pc, catalog, scan.spatial.as_ref(), &scan.attr_ranges)?;
            let e = &sel.explain;
            if e.t_imprint_build > 0.0 {
                trace.push(TraceEntry {
                    operator: "imprint build (lazy)".to_string(),
                    rows: 0,
                    seconds: e.t_imprint_build,
                });
            }
            trace.push(TraceEntry {
                operator: if e.attr_probes > 0 {
                    format!("imprint filter (+{} attribute probes)", e.attr_probes)
                } else {
                    "imprint filter".to_string()
                },
                rows: e.after_imprints,
                seconds: e.t_imprints,
            });
            trace.push(TraceEntry {
                operator: "exact bbox scan".to_string(),
                rows: e.after_bbox,
                seconds: e.t_bbox,
            });
            trace.push(TraceEntry {
                operator: format!(
                    "grid refinement (cells {}/{}/{})",
                    e.cells_inside, e.cells_outside, e.cells_boundary
                ),
                rows: e.result_rows,
                seconds: e.t_refine,
            });
            sel.rows
        }
    } else {
        {
            let t0 = Instant::now();
            // Scan only the committed snapshot — on a streaming table rows
            // past the visibility watermark are applied but unacknowledged.
            let rows: Vec<usize> = (0..pc.visible_rows()).collect();
            trace.push(TraceEntry {
                operator: "full scan".to_string(),
                rows: rows.len(),
                seconds: t0.elapsed().as_secs_f64(),
            });
            rows
        }
    };
    if scan.residual.is_empty() {
        return Ok(rows);
    }
    let t0 = Instant::now();
    let mut out = Vec::new();
    'rows: for row in rows {
        let ctx = PcCtx {
            pc,
            alias: &scan.table.alias,
            row,
        };
        for term in &scan.residual {
            if !truthy(&eval(term, &ctx)?) {
                continue 'rows;
            }
        }
        out.push(row);
    }
    trace.push(TraceEntry {
        operator: "thematic filter".to_string(),
        rows: out.len(),
        seconds: t0.elapsed().as_secs_f64(),
    });
    Ok(out)
}

/// Expand the projection list against the plan's tables.
fn output_items(
    catalog: &Catalog,
    sel: &SelectStmt,
    plan: &Plan,
) -> Result<Vec<(String, Expr)>, SqlError> {
    let tables: Vec<&crate::plan::BoundTable> = match plan {
        Plan::PcScan(p) => vec![&p.table],
        Plan::VecScan(v) => vec![&v.table],
        Plan::SpatialJoin { pc, vec, .. } => vec![&pc.table, &vec.table],
    };
    let mut out = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for t in &tables {
                    for col in catalog.columns_of(&t.name)? {
                        out.push((
                            col.clone(),
                            Expr::Column {
                                table: Some(t.alias.clone()),
                                name: col,
                            },
                        ));
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| expr.render());
                out.push((name, expr.clone()));
            }
        }
    }
    Ok(out)
}

/// Aggregate-aware evaluation of one select item over a group.
fn eval_agg(e: &Expr, group: &[&RowEnv]) -> Result<SqlValue, SqlError> {
    if !e.has_aggregate() {
        // Group key expression: evaluate on the first row (constants still
        // evaluate when the global group is empty).
        return match group.first() {
            Some(first) => eval(e, *first),
            None => eval_const(e),
        };
    }
    match e {
        Expr::CountStar => Ok(SqlValue::Int(group.len() as i64)),
        Expr::Func { name, args } if is_aggregate(name) => {
            if args.len() != 1 {
                return Err(SqlError::Exec(format!("{name} expects one argument")));
            }
            let mut vals = Vec::with_capacity(group.len());
            for env in group {
                let v = eval(&args[0], *env)?;
                if !v.is_null() {
                    vals.push(v);
                }
            }
            match name.as_str() {
                "COUNT" => Ok(SqlValue::Int(vals.len() as i64)),
                _ if vals.is_empty() => Ok(SqlValue::Null),
                "SUM" => {
                    let mut s = 0.0;
                    for v in &vals {
                        s += v.as_f64()?;
                    }
                    Ok(SqlValue::Float(s))
                }
                "AVG" => {
                    let mut s = 0.0;
                    for v in &vals {
                        s += v.as_f64()?;
                    }
                    Ok(SqlValue::Float(s / vals.len() as f64))
                }
                "MIN" | "MAX" => {
                    let mut best = vals[0].clone();
                    for v in &vals[1..] {
                        let ord = v.compare(&best).ok_or_else(|| {
                            SqlError::Exec("incomparable values in MIN/MAX".into())
                        })?;
                        let take = if name == "MIN" {
                            ord.is_lt()
                        } else {
                            ord.is_gt()
                        };
                        if take {
                            best = v.clone();
                        }
                    }
                    Ok(best)
                }
                _ => unreachable!("is_aggregate matched"),
            }
        }
        Expr::Binary { op, left, right } => {
            let l = eval_agg(left, group)?;
            let r = eval_agg(right, group)?;
            apply_binop(*op, l, r)
        }
        Expr::Neg(inner) => match eval_agg(inner, group)? {
            SqlValue::Null => Ok(SqlValue::Null),
            SqlValue::Int(v) => Ok(SqlValue::Int(-v)),
            v => Ok(SqlValue::Float(-v.as_f64()?)),
        },
        Expr::Func { name, args } => {
            let vals: Vec<SqlValue> = args
                .iter()
                .map(|a| eval_agg(a, group))
                .collect::<Result<_, _>>()?;
            functions::call(name, &vals)
        }
        other => Err(SqlError::Exec(format!(
            "unsupported aggregate expression {}",
            other.render()
        ))),
    }
}

/// Projection, aggregation, ordering, limiting.
fn project(
    catalog: &Catalog,
    sel: &SelectStmt,
    plan: &Plan,
    envs: Vec<RowEnv>,
    mut trace: Vec<TraceEntry>,
) -> Result<ResultSet, SqlError> {
    let t0 = Instant::now();
    let items = output_items(catalog, sel, plan)?;
    let needs_agg = !sel.group_by.is_empty()
        || sel.having.is_some()
        || items.iter().any(|(_, e)| e.has_aggregate());
    let columns: Vec<String> = items.iter().map(|(n, _)| n.clone()).collect();

    let mut rows: Vec<Vec<SqlValue>> = Vec::new();
    if needs_agg {
        if items
            .iter()
            .any(|(_, e)| matches!(e, Expr::Column { .. }))
            && sel.group_by.is_empty()
        {
            return Err(SqlError::Exec(
                "plain columns mixed with aggregates need GROUP BY".into(),
            ));
        }
        // Group rows.
        let mut groups: Vec<(String, Vec<&RowEnv>)> = Vec::new();
        let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        for env in &envs {
            let mut key = String::new();
            for g in &sel.group_by {
                key.push_str(&eval(g, env)?.group_key());
                key.push('\u{1}');
            }
            match index.get(&key) {
                Some(&i) => groups[i].1.push(env),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![env]));
                }
            }
        }
        if groups.is_empty() && sel.group_by.is_empty() {
            // Aggregates over an empty input: one empty global group, so
            // COUNT(*) = 0, other aggregates are NULL, and HAVING still
            // applies.
            groups.push((String::new(), Vec::new()));
        }
        for (_, group) in &groups {
            if let Some(h) = &sel.having {
                if !truthy(&eval_agg(h, group)?) {
                    continue;
                }
            }
            let mut row = Vec::new();
            for (_, e) in &items {
                row.push(eval_agg(e, group)?);
            }
            rows.push(row);
        }
    } else {
        for env in &envs {
            let mut row = Vec::with_capacity(items.len());
            for (_, e) in &items {
                row.push(eval(e, env)?);
            }
            rows.push(row);
        }
    }
    if sel.distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|row| {
            let key: String = row
                .iter()
                .map(|v| v.group_key())
                .collect::<Vec<_>>()
                .join("\u{1}");
            seen.insert(key)
        });
    }
    trace.push(TraceEntry {
        operator: if needs_agg {
            "aggregate + project".to_string()
        } else {
            "project".to_string()
        },
        rows: rows.len(),
        seconds: t0.elapsed().as_secs_f64(),
    });

    // ORDER BY: resolve each key against the output columns.
    if !sel.order_by.is_empty() {
        let t0 = Instant::now();
        let mut keys = Vec::new();
        for (e, asc) in &sel.order_by {
            let idx = resolve_output_column(e, &items)?;
            keys.push((idx, *asc));
        }
        rows.sort_by(|a, b| {
            for &(idx, asc) in &keys {
                let ord = a[idx]
                    .compare(&b[idx])
                    .unwrap_or(std::cmp::Ordering::Equal);
                let ord = if asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        trace.push(TraceEntry {
            operator: "sort".to_string(),
            rows: rows.len(),
            seconds: t0.elapsed().as_secs_f64(),
        });
    }
    if let Some(limit) = sel.limit {
        rows.truncate(limit as usize);
    }
    Ok(ResultSet {
        columns,
        rows,
        trace,
    })
}

// ---------------------------------------------------------------------------
// Streamed execution
// ---------------------------------------------------------------------------

/// Default rows per streamed batch. Small enough that one batch of wide
/// rows stays a few hundred kilobytes on the wire; large enough that the
/// per-batch framing and cancellation checks are noise.
pub const STREAM_BATCH_ROWS: usize = 4096;

/// Where [`execute_streamed`] delivers its output: a header once, then
/// zero or more row batches. A sink that blocks in [`RowSink::batch`]
/// (e.g. a socket write against a slow client) backpressures the whole
/// statement — no more rows are produced until the batch is taken.
///
/// Either method may fail (a network sink fails when the peer hangs up);
/// the statement aborts and its governance state (admission permit, query
/// registry ticket) unwinds via RAII.
pub trait RowSink {
    /// Called exactly once, before any batch, with the output column names
    /// and the statement's [`CancelToken`](lidardb_core::CancelToken). A
    /// server can clone the token and trip it from another thread (e.g. a
    /// disconnect watcher) to cancel the statement at its next checkpoint.
    fn start(
        &mut self,
        columns: &[String],
        token: &lidardb_core::CancelToken,
    ) -> Result<(), SqlError>;

    /// Deliver one batch of rows (never empty).
    fn batch(&mut self, rows: Vec<Vec<SqlValue>>) -> Result<(), SqlError>;
}

/// Outcome of a streamed statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Total rows delivered across all batches.
    pub rows: usize,
    /// Number of [`RowSink::batch`] calls.
    pub batches: usize,
}

/// Execute a parsed statement, delivering rows to `sink` in batches of at
/// most `batch_rows` instead of materialising a [`ResultSet`].
///
/// A flat point-cloud scan without aggregation / ordering / `DISTINCT`
/// streams natively: the two-step engine produces row *ids*, and residual
/// filtering + projection run batch-by-batch, so the projected result set
/// never exists in memory on this side. The admission permit and registry
/// ticket are held for the whole statement — scan *and* delivery — so a
/// slow consumer occupies an in-flight slot exactly like a slow scan, and
/// `KILL <id>` / statement timeouts fire between batches.
///
/// Everything else (aggregates, ORDER BY, joins, tiled scans, SET/SHOW/
/// INSERT) falls back to [`execute`] and re-chunks the materialised
/// result, so the sink sees one uniform shape.
pub fn execute_streamed(
    catalog: &Catalog,
    stmt: &Statement,
    batch_rows: usize,
    sink: &mut dyn RowSink,
) -> Result<StreamSummary, SqlError> {
    let batch_rows = batch_rows.max(1);
    let sel = match stmt {
        Statement::Select(sel)
            if !sel.explain
                && !sel.distinct
                && sel.group_by.is_empty()
                && sel.having.is_none()
                && sel.order_by.is_empty() =>
        {
            sel
        }
        _ => return stream_materialised(catalog, stmt, batch_rows, sink),
    };
    // `sys.*` scans stream like any vector table: materialise them on a
    // scoped catalog before planning, then ride the materialised fallback.
    let sys_scope = crate::sys::scoped_catalog(catalog, sel)?;
    let catalog = sys_scope.as_ref().unwrap_or(catalog);
    let _trace_scope = catalog
        .trace_enabled()
        .then(lidardb_core::trace::force_thread);
    let plan = plan_select(catalog, sel)?;
    let scan = match &plan {
        Plan::PcScan(scan) if catalog.tiled(&scan.table.name)?.is_none() => scan,
        _ => return stream_materialised(catalog, stmt, batch_rows, sink),
    };
    let items = output_items(catalog, sel, &plan)?;
    if items.iter().any(|(_, e)| e.has_aggregate()) {
        return stream_materialised(catalog, stmt, batch_rows, sink);
    }
    let columns: Vec<String> = items.iter().map(|(n, _)| n.clone()).collect();

    let pc = catalog.read_points(&scan.table.name)?;
    let pc: &PointCloud = &pc;

    // Statement-lifetime governance: token first (the deadline clock runs
    // from enqueue, as in `select_query_governed`), then the admission
    // permit, held until this function returns — across the scan AND the
    // backpressured delivery. A server streaming to a slow client holds
    // its in-flight slot the whole time, which is exactly the point.
    let deadline = catalog
        .statement_timeout()
        .or_else(|| pc.default_deadline());
    let budget = catalog.mem_budget().or_else(|| pc.mem_budget());
    let token = lidardb_core::CancelToken::with(deadline, budget);
    let queue_deadline = deadline.map(|d| d.saturating_sub(token.elapsed()));
    let permit = pc
        .admission()
        .admit(queue_deadline)
        .map_err(|e| SqlError::Exec(e.to_string()))?;
    token.check(0).map_err(|e| SqlError::Exec(e.to_string()))?;
    let ctx = lidardb_core::GovernCtx::new(token.clone(), pc.fault_injector())
        .with_queue_wait(permit.queue_wait());
    let _ticket = lidardb_core::QueryRegistry::global()
        .register_ctx(format!("stream select {}", scan.table.name), &ctx);

    // Row ids via the two-step engine (pushdown only); residuals and the
    // projection are evaluated per batch below.
    let row_ids: Vec<usize> = if scan.spatial.is_some() || !scan.attr_ranges.is_empty() {
        pc.select_query_ctx(
            scan.spatial.as_ref(),
            &scan.attr_ranges,
            Default::default(),
            catalog.parallelism(),
            &ctx,
        )
        .map_err(|e| SqlError::Exec(e.to_string()))?
        .rows
    } else {
        (0..pc.visible_rows()).collect()
    };

    sink.start(&columns, &token)?;
    let limit = sel.limit.map(|l| l as usize).unwrap_or(usize::MAX);
    let mut emitted = 0usize;
    let mut batches = 0usize;
    let mut batch: Vec<Vec<SqlValue>> = Vec::new();
    'rows: for row in row_ids {
        if emitted >= limit {
            break;
        }
        let rctx = PcCtx {
            pc,
            alias: &scan.table.alias,
            row,
        };
        for term in &scan.residual {
            if !truthy(&eval(term, &rctx)?) {
                continue 'rows;
            }
        }
        let env = RowEnv::Pc(rctx);
        let mut out = Vec::with_capacity(items.len());
        for (_, e) in &items {
            out.push(eval(e, &env)?);
        }
        batch.push(out);
        emitted += 1;
        if batch.len() >= batch_rows {
            sink.batch(std::mem::take(&mut batch))?;
            batches += 1;
            // Deadline / KILL / disconnect-trip land between batches, so a
            // cancelled stream stops within one batch of the signal.
            token
                .check(emitted)
                .map_err(|e| SqlError::Exec(e.to_string()))?;
        }
    }
    if !batch.is_empty() {
        sink.batch(batch)?;
        batches += 1;
    }
    Ok(StreamSummary {
        rows: emitted,
        batches,
    })
}

/// Fallback for statements that cannot stream natively: run [`execute`]
/// (which applies its own per-scan governance) and re-chunk the
/// materialised rows. The token handed to the sink is observational only —
/// tripping it stops delivery between batches but cannot interrupt the
/// already-finished execution.
fn stream_materialised(
    catalog: &Catalog,
    stmt: &Statement,
    batch_rows: usize,
    sink: &mut dyn RowSink,
) -> Result<StreamSummary, SqlError> {
    let rs = execute(catalog, stmt)?;
    let token = lidardb_core::CancelToken::new();
    sink.start(&rs.columns, &token)?;
    let rows = rs.rows.len();
    let mut batches = 0usize;
    let mut iter = rs.rows.into_iter();
    loop {
        let chunk: Vec<Vec<SqlValue>> = iter.by_ref().take(batch_rows).collect();
        if chunk.is_empty() {
            break;
        }
        sink.batch(chunk)?;
        batches += 1;
        token
            .check(batches * batch_rows)
            .map_err(|e| SqlError::Exec(e.to_string()))?;
    }
    Ok(StreamSummary { rows, batches })
}

/// Find the output column an ORDER BY expression refers to: by alias, by
/// column name, by rendered text, or by 1-based ordinal.
fn resolve_output_column(e: &Expr, items: &[(String, Expr)]) -> Result<usize, SqlError> {
    if let Expr::Number(v) = e {
        let idx = *v as usize;
        if *v >= 1.0 && v.fract() == 0.0 && idx <= items.len() {
            return Ok(idx - 1);
        }
        return Err(SqlError::Exec(format!("ORDER BY ordinal {v} out of range")));
    }
    let rendered = e.render();
    for (i, (name, expr)) in items.iter().enumerate() {
        if *name == rendered || expr.render() == rendered {
            return Ok(i);
        }
        if let Expr::Column { table: None, name: n } = e {
            if name == n {
                return Ok(i);
            }
            if let Expr::Column { name: cn, .. } = expr {
                if cn == n {
                    return Ok(i);
                }
            }
        }
    }
    Err(SqlError::Exec(format!(
        "ORDER BY expression {rendered} is not an output column"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_eval() {
        let e = crate::parser::parse("SELECT 1 + 2 * 3 FROM t").unwrap();
        let Statement::Select(s) = e else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        assert_eq!(eval_const(expr).unwrap(), SqlValue::Int(7));
    }

    #[test]
    fn null_semantics() {
        // Direct AST: NULL via empty MIN over nothing is awkward; test the
        // building blocks instead.
        assert!(truthy(&SqlValue::Bool(true)));
        assert!(!truthy(&SqlValue::Bool(false)));
        assert!(!truthy(&SqlValue::Null));
    }

    #[test]
    fn result_set_rendering() {
        let rs = ResultSet {
            columns: vec!["a".into(), "long_name".into()],
            rows: vec![
                vec![SqlValue::Int(1), SqlValue::Str("hi".into())],
                vec![SqlValue::Float(2.5), SqlValue::Null],
            ],
            trace: vec![TraceEntry {
                operator: "scan".into(),
                rows: 2,
                seconds: 0.001,
            }],
        };
        let t = rs.render();
        assert!(t.contains("| a   | long_name |"));
        assert!(t.contains("2 row(s)"));
        let tr = rs.render_trace();
        assert!(tr.contains("scan"));
    }
}
