//! Recursive-descent parser for the SELECT subset.

use crate::ast::{BinOp, Expr, InsertStmt, SelectItem, SelectStmt, Statement, TableRef};
use crate::error::SqlError;
use crate::lexer::{tokenize, Token, TokenKind};

/// Maximum expression nesting depth the parser accepts. Recursive descent
/// burns a handful of stack frames per level, so an unbounded hostile
/// input — thousands of `(`, `NOT` or unary `-` — would overflow the
/// stack and *abort* the process instead of returning an error. 128 is
/// far beyond any real query and keeps worst-case stack usage in the tens
/// of kilobytes (it also bounds every later recursion over the AST:
/// rendering, planning, evaluation, drop).
pub const MAX_EXPR_DEPTH: usize = 128;

/// Parse one statement.
pub fn parse(sql: &str) -> Result<Statement, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let stmt = p.parse_statement()?;
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current expression nesting depth (see [`MAX_EXPR_DEPTH`]).
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, reason: impl Into<String>) -> SqlError {
        SqlError::Parse {
            reason: reason.into(),
            offset: self.offset(),
        }
    }

    /// Whether the current token is the given keyword (case-insensitive).
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), SqlError> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {kind:?}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<(), SqlError> {
        if *self.peek() == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// A non-negative integer literal (session knobs, KILL ids).
    fn integer(&mut self) -> Result<u64, SqlError> {
        match self.bump() {
            TokenKind::Number(v) if v >= 0.0 && v.fract() == 0.0 => Ok(v as u64),
            other => Err(self.err(format!(
                "expected a non-negative integer, found {other:?}"
            ))),
        }
    }

    fn parse_statement(&mut self) -> Result<Statement, SqlError> {
        if self.eat_kw("SET") {
            if self.eat_kw("TRACE") {
                self.expect(TokenKind::Eq)?;
                let on = if self.eat_kw("ON") {
                    true
                } else if self.eat_kw("OFF") {
                    false
                } else {
                    return Err(self.err("expected ON or OFF"));
                };
                return Ok(Statement::SetTrace(on));
            }
            if self.eat_kw("STATEMENT_TIMEOUT") {
                self.expect(TokenKind::Eq)?;
                return Ok(Statement::SetStatementTimeout(self.integer()?));
            }
            if self.eat_kw("MEM_BUDGET") {
                self.expect(TokenKind::Eq)?;
                return Ok(Statement::SetMemBudget(self.integer()?));
            }
            return Err(self.err("expected TRACE, STATEMENT_TIMEOUT or MEM_BUDGET"));
        }
        if self.eat_kw("KILL") {
            return Ok(Statement::Kill(self.integer()?));
        }
        if self.eat_kw("SHOW") {
            if self.eat_kw("QUERIES") {
                return Ok(Statement::ShowQueries);
            }
            if self.eat_kw("RECOVERY") {
                return Ok(Statement::ShowRecovery);
            }
            self.expect_kw("SLOW")?;
            self.expect_kw("QUERIES")?;
            return Ok(Statement::ShowSlowQueries);
        }
        if self.eat_kw("INSERT") {
            return self.parse_insert();
        }
        let explain = self.eat_kw("EXPLAIN");
        let analyze = explain && self.eat_kw("ANALYZE");
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let items = self.parse_select_items()?;
        self.expect_kw("FROM")?;
        let from = self.parse_from()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if *self.peek() != TokenKind::Comma {
                    break;
                }
                self.bump();
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.parse_expr()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push((e, asc));
                if *self.peek() != TokenKind::Comma {
                    break;
                }
                self.bump();
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                TokenKind::Number(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
                _ => return Err(self.err("LIMIT expects a non-negative integer")),
            }
        } else {
            None
        };
        Ok(Statement::Select(Box::new(SelectStmt {
            explain,
            analyze,
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })))
    }

    /// `INSERT INTO t (c, ...) VALUES (e, ...), ...` — the column list is
    /// mandatory (nobody remembers the order of 26 LAS columns) and every
    /// tuple must match its arity.
    fn parse_insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            if *self.peek() != TokenKind::Comma {
                break;
            }
            self.bump();
        }
        self.expect(TokenKind::RParen)?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(TokenKind::LParen)?;
            let mut vals = Vec::new();
            loop {
                vals.push(self.parse_expr()?);
                if *self.peek() != TokenKind::Comma {
                    break;
                }
                self.bump();
            }
            self.expect(TokenKind::RParen)?;
            if vals.len() != columns.len() {
                return Err(self.err(format!(
                    "VALUES tuple has {} expressions for {} columns",
                    vals.len(),
                    columns.len()
                )));
            }
            rows.push(vals);
            if *self.peek() != TokenKind::Comma {
                break;
            }
            self.bump();
        }
        // Optional idempotency token: `... TOKEN 12345`. 0 is reserved as
        // the "no token" sentinel on the wire, so reject it here.
        let token = if self.eat_kw("TOKEN") {
            let t = self.integer()?;
            if t == 0 {
                return Err(self.err("TOKEN must be nonzero"));
            }
            Some(t)
        } else {
            None
        };
        Ok(Statement::Insert(Box::new(InsertStmt {
            table,
            columns,
            rows,
            token,
        })))
    }

    fn parse_select_items(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        let mut items = Vec::new();
        loop {
            if *self.peek() == TokenKind::Star {
                self.bump();
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if *self.peek() != TokenKind::Comma {
                break;
            }
            self.bump();
        }
        Ok(items)
    }

    fn parse_from(&mut self) -> Result<Vec<TableRef>, SqlError> {
        let mut out = Vec::new();
        loop {
            let mut name = self.ident()?;
            // Qualified table name (`sys.metrics`): the dotted pair is one
            // catalog name, kept joined — the catalog namespaces virtual
            // tables with the `sys.` prefix.
            if *self.peek() == TokenKind::Dot {
                self.bump();
                name = format!("{name}.{}", self.ident()?);
            }
            // Optional alias: a bare identifier that is not a clause
            // keyword.
            let alias = match self.peek() {
                TokenKind::Ident(s)
                    if !["WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "AS"]
                        .iter()
                        .any(|k| s.eq_ignore_ascii_case(k)) =>
                {
                    self.ident()?
                }
                _ => {
                    if self.eat_kw("AS") {
                        self.ident()?
                    } else {
                        name.clone()
                    }
                }
            };
            out.push(TableRef { name, alias });
            if *self.peek() != TokenKind::Comma {
                break;
            }
            self.bump();
        }
        Ok(out)
    }

    // ---- expression precedence climbing -----------------------------------

    /// Run `f` one nesting level deeper, rejecting inputs that exceed
    /// [`MAX_EXPR_DEPTH`] with a typed parse error instead of blowing the
    /// stack. Wraps every self-recursive entry point: `parse_expr` (the
    /// precedence chain and parenthesised primaries), `parse_not` and
    /// `parse_unary` (prefix-operator chains that bypass `parse_expr`).
    fn descend<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, SqlError>,
    ) -> Result<T, SqlError> {
        if self.depth >= MAX_EXPR_DEPTH {
            return Err(self.err(format!(
                "expression nesting exceeds the maximum depth of {MAX_EXPR_DEPTH}"
            )));
        }
        self.depth += 1;
        let out = f(self);
        self.depth -= 1;
        out
    }

    fn parse_expr(&mut self) -> Result<Expr, SqlError> {
        self.descend(|p| p.parse_or())
    }

    fn parse_or(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw("NOT") {
            let inner = self.descend(|p| p.parse_not())?;
            Ok(Expr::Not(Box::new(inner)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr, SqlError> {
        let left = self.parse_additive()?;
        // BETWEEN lo AND hi
        if self.at_kw("BETWEEN") {
            self.bump();
            let lo = self.parse_additive()?;
            self.expect_kw("AND")?;
            let hi = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
            });
        }
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.parse_additive()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn parse_additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, SqlError> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let inner = self.descend(|p| p.parse_unary())?;
                Ok(Expr::Neg(Box::new(inner)))
            }
            TokenKind::Plus => {
                self.bump();
                self.descend(|p| p.parse_unary())
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, SqlError> {
        match self.bump() {
            TokenKind::Number(v) => Ok(Expr::Number(v)),
            TokenKind::Str(s) => Ok(Expr::Str(s)),
            TokenKind::LParen => {
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(first) => {
                match self.peek() {
                    // Function call.
                    TokenKind::LParen => {
                        self.bump();
                        let name = first.to_ascii_uppercase();
                        if name == "COUNT" && *self.peek() == TokenKind::Star {
                            self.bump();
                            self.expect(TokenKind::RParen)?;
                            return Ok(Expr::CountStar);
                        }
                        let mut args = Vec::new();
                        if *self.peek() != TokenKind::RParen {
                            loop {
                                args.push(self.parse_expr()?);
                                if *self.peek() != TokenKind::Comma {
                                    break;
                                }
                                self.bump();
                            }
                        }
                        self.expect(TokenKind::RParen)?;
                        Ok(Expr::Func { name, args })
                    }
                    // Qualified column.
                    TokenKind::Dot => {
                        self.bump();
                        let name = self.ident()?;
                        Ok(Expr::Column {
                            table: Some(first),
                            name,
                        })
                    }
                    _ => Ok(Expr::Column {
                        table: None,
                        name: first,
                    }),
                }
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            Statement::Select(s) => *s,
            other => panic!("expected SELECT, parsed {other:?}"),
        }
    }

    #[test]
    fn minimal() {
        let s = select("SELECT * FROM points");
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
        assert_eq!(s.from[0].name, "points");
        assert_eq!(s.from[0].alias, "points");
        assert!(s.where_clause.is_none());
        assert!(!s.explain);
        assert!(!s.analyze);
    }

    #[test]
    fn explain_analyze() {
        let s = select("EXPLAIN ANALYZE SELECT * FROM points WHERE z > 3");
        assert!(s.explain);
        assert!(s.analyze);
        let s = select("explain analyze select * from points");
        assert!(s.explain && s.analyze, "keywords are case-insensitive");
        let s = select("EXPLAIN SELECT * FROM points");
        assert!(s.explain);
        assert!(!s.analyze);
        // ANALYZE is only a keyword right after EXPLAIN.
        assert!(parse("ANALYZE SELECT * FROM points").is_err());
        assert!(parse("SELECT ANALYZE FROM points").is_ok(), "still an identifier elsewhere");
    }

    #[test]
    fn full_clause_set() {
        let s = select(
            "EXPLAIN SELECT classification, COUNT(*) AS n FROM points p \
             WHERE z BETWEEN 0 AND 10 AND classification = 6 \
             GROUP BY classification ORDER BY n DESC LIMIT 5",
        );
        assert!(s.explain);
        assert_eq!(s.from[0].alias, "p");
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 1);
        assert!(!s.order_by[0].1, "DESC");
        assert_eq!(s.limit, Some(5));
        let w = s.where_clause.unwrap();
        assert!(w.render().contains("BETWEEN"));
    }

    #[test]
    fn precedence() {
        let s = select("SELECT 1 + 2 * 3 FROM t");
        match &s.items[0] {
            SelectItem::Expr { expr, .. } => {
                assert_eq!(expr.render(), "(1 + (2 * 3))");
            }
            _ => panic!(),
        }
        let s = select("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        let w = s.where_clause.unwrap().render();
        assert_eq!(w, "((a = 1) OR ((b = 2) AND (c = 3)))");
    }

    #[test]
    fn functions_and_qualified_columns() {
        let s = select(
            "SELECT AVG(p.z) FROM points p, roads r \
             WHERE ST_DWithin(ST_Point(p.x, p.y), r.geom, 50.0) AND r.class = 'motorway'",
        );
        assert_eq!(s.from.len(), 2);
        let w = s.where_clause.unwrap().render();
        assert!(w.contains("ST_DWITHIN(ST_POINT(p.x, p.y), r.geom, 50)"));
        assert!(w.contains("'motorway'"));
    }

    #[test]
    fn count_star_and_empty_args() {
        let s = select("SELECT COUNT(*), NOW() FROM t");
        assert!(matches!(
            s.items[0],
            SelectItem::Expr {
                expr: Expr::CountStar,
                ..
            }
        ));
        match &s.items[1] {
            SelectItem::Expr {
                expr: Expr::Func { name, args },
                ..
            } => {
                assert_eq!(name, "NOW");
                assert!(args.is_empty());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn not_and_negation() {
        let s = select("SELECT * FROM t WHERE NOT a > -5");
        let w = s.where_clause.unwrap().render();
        assert_eq!(w, "(NOT (a > (-5)))");
    }

    #[test]
    fn errors() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t LIMIT 2.5").is_err());
        assert!(parse("SELECT * FROM t extra garbage tokens").is_err());
        // INSERT requires an explicit column list.
        assert!(parse("INSERT INTO t VALUES (1)").is_err());
        assert!(parse("SELECT (1 FROM t").is_err());
    }

    #[test]
    fn insert_statements() {
        let s = parse("INSERT INTO pts (x, y, z) VALUES (1, 2, 3), (4, -5, 6.5)").unwrap();
        let Statement::Insert(ins) = s else {
            panic!("expected INSERT");
        };
        assert_eq!(ins.table, "pts");
        assert_eq!(ins.columns, vec!["x", "y", "z"]);
        assert_eq!(ins.rows.len(), 2);
        assert_eq!(ins.rows[0][2], Expr::Number(3.0));
        assert_eq!(ins.rows[1][1].render(), "(-5)");
        // Arity mismatches and malformed forms are parse errors.
        assert!(parse("INSERT INTO pts (x, y) VALUES (1)").is_err());
        assert!(parse("INSERT INTO pts () VALUES (1)").is_err());
        assert!(parse("INSERT pts (x) VALUES (1)").is_err());
        assert!(parse("INSERT INTO pts (x) VALUES (1),").is_err());
        assert!(parse("insert into pts (x) values (7)").is_ok(), "case-insensitive");
    }

    #[test]
    fn insert_token_clause() {
        let s = parse("INSERT INTO pts (x) VALUES (1) TOKEN 12345").unwrap();
        let Statement::Insert(ins) = s else {
            panic!("expected INSERT");
        };
        assert_eq!(ins.token, Some(12345));
        let s = parse("insert into pts (x) values (1) token 7").unwrap();
        let Statement::Insert(ins) = s else {
            panic!("expected INSERT");
        };
        assert_eq!(ins.token, Some(7), "keyword is case-insensitive");
        let Statement::Insert(ins) = parse("INSERT INTO pts (x) VALUES (1)").unwrap() else {
            panic!("expected INSERT");
        };
        assert_eq!(ins.token, None, "clause is optional");
        // 0 is the wire-level "no token" sentinel; negative and fractional
        // tokens are nonsense.
        assert!(parse("INSERT INTO pts (x) VALUES (1) TOKEN 0").is_err());
        assert!(parse("INSERT INTO pts (x) VALUES (1) TOKEN -3").is_err());
        assert!(parse("INSERT INTO pts (x) VALUES (1) TOKEN 1.5").is_err());
        assert!(parse("INSERT INTO pts (x) VALUES (1) TOKEN").is_err());
    }

    #[test]
    fn show_recovery_statement() {
        assert_eq!(parse("SHOW RECOVERY").unwrap(), Statement::ShowRecovery);
        assert_eq!(parse("show recovery").unwrap(), Statement::ShowRecovery);
        assert!(parse("SHOW RECOVERY now").is_err(), "trailing input rejected");
    }

    #[test]
    fn distinct_and_having() {
        let s = select(
            "SELECT DISTINCT classification FROM points \
             GROUP BY classification HAVING COUNT(*) > 10 ORDER BY classification",
        );
        assert!(s.distinct);
        assert!(s.having.is_some());
        assert!(s.having.unwrap().render().contains("COUNT(*)"));
        let s = select("SELECT x FROM points");
        assert!(!s.distinct);
        assert!(s.having.is_none());
    }

    #[test]
    fn alias_forms() {
        let s = select("SELECT * FROM roads AS r WHERE r.id = 1");
        assert_eq!(s.from[0].alias, "r");
        let s = select("SELECT * FROM roads r");
        assert_eq!(s.from[0].alias, "r");
    }

    #[test]
    fn governance_statements() {
        assert_eq!(
            parse("SET STATEMENT_TIMEOUT = 500").unwrap(),
            Statement::SetStatementTimeout(500)
        );
        assert_eq!(
            parse("set statement_timeout = 0").unwrap(),
            Statement::SetStatementTimeout(0),
            "keywords are case-insensitive"
        );
        assert_eq!(
            parse("SET MEM_BUDGET = 1048576").unwrap(),
            Statement::SetMemBudget(1_048_576)
        );
        assert_eq!(parse("KILL 42").unwrap(), Statement::Kill(42));
        assert_eq!(parse("SHOW QUERIES").unwrap(), Statement::ShowQueries);
        assert_eq!(
            parse("SHOW SLOW QUERIES").unwrap(),
            Statement::ShowSlowQueries
        );
        // Malformed forms are parse errors, not panics.
        assert!(parse("SET STATEMENT_TIMEOUT = 2.5").is_err());
        assert!(parse("SET STATEMENT_TIMEOUT = -1").is_err());
        assert!(parse("SET MEM_BUDGET").is_err());
        assert!(parse("SET UNKNOWN_KNOB = 1").is_err());
        assert!(parse("KILL x").is_err());
        assert!(parse("KILL 1 2").is_err(), "trailing input rejected");
        assert!(parse("SHOW FAST QUERIES").is_err());
    }
}
