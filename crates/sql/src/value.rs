//! Runtime values of the SQL executor.

use std::cmp::Ordering;

use lidardb_geom::Geometry;

use crate::error::SqlError;

/// A dynamically typed SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlValue {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Text.
    Str(String),
    /// Geometry.
    Geom(Geometry),
}

impl SqlValue {
    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            SqlValue::Null => "NULL",
            SqlValue::Bool(_) => "BOOLEAN",
            SqlValue::Int(_) => "INTEGER",
            SqlValue::Float(_) => "DOUBLE",
            SqlValue::Str(_) => "VARCHAR",
            SqlValue::Geom(_) => "GEOMETRY",
        }
    }

    /// Coerce to float (ints widen; anything else errors).
    pub fn as_f64(&self) -> Result<f64, SqlError> {
        match self {
            SqlValue::Int(v) => Ok(*v as f64),
            SqlValue::Float(v) => Ok(*v),
            other => Err(SqlError::Exec(format!(
                "expected a number, got {}",
                other.type_name()
            ))),
        }
    }

    /// Coerce to boolean.
    pub fn as_bool(&self) -> Result<bool, SqlError> {
        match self {
            SqlValue::Bool(b) => Ok(*b),
            SqlValue::Null => Ok(false), // NULL is not TRUE
            other => Err(SqlError::Exec(format!(
                "expected a boolean, got {}",
                other.type_name()
            ))),
        }
    }

    /// Coerce to geometry.
    pub fn as_geom(&self) -> Result<&Geometry, SqlError> {
        match self {
            SqlValue::Geom(g) => Ok(g),
            other => Err(SqlError::Exec(format!(
                "expected a geometry, got {}",
                other.type_name()
            ))),
        }
    }

    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }

    /// SQL comparison; `None` when either side is NULL or the types are
    /// incomparable.
    pub fn compare(&self, other: &SqlValue) -> Option<Ordering> {
        match (self, other) {
            (SqlValue::Null, _) | (_, SqlValue::Null) => None,
            (SqlValue::Str(a), SqlValue::Str(b)) => Some(a.cmp(b)),
            (SqlValue::Bool(a), SqlValue::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (a, b) = (a.as_f64().ok()?, b.as_f64().ok()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Stable key for GROUP BY hashing (floats by bit pattern).
    pub fn group_key(&self) -> String {
        match self {
            SqlValue::Null => "n".to_string(),
            SqlValue::Bool(b) => format!("b{b}"),
            SqlValue::Int(v) => format!("i{v}"),
            SqlValue::Float(v) => format!("f{:x}", v.to_bits()),
            SqlValue::Str(s) => format!("s{s}"),
            SqlValue::Geom(g) => format!("g{}", lidardb_geom::wkt::to_wkt(g)),
        }
    }

    /// Render for result-set display.
    pub fn render(&self) -> String {
        match self {
            SqlValue::Null => "NULL".to_string(),
            SqlValue::Bool(b) => b.to_string(),
            SqlValue::Int(v) => v.to_string(),
            SqlValue::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{:.1}", v)
                } else {
                    format!("{v}")
                }
            }
            SqlValue::Str(s) => s.clone(),
            SqlValue::Geom(g) => lidardb_geom::wkt::to_wkt(g),
        }
    }
}

impl From<f64> for SqlValue {
    fn from(v: f64) -> Self {
        SqlValue::Float(v)
    }
}
impl From<i64> for SqlValue {
    fn from(v: i64) -> Self {
        SqlValue::Int(v)
    }
}
impl From<&str> for SqlValue {
    fn from(v: &str) -> Self {
        SqlValue::Str(v.to_string())
    }
}
impl From<bool> for SqlValue {
    fn from(v: bool) -> Self {
        SqlValue::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(SqlValue::Int(3).as_f64().unwrap(), 3.0);
        assert_eq!(SqlValue::Float(2.5).as_f64().unwrap(), 2.5);
        assert!(SqlValue::Str("x".into()).as_f64().is_err());
        assert!(SqlValue::Bool(true).as_bool().unwrap());
        assert!(!SqlValue::Null.as_bool().unwrap());
        assert!(SqlValue::Int(1).as_bool().is_err());
    }

    #[test]
    fn comparisons() {
        use Ordering::*;
        assert_eq!(SqlValue::Int(3).compare(&SqlValue::Float(3.0)), Some(Equal));
        assert_eq!(SqlValue::Int(2).compare(&SqlValue::Int(5)), Some(Less));
        assert_eq!(
            SqlValue::Str("b".into()).compare(&SqlValue::Str("a".into())),
            Some(Greater)
        );
        assert_eq!(SqlValue::Null.compare(&SqlValue::Int(1)), None);
        assert_eq!(
            SqlValue::Str("a".into()).compare(&SqlValue::Int(1)),
            None,
            "incomparable types"
        );
    }

    #[test]
    fn group_keys_distinguish() {
        assert_ne!(
            SqlValue::Int(1).group_key(),
            SqlValue::Float(1.0).group_key()
        );
        assert_eq!(
            SqlValue::Float(1.5).group_key(),
            SqlValue::Float(1.5).group_key()
        );
    }

    #[test]
    fn render() {
        assert_eq!(SqlValue::Float(3.0).render(), "3.0");
        assert_eq!(SqlValue::Float(3.25).render(), "3.25");
        assert_eq!(SqlValue::Int(7).render(), "7");
        assert_eq!(SqlValue::Null.render(), "NULL");
    }
}
