//! Abstract syntax of the supported SQL subset.

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A (possibly `EXPLAIN`-prefixed) SELECT. Boxed: the statement body
    /// dwarfs the other variants.
    Select(Box<SelectStmt>),
    /// `SET TRACE = ON|OFF` — toggle per-query span tracing for the
    /// session (see `lidardb_core::trace`).
    SetTrace(bool),
    /// `SET STATEMENT_TIMEOUT = <ms>` — deadline for point-cloud scans in
    /// this session; 0 clears it (see `lidardb_core::governor`).
    SetStatementTimeout(u64),
    /// `SET MEM_BUDGET = <bytes>` — per-query memory budget for this
    /// session; 0 clears it.
    SetMemBudget(u64),
    /// `KILL <query_id>` — cooperatively cancel a running query.
    Kill(u64),
    /// `SHOW QUERIES` — queries currently in flight.
    ShowQueries,
    /// `SHOW SLOW QUERIES` — the K worst traced queries by wall time.
    ShowSlowQueries,
    /// `SHOW RECOVERY` — last crash-recovery report and WAL state of every
    /// streaming point-cloud table.
    ShowRecovery,
    /// `INSERT INTO t (cols) VALUES (...), ...` — streaming append into an
    /// ingesting point-cloud table (WAL-logged, snapshot-visible on
    /// commit).
    Insert(Box<InsertStmt>),
}

/// An INSERT statement. Only point-cloud tables opened for streaming
/// ingest accept inserts; unnamed columns take their LAS default.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// Target table name in the catalog.
    pub table: String,
    /// Explicit column list (required — the flat table has 26 columns).
    pub columns: Vec<String>,
    /// One expression list per `VALUES` tuple; each must be a numeric
    /// constant.
    pub rows: Vec<Vec<Expr>>,
    /// Idempotency token (`TOKEN <n>` clause): a batch whose token the
    /// table has already logged is acknowledged without being applied
    /// again, so a retrying client cannot double-insert. `None` = plain
    /// INSERT, no dedup.
    pub token: Option<u64>,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Whether `EXPLAIN` was requested (plan only, no execution — unless
    /// `analyze` is also set).
    pub explain: bool,
    /// Whether `EXPLAIN ANALYZE` was requested: execute the query and
    /// render the plan annotated with real cardinalities and timings.
    pub analyze: bool,
    /// Whether `SELECT DISTINCT` was requested.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM tables (one or two supported by the planner).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate over the groups.
    pub having: Option<Expr>,
    /// ORDER BY expressions with ascending flags.
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A FROM-clause table reference.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub name: String,
    /// Alias (defaults to the name).
    pub alias: String,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `OR`
    Or,
    /// `AND`
    And,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "OR",
            BinOp::And => "AND",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Str(String),
    /// Column reference, optionally qualified.
    Column {
        /// Table alias qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// `COUNT(*)` (the only star-argument call).
    CountStar,
    /// Function or aggregate call.
    Func {
        /// Uppercased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT expr`.
    Not(Box<Expr>),
    /// `- expr`.
    Neg(Box<Expr>),
    /// `a BETWEEN lo AND hi` (inclusive).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        lo: Box<Expr>,
        /// Upper bound.
        hi: Box<Expr>,
    },
}

impl Expr {
    /// Render roughly back to SQL (plan display, tests).
    pub fn render(&self) -> String {
        match self {
            Expr::Number(v) => format!("{v}"),
            Expr::Str(s) => format!("'{s}'"),
            Expr::Column { table, name } => match table {
                Some(t) => format!("{t}.{name}"),
                None => name.clone(),
            },
            Expr::CountStar => "COUNT(*)".to_string(),
            Expr::Func { name, args } => {
                let args: Vec<String> = args.iter().map(Expr::render).collect();
                format!("{name}({})", args.join(", "))
            }
            Expr::Binary { op, left, right } => {
                format!("({} {} {})", left.render(), op.symbol(), right.render())
            }
            Expr::Not(e) => format!("(NOT {})", e.render()),
            Expr::Neg(e) => format!("(-{})", e.render()),
            Expr::Between { expr, lo, hi } => format!(
                "({} BETWEEN {} AND {})",
                expr.render(),
                lo.render(),
                hi.render()
            ),
        }
    }

    /// Visit every column reference.
    pub fn visit_columns(&self, f: &mut impl FnMut(Option<&str>, &str)) {
        match self {
            Expr::Column { table, name } => f(table.as_deref(), name),
            Expr::Func { args, .. } => {
                for a in args {
                    a.visit_columns(f);
                }
            }
            Expr::Binary { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::Not(e) | Expr::Neg(e) => e.visit_columns(f),
            Expr::Between { expr, lo, hi } => {
                expr.visit_columns(f);
                lo.visit_columns(f);
                hi.visit_columns(f);
            }
            Expr::Number(_) | Expr::Str(_) | Expr::CountStar => {}
        }
    }

    /// Whether the expression references no columns (a constant).
    pub fn is_constant(&self) -> bool {
        let mut any = false;
        self.visit_columns(&mut |_, _| any = true);
        !any
    }

    /// Whether the expression contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::CountStar => true,
            Expr::Func { name, args } => {
                matches!(name.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX")
                    || args.iter().any(Expr::has_aggregate)
            }
            Expr::Binary { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
            Expr::Not(e) | Expr::Neg(e) => e.has_aggregate(),
            Expr::Between { expr, lo, hi } => {
                expr.has_aggregate() || lo.has_aggregate() || hi.has_aggregate()
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_roundtrip_ish() {
        let e = Expr::Binary {
            op: BinOp::And,
            left: Box::new(Expr::Column {
                table: Some("p".into()),
                name: "x".into(),
            }),
            right: Box::new(Expr::Number(3.0)),
        };
        assert_eq!(e.render(), "(p.x AND 3)");
    }

    #[test]
    fn constant_detection() {
        assert!(Expr::Number(1.0).is_constant());
        let f = Expr::Func {
            name: "ST_POINT".into(),
            args: vec![Expr::Number(1.0), Expr::Number(2.0)],
        };
        assert!(f.is_constant());
        let c = Expr::Func {
            name: "ST_POINT".into(),
            args: vec![
                Expr::Column {
                    table: None,
                    name: "x".into(),
                },
                Expr::Number(2.0),
            ],
        };
        assert!(!c.is_constant());
    }

    #[test]
    fn aggregate_detection() {
        assert!(Expr::CountStar.has_aggregate());
        let avg = Expr::Func {
            name: "AVG".into(),
            args: vec![Expr::Column {
                table: None,
                name: "z".into(),
            }],
        };
        assert!(avg.has_aggregate());
        let nested = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(avg),
            right: Box::new(Expr::Number(1.0)),
        };
        assert!(nested.has_aggregate());
        assert!(!Expr::Number(1.0).has_aggregate());
    }
}
