//! # lidardb-sql — the declarative query layer
//!
//! §2.2 of the paper argues that file-based tools cannot express ad-hoc
//! analysis: *"a declarative language like SQL allows the user to easily
//! express queries that combine numerous data sources"*. MonetDB exposes
//! the OGC Simple Features SQL functions; this crate reproduces the subset
//! the demo exercises (and a little more):
//!
//! * a hand-written **lexer + recursive-descent parser** for
//!   `SELECT ... FROM ... [WHERE] [GROUP BY] [ORDER BY] [LIMIT]`, with
//!   `EXPLAIN` support;
//! * a **catalog** of point-cloud tables (the flat 26-column table of
//!   `lidardb-core`) and in-memory **vector tables** (OSM roads/rivers,
//!   Urban Atlas zones) with float/int/string/geometry columns;
//! * the **OGC function library**: `ST_Point`, `ST_MakeEnvelope`,
//!   `ST_GeomFromText`, `ST_Contains`, `ST_Within`, `ST_Intersects`,
//!   `ST_DWithin`, `ST_Distance`, `ST_X`, `ST_Y`, `ST_Area`, `ST_Length`;
//! * a **planner** that pushes constant spatial predicates on the
//!   point-cloud table into the two-step imprint engine, turns
//!   `pointcloud × vector` queries with an `ST_DWithin`/`ST_Contains`
//!   join predicate into an index-driven **spatial join** (one two-step
//!   query per qualifying vector feature), and evaluates everything else
//!   as residual filters;
//! * an **executor** with per-operator tracing — `EXPLAIN` shows the plan
//!   and every query result carries the operator timings the demo
//!   displays (§4.2: *"users will have the option to see the plans of the
//!   queries and the execution time spent in each operator"*).

pub mod ast;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod functions;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod sys;
pub mod value;

pub use catalog::{Catalog, VectorTable};
pub use error::SqlError;
pub use exec::{
    execute, execute_streamed, ResultSet, RowSink, StreamSummary, STREAM_BATCH_ROWS,
};
pub use value::SqlValue;

use std::sync::Arc;

/// Parse and execute one SQL statement against a catalog.
pub fn query(catalog: &Catalog, sql: &str) -> Result<ResultSet, SqlError> {
    let stmt = parser::parse(sql)?;
    exec::execute(catalog, &stmt)
}

/// Parse and execute one SQL statement, streaming rows to `sink` in
/// batches of at most `batch_rows` (see [`execute_streamed`]). This is the
/// entry point the network server uses: the result set never materialises
/// for natively streamable scans, and a sink that blocks backpressures the
/// statement.
pub fn query_streamed(
    catalog: &Catalog,
    sql: &str,
    batch_rows: usize,
    sink: &mut dyn RowSink,
) -> Result<StreamSummary, SqlError> {
    let stmt = parser::parse(sql)?;
    exec::execute_streamed(catalog, &stmt, batch_rows, sink)
}

/// Convenience: build a catalog holding one point cloud as table
/// `"points"`.
pub fn catalog_with_points(pc: Arc<lidardb_core::PointCloud>) -> Catalog {
    let mut c = Catalog::new();
    c.register_pointcloud("points", pc);
    c
}
