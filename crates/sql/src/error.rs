//! Error type of the SQL layer.

use std::fmt;

/// Errors produced while lexing, parsing, planning or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error at a byte offset.
    Lex {
        /// What went wrong.
        reason: String,
        /// Byte offset in the input.
        offset: usize,
    },
    /// Parse error at a byte offset.
    Parse {
        /// What went wrong.
        reason: String,
        /// Byte offset in the input.
        offset: usize,
    },
    /// The statement is valid SQL but not supported / not plannable.
    Plan(String),
    /// Runtime evaluation failure.
    Exec(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { reason, offset } => write!(f, "lex error at byte {offset}: {reason}"),
            SqlError::Parse { reason, offset } => {
                write!(f, "parse error at byte {offset}: {reason}")
            }
            SqlError::Plan(msg) => write!(f, "planning error: {msg}"),
            SqlError::Exec(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SqlError::Parse {
            reason: "expected FROM".into(),
            offset: 12,
        };
        assert!(e.to_string().contains("byte 12"));
        assert!(SqlError::Plan("three tables".into())
            .to_string()
            .contains("three tables"));
    }
}
