//! SQL tokenizer.

use crate::error::SqlError;

/// One lexical token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// Byte offset in the input.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or identifier (stored uppercased for keywords matching;
    /// original case preserved separately for identifiers).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// String literal (quotes stripped, '' unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// Tokenize an SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let b = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        let start = i;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                // Line comment.
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            b',' => push1(&mut out, TokenKind::Comma, &mut i, start),
            b'(' => push1(&mut out, TokenKind::LParen, &mut i, start),
            b')' => push1(&mut out, TokenKind::RParen, &mut i, start),
            b'.' if i + 1 >= b.len() || !b[i + 1].is_ascii_digit() => {
                push1(&mut out, TokenKind::Dot, &mut i, start)
            }
            b'*' => push1(&mut out, TokenKind::Star, &mut i, start),
            b'+' => push1(&mut out, TokenKind::Plus, &mut i, start),
            b'-' => push1(&mut out, TokenKind::Minus, &mut i, start),
            b'/' => push1(&mut out, TokenKind::Slash, &mut i, start),
            b'=' => push1(&mut out, TokenKind::Eq, &mut i, start),
            b'!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Token {
                    kind: TokenKind::Ne,
                    offset: start,
                });
                i += 2;
            }
            b'<' => {
                let (kind, w) = match b.get(i + 1) {
                    Some(b'=') => (TokenKind::Le, 2),
                    Some(b'>') => (TokenKind::Ne, 2),
                    _ => (TokenKind::Lt, 1),
                };
                out.push(Token {
                    kind,
                    offset: start,
                });
                i += w;
            }
            b'>' => {
                let (kind, w) = match b.get(i + 1) {
                    Some(b'=') => (TokenKind::Ge, 2),
                    _ => (TokenKind::Gt, 1),
                };
                out.push(Token {
                    kind,
                    offset: start,
                });
                i += w;
            }
            b'\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match b.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                reason: "unterminated string literal".into(),
                                offset: start,
                            })
                        }
                        Some(b'\'') if b.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            b'0'..=b'9' | b'.' => {
                while i < b.len()
                    && (b[i].is_ascii_digit()
                        || b[i] == b'.'
                        || b[i] == b'e'
                        || b[i] == b'E'
                        || ((b[i] == b'+' || b[i] == b'-')
                            && i > start
                            && (b[i - 1] == b'e' || b[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &input[start..i];
                let v: f64 = text.parse().map_err(|_| SqlError::Lex {
                    reason: format!("bad number {text:?}"),
                    offset: start,
                })?;
                out.push(Token {
                    kind: TokenKind::Number(v),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'"' => {
                if c == b'"' {
                    // Quoted identifier.
                    i += 1;
                    let istart = i;
                    while i < b.len() && b[i] != b'"' {
                        i += 1;
                    }
                    if i >= b.len() {
                        return Err(SqlError::Lex {
                            reason: "unterminated quoted identifier".into(),
                            offset: start,
                        });
                    }
                    let name = input[istart..i].to_string();
                    i += 1;
                    out.push(Token {
                        kind: TokenKind::Ident(name),
                        offset: start,
                    });
                } else {
                    while i < b.len()
                        && (b[i].is_ascii_alphanumeric() || b[i] == b'_')
                    {
                        i += 1;
                    }
                    out.push(Token {
                        kind: TokenKind::Ident(input[start..i].to_string()),
                        offset: start,
                    });
                }
            }
            other => {
                return Err(SqlError::Lex {
                    reason: format!("unexpected character {:?}", other as char),
                    offset: start,
                })
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(out)
}

fn push1(out: &mut Vec<Token>, kind: TokenKind, i: &mut usize, offset: usize) {
    out.push(Token { kind, offset });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_select() {
        let k = kinds("SELECT x, y FROM points WHERE z >= 1.5");
        assert_eq!(k[0], TokenKind::Ident("SELECT".into()));
        assert_eq!(k[1], TokenKind::Ident("x".into()));
        assert_eq!(k[2], TokenKind::Comma);
        assert!(k.contains(&TokenKind::Ge));
        assert!(k.contains(&TokenKind::Number(1.5)));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn operators() {
        let k = kinds("a <> b != c <= d >= e < f > g = h");
        let ops: Vec<_> = k
            .iter()
            .filter(|t| {
                matches!(
                    t,
                    TokenKind::Ne
                        | TokenKind::Le
                        | TokenKind::Ge
                        | TokenKind::Lt
                        | TokenKind::Gt
                        | TokenKind::Eq
                )
            })
            .collect();
        assert_eq!(ops.len(), 7);
    }

    #[test]
    fn strings_with_escapes() {
        let k = kinds("name = 'O''Brien road'");
        assert!(k.contains(&TokenKind::Str("O'Brien road".into())));
        assert!(matches!(
            tokenize("'unterminated").unwrap_err(),
            SqlError::Lex { .. }
        ));
    }

    #[test]
    fn numbers() {
        let k = kinds("1 2.5 .75 1e3 2.5e-2");
        let nums: Vec<f64> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::Number(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec![1.0, 2.5, 0.75, 1000.0, 0.025]);
    }

    #[test]
    fn qualified_names_and_star() {
        let k = kinds("SELECT p.x, COUNT(*) FROM t p");
        assert!(k.contains(&TokenKind::Dot));
        assert!(k.contains(&TokenKind::Star));
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("SELECT 1 -- trailing comment\n, 2");
        let nums = k
            .iter()
            .filter(|t| matches!(t, TokenKind::Number(_)))
            .count();
        assert_eq!(nums, 2);
    }

    #[test]
    fn quoted_identifiers() {
        let k = kinds("\"weird name\"");
        assert_eq!(k[0], TokenKind::Ident("weird name".into()));
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("SELECT  x").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 8);
    }

    #[test]
    fn bad_character() {
        assert!(matches!(tokenize("a ; b").unwrap_err(), SqlError::Lex { .. }));
    }
}
