//! Logical planning: pushdown extraction and join recognition.
//!
//! The planner's one real job — the point of the whole paper — is to spot
//! spatial predicates that the two-step imprint engine can evaluate and
//! hand them down instead of filtering row by row:
//!
//! * `ST_Contains(<constant geometry>, ST_Point(p.x, p.y))` (and its
//!   `ST_Within` / `ST_Intersects` spellings) becomes a
//!   [`SpatialPredicate::Within`] pushdown;
//! * `ST_DWithin(ST_Point(p.x, p.y), <constant geometry>, <constant>)`
//!   becomes a [`SpatialPredicate::DWithin`] pushdown;
//! * the same forms with a *vector-table geometry column* in place of the
//!   constant become the join predicate of a [`Plan::SpatialJoin`]: one
//!   two-step index probe per qualifying feature.
//!
//! Everything else stays as a residual filter, so unplanned predicates are
//! still answered correctly — just without index support.

use crate::ast::{BinOp, Expr, SelectStmt};
use crate::catalog::{Catalog, Table};
use crate::error::SqlError;
use crate::exec::eval_const;
use crate::value::SqlValue;
use lidardb_core::{AttrRange, SpatialPredicate};
use lidardb_geom::Geometry;

/// A FROM-table bound against the catalog.
#[derive(Debug, Clone)]
pub struct BoundTable {
    /// Alias used in the query.
    pub alias: String,
    /// Catalog name.
    pub name: String,
    /// Whether it is the point-cloud table.
    pub is_points: bool,
}

/// Scan of the point-cloud table.
#[derive(Debug)]
pub struct PcScan {
    /// The bound table.
    pub table: BoundTable,
    /// Predicate pushed into the two-step engine.
    pub spatial: Option<SpatialPredicate>,
    /// Attribute-range predicates pushed into per-column imprints
    /// (thematic pushdown: imprints index any column, §2.1.1).
    pub attr_ranges: Vec<AttrRange>,
    /// Residual conjunct terms evaluated per row.
    pub residual: Vec<Expr>,
}

/// Scan of a vector table.
#[derive(Debug)]
pub struct VecScan {
    /// The bound table.
    pub table: BoundTable,
    /// Residual conjunct terms evaluated per row.
    pub residual: Vec<Expr>,
}

/// The join predicate connecting a point to a vector feature.
#[derive(Debug, Clone)]
pub enum JoinPred {
    /// `ST_DWithin(ST_Point(p.x, p.y), v.<geom_col>, dist)`.
    DWithin {
        /// Geometry column of the vector table.
        geom_col: String,
        /// The distance.
        dist: f64,
    },
    /// `ST_Contains(v.<geom_col>, ST_Point(p.x, p.y))`.
    ContainsPoint {
        /// Geometry column of the vector table.
        geom_col: String,
    },
}

/// The executable plan shapes.
#[derive(Debug)]
pub enum Plan {
    /// Single point-cloud table.
    PcScan(PcScan),
    /// Single vector table.
    VecScan(VecScan),
    /// Point-cloud × vector-table spatial join.
    SpatialJoin {
        /// Point side (spatial slot unused; the join drives the probes).
        pc: PcScan,
        /// Feature side.
        vec: VecScan,
        /// The join predicate.
        join: JoinPred,
        /// Terms referencing both sides, evaluated on joined pairs.
        pair_residual: Vec<Expr>,
    },
}

impl Plan {
    /// Human-readable plan tree for `EXPLAIN`.
    pub fn describe(&self) -> String {
        match self {
            Plan::PcScan(p) => {
                let mut s = format!("PointCloudScan {} [two-step imprint engine]\n", p.table.alias);
                match &p.spatial {
                    Some(SpatialPredicate::Within(g)) => {
                        s += &format!("  spatial pushdown: WITHIN {}\n", g.type_name())
                    }
                    Some(SpatialPredicate::DWithin(g, d)) => {
                        s += &format!("  spatial pushdown: DWITHIN({}, {d})\n", g.type_name())
                    }
                    None if p.attr_ranges.is_empty() => s += "  full scan (no pushdown)\n",
                    None => s += "  no spatial pushdown\n",
                }
                for a in &p.attr_ranges {
                    s += &format!(
                        "  attribute pushdown: {} in [{}, {}]\n",
                        a.column, a.lo, a.hi
                    );
                }
                for r in &p.residual {
                    s += &format!("  residual: {}\n", r.render());
                }
                s
            }
            Plan::VecScan(v) => {
                let mut s = format!("VectorScan {}\n", v.table.alias);
                for r in &v.residual {
                    s += &format!("  residual: {}\n", r.render());
                }
                s
            }
            Plan::SpatialJoin {
                pc,
                vec,
                join,
                pair_residual,
            } => {
                let mut s = format!(
                    "SpatialJoin ({} x {}) [one index probe per feature]\n",
                    pc.table.alias, vec.table.alias
                );
                s += &match join {
                    JoinPred::DWithin { geom_col, dist } => {
                        format!("  join: ST_DWithin(point, {}.{geom_col}, {dist})\n", vec.table.alias)
                    }
                    JoinPred::ContainsPoint { geom_col } => {
                        format!("  join: ST_Contains({}.{geom_col}, point)\n", vec.table.alias)
                    }
                };
                for r in &vec.residual {
                    s += &format!("  feature filter: {}\n", r.render());
                }
                for r in &pc.residual {
                    s += &format!("  point filter: {}\n", r.render());
                }
                for r in pair_residual {
                    s += &format!("  pair filter: {}\n", r.render());
                }
                s
            }
        }
    }
}

/// Split a predicate into its top-level conjunct terms.
pub fn conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut out = conjuncts(left);
            out.extend(conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// The set of table aliases an expression references (unqualified columns
/// count as referencing `default_alias` when they resolve there).
fn referenced_aliases(e: &Expr, tables: &[BoundTable], catalog: &Catalog) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    e.visit_columns(&mut |tab, name| {
        let alias = match tab {
            Some(t) => Some(t.to_string()),
            None => tables
                .iter()
                .find(|bt| {
                    catalog
                        .columns_of(&bt.name)
                        .map(|cols| cols.iter().any(|c| c == name))
                        .unwrap_or(false)
                })
                .map(|bt| bt.alias.clone()),
        };
        if let Some(a) = alias {
            if !out.contains(&a) {
                out.push(a);
            }
        }
    });
    out
}

/// Whether `e` is `ST_Point(x, y)` over the point table's coordinates.
fn is_pc_point(e: &Expr, pc_alias: &str) -> bool {
    if let Expr::Func { name, args } = e {
        if (name == "ST_POINT" || name == "ST_MAKEPOINT") && args.len() == 2 {
            let is_coord = |a: &Expr, want: &str| {
                matches!(a, Expr::Column { table, name }
                    if name == want && table.as_deref().is_none_or(|t| t == pc_alias))
            };
            return is_coord(&args[0], "x") && is_coord(&args[1], "y");
        }
    }
    false
}

/// Evaluate a constant expression to a geometry, if it is one.
fn const_geom(e: &Expr) -> Option<Geometry> {
    if !e.is_constant() {
        return None;
    }
    match eval_const(e) {
        Ok(SqlValue::Geom(g)) => Some(g),
        _ => None,
    }
}

fn const_num(e: &Expr) -> Option<f64> {
    if !e.is_constant() {
        return None;
    }
    eval_const(e).ok()?.as_f64().ok()
}

/// Whether `e` is a reference to a geometry column of the vector table;
/// returns the column name.
fn vec_geom_col(e: &Expr, vec: &BoundTable, catalog: &Catalog) -> Option<String> {
    if let Expr::Column { table, name } = e {
        let qualified_ok = table.as_deref().is_none_or(|t| t == vec.alias);
        if qualified_ok {
            if let Ok(Table::Vector(vt)) = catalog.table(&vec.name) {
                if vt.has_column(name) {
                    return Some(name.clone());
                }
            }
        }
    }
    None
}

/// Try to turn one conjunct into a constant-geometry spatial pushdown.
fn extract_spatial(term: &Expr, pc_alias: &str) -> Option<SpatialPredicate> {
    let Expr::Func { name, args } = term else {
        return None;
    };
    match (name.as_str(), args.len()) {
        ("ST_CONTAINS", 2) => {
            let g = const_geom(&args[0])?;
            is_pc_point(&args[1], pc_alias).then_some(SpatialPredicate::Within(g))
        }
        ("ST_WITHIN", 2) => {
            let g = const_geom(&args[1])?;
            is_pc_point(&args[0], pc_alias).then_some(SpatialPredicate::Within(g))
        }
        ("ST_INTERSECTS", 2) => {
            // For a point argument, intersects == contains.
            if is_pc_point(&args[0], pc_alias) {
                const_geom(&args[1]).map(SpatialPredicate::Within)
            } else if is_pc_point(&args[1], pc_alias) {
                const_geom(&args[0]).map(SpatialPredicate::Within)
            } else {
                None
            }
        }
        ("ST_DWITHIN", 3) => {
            let d = const_num(&args[2])?;
            if is_pc_point(&args[0], pc_alias) {
                const_geom(&args[1]).map(|g| SpatialPredicate::DWithin(g, d))
            } else if is_pc_point(&args[1], pc_alias) {
                const_geom(&args[0]).map(|g| SpatialPredicate::DWithin(g, d))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Try to turn one conjunct into an attribute-range pushdown over a
/// point-table column. Returns the range plus whether it is *exact*
/// (inclusive operators: the term can be dropped) or merely a widened
/// filter (strict `<` / `>`: the term must also stay as a residual).
fn extract_attr_range(
    term: &Expr,
    pc: &BoundTable,
    catalog: &Catalog,
) -> Option<(AttrRange, bool)> {
    // The column must belong to the point table.
    let col_of = |e: &Expr| -> Option<String> {
        if let Expr::Column { table, name } = e {
            let qualified_ok = table.as_deref().is_none_or(|t| t == pc.alias);
            if qualified_ok
                && catalog
                    .columns_of(&pc.name)
                    .map(|cols| cols.iter().any(|c| c == name))
                    .unwrap_or(false)
            {
                return Some(name.clone());
            }
        }
        None
    };
    match term {
        Expr::Between { expr, lo, hi } => {
            let col = col_of(expr)?;
            Some((AttrRange::new(col, const_num(lo)?, const_num(hi)?), true))
        }
        Expr::Binary { op, left, right } => {
            // Normalise to  column <op> constant.
            let (col, c, op) = if let Some(col) = col_of(left) {
                (col, const_num(right)?, *op)
            } else if let Some(col) = col_of(right) {
                let flipped = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::Le => BinOp::Ge,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::Ge => BinOp::Le,
                    other => *other,
                };
                (col, const_num(left)?, flipped)
            } else {
                return None;
            };
            match op {
                BinOp::Eq => Some((AttrRange::new(col, c, c), true)),
                BinOp::Le => Some((AttrRange::new(col, f64::NEG_INFINITY, c), true)),
                BinOp::Ge => Some((AttrRange::new(col, c, f64::INFINITY), true)),
                // Strict bounds: widen for the index, keep the term exact.
                BinOp::Lt => Some((AttrRange::new(col, f64::NEG_INFINITY, c), false)),
                BinOp::Gt => Some((AttrRange::new(col, c, f64::INFINITY), false)),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Try to turn one conjunct into a point×vector join predicate.
fn extract_join(
    term: &Expr,
    pc_alias: &str,
    vec: &BoundTable,
    catalog: &Catalog,
) -> Option<JoinPred> {
    let Expr::Func { name, args } = term else {
        return None;
    };
    match (name.as_str(), args.len()) {
        ("ST_DWITHIN", 3) => {
            let dist = const_num(&args[2])?;
            if is_pc_point(&args[0], pc_alias) {
                vec_geom_col(&args[1], vec, catalog).map(|geom_col| JoinPred::DWithin {
                    geom_col,
                    dist,
                })
            } else if is_pc_point(&args[1], pc_alias) {
                vec_geom_col(&args[0], vec, catalog).map(|geom_col| JoinPred::DWithin {
                    geom_col,
                    dist,
                })
            } else {
                None
            }
        }
        ("ST_CONTAINS", 2) => {
            let geom_col = vec_geom_col(&args[0], vec, catalog)?;
            is_pc_point(&args[1], pc_alias).then_some(JoinPred::ContainsPoint { geom_col })
        }
        ("ST_WITHIN", 2) => {
            let geom_col = vec_geom_col(&args[1], vec, catalog)?;
            is_pc_point(&args[0], pc_alias).then_some(JoinPred::ContainsPoint { geom_col })
        }
        _ => None,
    }
}

/// Build the executable plan for a SELECT.
pub fn plan_select(catalog: &Catalog, stmt: &SelectStmt) -> Result<Plan, SqlError> {
    // Bind tables.
    let mut tables = Vec::new();
    for t in &stmt.from {
        let is_points = matches!(
            catalog.table(&t.name)?,
            Table::Points(_) | Table::Stream(_) | Table::Tiled(_)
        );
        tables.push(BoundTable {
            alias: t.alias.clone(),
            name: t.name.clone(),
            is_points,
        });
    }
    let terms = stmt
        .where_clause
        .as_ref()
        .map(conjuncts)
        .unwrap_or_default();

    match tables.len() {
        1 => {
            let table = tables.pop().expect("one table");
            if table.is_points {
                let mut spatial = None;
                let mut attr_ranges = Vec::new();
                let mut residual = Vec::new();
                for term in terms {
                    if spatial.is_none() {
                        if let Some(p) = extract_spatial(&term, &table.alias) {
                            spatial = Some(p);
                            continue;
                        }
                    }
                    if let Some((range, exact)) = extract_attr_range(&term, &table, catalog) {
                        attr_ranges.push(range);
                        if exact {
                            continue;
                        }
                    }
                    residual.push(term);
                }
                Ok(Plan::PcScan(PcScan {
                    table,
                    spatial,
                    attr_ranges,
                    residual,
                }))
            } else {
                Ok(Plan::VecScan(VecScan {
                    table,
                    residual: terms,
                }))
            }
        }
        2 => {
            let (pc_t, vec_t) = match (tables[0].is_points, tables[1].is_points) {
                (true, false) => (tables[0].clone(), tables[1].clone()),
                (false, true) => (tables[1].clone(), tables[0].clone()),
                (true, true) => {
                    return Err(SqlError::Plan(
                        "joining two point-cloud tables is not supported".into(),
                    ))
                }
                (false, false) => {
                    return Err(SqlError::Plan(
                        "vector-vector joins are not supported".into(),
                    ))
                }
            };
            let mut join = None;
            let mut pc_residual = Vec::new();
            let mut pc_attr_ranges = Vec::new();
            let mut vec_residual = Vec::new();
            let mut pair_residual = Vec::new();
            for term in terms {
                if join.is_none() {
                    if let Some(j) = extract_join(&term, &pc_t.alias, &vec_t, catalog) {
                        join = Some(j);
                        continue;
                    }
                }
                let refs = referenced_aliases(&term, &tables, catalog);
                let touches_pc = refs.contains(&pc_t.alias);
                let touches_vec = refs.contains(&vec_t.alias);
                match (touches_pc, touches_vec) {
                    (true, false) => {
                        if let Some((range, exact)) = extract_attr_range(&term, &pc_t, catalog) {
                            pc_attr_ranges.push(range);
                            if exact {
                                continue;
                            }
                        }
                        pc_residual.push(term);
                    }
                    (false, true) => vec_residual.push(term),
                    _ => pair_residual.push(term),
                }
            }
            let join = join.ok_or_else(|| {
                SqlError::Plan(
                    "a point-cloud/vector join needs an ST_DWithin or ST_Contains \
                     predicate over ST_Point(x, y) and the feature geometry"
                        .into(),
                )
            })?;
            Ok(Plan::SpatialJoin {
                pc: PcScan {
                    table: pc_t,
                    spatial: None,
                    attr_ranges: pc_attr_ranges,
                    residual: pc_residual,
                },
                vec: VecScan {
                    table: vec_t,
                    residual: vec_residual,
                },
                join,
                pair_residual,
            })
        }
        0 => Err(SqlError::Plan("FROM clause is required".into())),
        n => Err(SqlError::Plan(format!("{n}-table joins are not supported"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{VColumn, VectorTable};
    use crate::parser::parse;
    use lidardb_geom::Point;
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_pointcloud("points", Arc::new(lidardb_core::PointCloud::new()));
        c.register_vector(
            "roads",
            VectorTable::new()
                .with_column("id", VColumn::Int(vec![1]))
                .with_column("class", VColumn::Str(vec!["motorway".into()]))
                .with_column(
                    "geom",
                    VColumn::Geom(vec![Geometry::Point(Point::new(0.0, 0.0))]),
                ),
        );
        c
    }

    fn plan(sql: &str) -> Plan {
        let crate::ast::Statement::Select(s) = parse(sql).unwrap() else {
            panic!()
        };
        plan_select(&catalog(), &s).unwrap()
    }

    #[test]
    fn contains_pushdown() {
        let p = plan(
            "SELECT * FROM points WHERE \
             ST_Contains(ST_MakeEnvelope(0, 0, 10, 10), ST_Point(x, y))",
        );
        match p {
            Plan::PcScan(scan) => {
                assert!(matches!(scan.spatial, Some(SpatialPredicate::Within(_))));
                assert!(scan.residual.is_empty());
            }
            other => panic!("wrong plan {other:?}"),
        }
    }

    #[test]
    fn dwithin_pushdown_with_residual() {
        let p = plan(
            "SELECT * FROM points p WHERE \
             ST_DWithin(ST_Point(p.x, p.y), ST_GeomFromText('LINESTRING (0 0, 1 1)'), 5) \
             AND classification = 6",
        );
        match p {
            Plan::PcScan(scan) => {
                match scan.spatial {
                    Some(SpatialPredicate::DWithin(_, d)) => assert_eq!(d, 5.0),
                    other => panic!("wrong pushdown {other:?}"),
                }
                // classification = 6 is now an attribute pushdown, fully
                // absorbed by the imprint probe (no residual needed).
                assert_eq!(
                    scan.attr_ranges,
                    vec![AttrRange::new("classification", 6.0, 6.0)]
                );
                assert!(scan.residual.is_empty());
            }
            other => panic!("wrong plan {other:?}"),
        }
    }

    #[test]
    fn no_pushdown_without_constant_geometry() {
        let p = plan("SELECT * FROM points WHERE z > 5");
        match p {
            Plan::PcScan(scan) => {
                assert!(scan.spatial.is_none());
                assert_eq!(scan.residual.len(), 1);
            }
            other => panic!("wrong plan {other:?}"),
        }
    }

    #[test]
    fn spatial_join_recognised() {
        let p = plan(
            "SELECT COUNT(*) FROM points p, roads r WHERE \
             ST_DWithin(ST_Point(p.x, p.y), r.geom, 50) AND r.class = 'motorway' \
             AND p.classification = 2",
        );
        match p {
            Plan::SpatialJoin {
                pc,
                vec,
                join,
                pair_residual,
            } => {
                match join {
                    JoinPred::DWithin { geom_col, dist } => {
                        assert_eq!(geom_col, "geom");
                        assert_eq!(dist, 50.0);
                    }
                    other => panic!("wrong join {other:?}"),
                }
                assert_eq!(vec.residual.len(), 1, "r.class filter on feature side");
                assert_eq!(
                    pc.attr_ranges,
                    vec![AttrRange::new("classification", 2.0, 2.0)],
                    "classification filter pushed into imprints on the point side"
                );
                assert!(pc.residual.is_empty());
                assert!(pair_residual.is_empty());
            }
            other => panic!("wrong plan {other:?}"),
        }
    }

    #[test]
    fn contains_join_recognised() {
        let p = plan(
            "SELECT COUNT(*) FROM points p, roads r WHERE \
             ST_Contains(r.geom, ST_Point(p.x, p.y))",
        );
        assert!(matches!(
            p,
            Plan::SpatialJoin {
                join: JoinPred::ContainsPoint { .. },
                ..
            }
        ));
    }

    #[test]
    fn join_without_spatial_predicate_rejected() {
        let crate::ast::Statement::Select(s) =
            parse("SELECT COUNT(*) FROM points p, roads r WHERE r.id = 1").unwrap()
        else {
            panic!()
        };
        assert!(matches!(
            plan_select(&catalog(), &s),
            Err(SqlError::Plan(_))
        ));
    }

    #[test]
    fn unknown_table_rejected() {
        let crate::ast::Statement::Select(s) = parse("SELECT * FROM nope").unwrap() else {
            panic!()
        };
        assert!(plan_select(&catalog(), &s).is_err());
    }

    #[test]
    fn vec_scan_plan() {
        let p = plan("SELECT * FROM roads WHERE class = 'motorway'");
        match p {
            Plan::VecScan(scan) => assert_eq!(scan.residual.len(), 1),
            other => panic!("wrong plan {other:?}"),
        }
    }

    #[test]
    fn describe_mentions_pushdown() {
        let p = plan(
            "SELECT * FROM points WHERE \
             ST_Contains(ST_MakeEnvelope(0, 0, 10, 10), ST_Point(x, y))",
        );
        let d = p.describe();
        assert!(d.contains("spatial pushdown"));
        assert!(d.contains("two-step"));
    }

    #[test]
    fn attr_range_forms() {
        // BETWEEN and >= are exact pushdowns; strict > keeps a residual.
        let p = plan("SELECT * FROM points WHERE z BETWEEN 1 AND 5 AND intensity >= 100");
        match p {
            Plan::PcScan(scan) => {
                assert_eq!(scan.attr_ranges.len(), 2);
                assert_eq!(scan.attr_ranges[0], AttrRange::new("z", 1.0, 5.0));
                assert_eq!(
                    scan.attr_ranges[1],
                    AttrRange::new("intensity", 100.0, f64::INFINITY)
                );
                assert!(scan.residual.is_empty());
            }
            other => panic!("wrong plan {other:?}"),
        }
        let p = plan("SELECT * FROM points WHERE z > 5");
        match p {
            Plan::PcScan(scan) => {
                assert_eq!(scan.attr_ranges.len(), 1, "widened range for the index");
                assert_eq!(scan.residual.len(), 1, "strict bound stays exact");
            }
            other => panic!("wrong plan {other:?}"),
        }
        // Reversed operand order flips the operator.
        let p = plan("SELECT * FROM points WHERE 10 >= z");
        match p {
            Plan::PcScan(scan) => {
                assert_eq!(scan.attr_ranges[0], AttrRange::new("z", f64::NEG_INFINITY, 10.0));
                assert!(scan.residual.is_empty());
            }
            other => panic!("wrong plan {other:?}"),
        }
        // Column-vs-column comparisons are not pushable.
        let p = plan("SELECT * FROM points WHERE z > x");
        match p {
            Plan::PcScan(scan) => {
                assert!(scan.attr_ranges.is_empty());
                assert_eq!(scan.residual.len(), 1);
            }
            other => panic!("wrong plan {other:?}"),
        }
    }

    #[test]
    fn conjunct_splitting() {
        let crate::ast::Statement::Select(s) =
            parse("SELECT * FROM points WHERE a = 1 AND (b = 2 OR c = 3) AND d = 4").unwrap()
        else {
            panic!()
        };
        let terms = conjuncts(s.where_clause.as_ref().unwrap());
        assert_eq!(terms.len(), 3);
    }
}
