//! The OGC Simple Features function library (plus a few scalar helpers).
//!
//! These are the `ST_*` functions MonetDB's geom module exposes through
//! its "SQL interface to the Simple Features Access standard of the OGC"
//! (§3.3) — the vocabulary of every demo query.

use lidardb_geom::{
    contains_point, distance_point, dwithin_point, intersects, wkt, Envelope, Geometry, Point,
    Polygon,
};

use crate::error::SqlError;
use crate::value::SqlValue;

/// Evaluate a (non-aggregate) function call.
pub fn call(name: &str, args: &[SqlValue]) -> Result<SqlValue, SqlError> {
    let argc = |n: usize| -> Result<(), SqlError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(SqlError::Exec(format!(
                "{name} expects {n} arguments, got {}",
                args.len()
            )))
        }
    };
    match name {
        "ST_POINT" | "ST_MAKEPOINT" => {
            argc(2)?;
            Ok(SqlValue::Geom(Geometry::Point(Point::new(
                args[0].as_f64()?,
                args[1].as_f64()?,
            ))))
        }
        "ST_MAKEENVELOPE" => {
            argc(4)?;
            let env = Envelope::new(
                args[0].as_f64()?,
                args[1].as_f64()?,
                args[2].as_f64()?,
                args[3].as_f64()?,
            )
            .map_err(|e| SqlError::Exec(e.to_string()))?;
            Ok(SqlValue::Geom(Geometry::Polygon(Polygon::rectangle(&env))))
        }
        "ST_GEOMFROMTEXT" => {
            argc(1)?;
            match &args[0] {
                SqlValue::Str(s) => Ok(SqlValue::Geom(
                    wkt::parse_wkt(s).map_err(|e| SqlError::Exec(e.to_string()))?,
                )),
                other => Err(SqlError::Exec(format!(
                    "ST_GeomFromText expects a string, got {}",
                    other.type_name()
                ))),
            }
        }
        "ST_ASTEXT" => {
            argc(1)?;
            Ok(SqlValue::Str(wkt::to_wkt(args[0].as_geom()?)))
        }
        "ST_CONTAINS" => {
            argc(2)?;
            let g = args[0].as_geom()?;
            match args[1].as_geom()? {
                Geometry::Point(p) => Ok(SqlValue::Bool(contains_point(g, p))),
                other => Ok(SqlValue::Bool(intersects_contained(g, other))),
            }
        }
        "ST_WITHIN" => {
            argc(2)?;
            // ST_Within(a, b) == ST_Contains(b, a).
            let g = args[1].as_geom()?;
            match args[0].as_geom()? {
                Geometry::Point(p) => Ok(SqlValue::Bool(contains_point(g, p))),
                other => Ok(SqlValue::Bool(intersects_contained(g, other))),
            }
        }
        "ST_INTERSECTS" => {
            argc(2)?;
            Ok(SqlValue::Bool(intersects(
                args[0].as_geom()?,
                args[1].as_geom()?,
            )))
        }
        "ST_DWITHIN" => {
            argc(3)?;
            let d = args[2].as_f64()?;
            let (a, b) = (args[0].as_geom()?, args[1].as_geom()?);
            // Support the common point-vs-geometry forms exactly; general
            // geometry pairs fall back to vertex distance over the smaller
            // side (adequate for the feature tables of the demo).
            match (a, b) {
                (Geometry::Point(p), g) | (g, Geometry::Point(p)) => {
                    Ok(SqlValue::Bool(dwithin_point(g, p, d)))
                }
                (a, b) => {
                    let within = a
                        .vertices()
                        .any(|p| dwithin_point(b, &p, d))
                        || b.vertices().any(|p| dwithin_point(a, &p, d))
                        || intersects(a, b);
                    Ok(SqlValue::Bool(within))
                }
            }
        }
        "ST_DISTANCE" => {
            argc(2)?;
            let (a, b) = (args[0].as_geom()?, args[1].as_geom()?);
            match (a, b) {
                (Geometry::Point(p), g) | (g, Geometry::Point(p)) => {
                    Ok(SqlValue::Float(distance_point(g, p)))
                }
                (a, b) => {
                    if intersects(a, b) {
                        return Ok(SqlValue::Float(0.0));
                    }
                    let d = a
                        .vertices()
                        .map(|p| distance_point(b, &p))
                        .chain(b.vertices().map(|p| distance_point(a, &p)))
                        .fold(f64::INFINITY, f64::min);
                    Ok(SqlValue::Float(d))
                }
            }
        }
        "ST_X" => {
            argc(1)?;
            match args[0].as_geom()? {
                Geometry::Point(p) => Ok(SqlValue::Float(p.x)),
                _ => Err(SqlError::Exec("ST_X expects a point".into())),
            }
        }
        "ST_Y" => {
            argc(1)?;
            match args[0].as_geom()? {
                Geometry::Point(p) => Ok(SqlValue::Float(p.y)),
                _ => Err(SqlError::Exec("ST_Y expects a point".into())),
            }
        }
        "ST_AREA" => {
            argc(1)?;
            Ok(SqlValue::Float(match args[0].as_geom()? {
                Geometry::Polygon(p) => p.area(),
                Geometry::MultiPolygon(mp) => mp.area(),
                _ => 0.0,
            }))
        }
        "ST_LENGTH" => {
            argc(1)?;
            Ok(SqlValue::Float(match args[0].as_geom()? {
                Geometry::LineString(ls) => ls.length(),
                _ => 0.0,
            }))
        }
        "ST_BUFFER" => {
            argc(2)?;
            let g = args[0].as_geom()?;
            let d = args[1].as_f64()?;
            Ok(SqlValue::Geom(
                lidardb_geom::buffer_geometry(g, d).map_err(|e| SqlError::Exec(e.to_string()))?,
            ))
        }
        "ST_ENVELOPE" => {
            argc(1)?;
            let g = args[0].as_geom()?;
            let env = g
                .envelope()
                .ok_or_else(|| SqlError::Exec("ST_Envelope of an empty geometry".into()))?;
            Ok(SqlValue::Geom(Geometry::Polygon(Polygon::rectangle(&env))))
        }
        "ST_NUMPOINTS" => {
            argc(1)?;
            Ok(SqlValue::Int(args[0].as_geom()?.vertices().count() as i64))
        }
        "ABS" => {
            argc(1)?;
            Ok(SqlValue::Float(args[0].as_f64()?.abs()))
        }
        "SQRT" => {
            argc(1)?;
            Ok(SqlValue::Float(args[0].as_f64()?.sqrt()))
        }
        "FLOOR" => {
            argc(1)?;
            Ok(SqlValue::Float(args[0].as_f64()?.floor()))
        }
        "CEIL" | "CEILING" => {
            argc(1)?;
            Ok(SqlValue::Float(args[0].as_f64()?.ceil()))
        }
        "ROUND" => {
            argc(1)?;
            Ok(SqlValue::Float(args[0].as_f64()?.round()))
        }
        other => Err(SqlError::Exec(format!("unknown function {other}"))),
    }
}

/// "Contains" for non-point arguments: every vertex of `inner` contained
/// and the boundaries intersect or inner fully inside — approximated as
/// all vertices contained (exact for convex outers; documented subset).
fn intersects_contained(outer: &Geometry, inner: &Geometry) -> bool {
    let mut any = false;
    for v in inner.vertices() {
        any = true;
        if !contains_point(outer, &v) {
            return false;
        }
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(wkt_str: &str) -> SqlValue {
        call("ST_GEOMFROMTEXT", &[SqlValue::Str(wkt_str.into())]).unwrap()
    }

    #[test]
    fn constructors() {
        let p = call("ST_POINT", &[SqlValue::Float(1.0), SqlValue::Int(2)]).unwrap();
        assert_eq!(
            p,
            SqlValue::Geom(Geometry::Point(Point::new(1.0, 2.0)))
        );
        let env = call(
            "ST_MAKEENVELOPE",
            &[
                SqlValue::Float(0.0),
                SqlValue::Float(0.0),
                SqlValue::Float(10.0),
                SqlValue::Float(10.0),
            ],
        )
        .unwrap();
        assert!(matches!(env, SqlValue::Geom(Geometry::Polygon(_))));
        assert!(call("ST_GEOMFROMTEXT", &[SqlValue::Str("NOT WKT".into())]).is_err());
        assert!(call("ST_POINT", &[SqlValue::Float(1.0)]).is_err());
    }

    #[test]
    fn predicates() {
        let region = geom("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        let inside = call("ST_POINT", &[SqlValue::Float(5.0), SqlValue::Float(5.0)]).unwrap();
        let outside = call("ST_POINT", &[SqlValue::Float(50.0), SqlValue::Float(5.0)]).unwrap();
        assert_eq!(
            call("ST_CONTAINS", &[region.clone(), inside.clone()]).unwrap(),
            SqlValue::Bool(true)
        );
        assert_eq!(
            call("ST_CONTAINS", &[region.clone(), outside.clone()]).unwrap(),
            SqlValue::Bool(false)
        );
        assert_eq!(
            call("ST_WITHIN", &[inside.clone(), region.clone()]).unwrap(),
            SqlValue::Bool(true)
        );
        let line = geom("LINESTRING (-5 5, 15 5)");
        assert_eq!(
            call("ST_INTERSECTS", &[region.clone(), line]).unwrap(),
            SqlValue::Bool(true)
        );
    }

    #[test]
    fn distance_family() {
        let road = geom("LINESTRING (0 0, 100 0)");
        let p = call("ST_POINT", &[SqlValue::Float(50.0), SqlValue::Float(3.0)]).unwrap();
        assert_eq!(
            call("ST_DISTANCE", &[road.clone(), p.clone()]).unwrap(),
            SqlValue::Float(3.0)
        );
        assert_eq!(
            call(
                "ST_DWITHIN",
                &[p.clone(), road.clone(), SqlValue::Float(3.0)]
            )
            .unwrap(),
            SqlValue::Bool(true)
        );
        assert_eq!(
            call("ST_DWITHIN", &[p, road, SqlValue::Float(2.9)]).unwrap(),
            SqlValue::Bool(false)
        );
    }

    #[test]
    fn accessors_and_metrics() {
        let p = call("ST_POINT", &[SqlValue::Float(3.0), SqlValue::Float(4.0)]).unwrap();
        assert_eq!(call("ST_X", std::slice::from_ref(&p)).unwrap(), SqlValue::Float(3.0));
        assert_eq!(call("ST_Y", &[p]).unwrap(), SqlValue::Float(4.0));
        let sq = geom("POLYGON ((0 0, 4 0, 4 3, 0 3, 0 0))");
        assert_eq!(call("ST_AREA", &[sq]).unwrap(), SqlValue::Float(12.0));
        let line = geom("LINESTRING (0 0, 3 4)");
        assert_eq!(call("ST_LENGTH", &[line]).unwrap(), SqlValue::Float(5.0));
    }

    #[test]
    fn wkt_io() {
        let g = geom("POINT (1 2)");
        assert_eq!(
            call("ST_ASTEXT", &[g]).unwrap(),
            SqlValue::Str("POINT (1 2)".into())
        );
    }

    #[test]
    fn scalar_helpers() {
        assert_eq!(
            call("ABS", &[SqlValue::Float(-2.5)]).unwrap(),
            SqlValue::Float(2.5)
        );
        assert_eq!(
            call("SQRT", &[SqlValue::Int(16)]).unwrap(),
            SqlValue::Float(4.0)
        );
        assert_eq!(
            call("ROUND", &[SqlValue::Float(2.5)]).unwrap(),
            SqlValue::Float(3.0)
        );
    }

    #[test]
    fn unknown_function() {
        assert!(call("ST_TELEPORT", &[]).is_err());
    }

    #[test]
    fn type_errors() {
        assert!(call("ST_X", &[SqlValue::Int(1)]).is_err());
        assert!(call("ST_CONTAINS", &[SqlValue::Int(1), SqlValue::Int(2)]).is_err());
    }
}
