//! Regenerate the paper's two figures with the QGIS stand-in renderer:
//!
//! * Figure 1 — the LIDAR point cloud, elevation-coloured and hillshaded,
//!   written to `out/figure1_ahn2.ppm`;
//! * Figure 2 — roads, rivers and land cover from the OSM-like and
//!   Urban-Atlas-like layers, written to `out/figure2_osm_ua.svg`.
//!
//! Run with: `cargo run --release --example render_maps`

use lidardb::prelude::*;
use lidardb::viz::colormap::{self, classification_color, elevation_color};
use lidardb::viz::{Raster, SvgMap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all("out")?;
    let scene = Scene::generate(SceneConfig {
        seed: 2015,
        origin: (0.0, 0.0),
        extent_m: 1500.0,
    });
    let tiles = TileSet::generate(&scene, 3, 1.2);
    let env = *scene.envelope();

    // ---- Figure 1: elevation-coloured point cloud --------------------------
    let (z_min, z_max) = tiles
        .tiles()
        .iter()
        .flat_map(|t| t.records.iter().map(|r| r.z))
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), z| {
            (lo.min(z), hi.max(z))
        });
    let mut fig1 = Raster::new(900, 900, env, (248, 248, 244));
    for tile in tiles.tiles() {
        for r in &tile.records {
            let base = elevation_color(r.z, z_min, z_max);
            // Cheap hillshade: sample the terrain gradient at the point.
            let t = scene.terrain();
            let shade = colormap::hillshade(
                t.height(r.x, r.y),
                t.height(r.x + 2.0, r.y),
                t.height(r.x, r.y + 2.0),
                2.0,
            );
            fig1.plot(r.x, r.y, colormap::shaded(base, shade + 0.25));
        }
    }
    fig1.write_ppm("out/figure1_ahn2.ppm")?;
    println!(
        "figure 1: {} points, z in [{z_min:.1}, {z_max:.1}] m -> out/figure1_ahn2.ppm",
        tiles.num_points()
    );

    // ---- Figure 1b (bonus): classification map -----------------------------
    let mut fig1b = Raster::new(900, 900, env, (248, 248, 244));
    for tile in tiles.tiles() {
        for r in &tile.records {
            fig1b.plot(r.x, r.y, classification_color(r.classification));
        }
    }
    fig1b.write_ppm("out/figure1b_classification.ppm")?;
    println!("figure 1b: classification map -> out/figure1b_classification.ppm");

    // ---- Figure 2: layered vector map ---------------------------------------
    let mut fig2 = SvgMap::new(900, 900, env);
    // Land cover first (fills)...
    for zone in scene.zones() {
        let fill = match zone.class.code() {
            11100 => (220, 130, 130), // urban fabric
            12210 => (120, 120, 130), // fast transit corridor
            14100 => (150, 210, 150), // green urban
            23000 => (210, 230, 170), // pastures
            31000 => (90, 160, 90),   // forest
            50000 => (150, 190, 235), // water
            _ => (200, 200, 200),
        };
        fig2.add_polygon(&zone.polygon, fill, 0.75);
    }
    // ...then rivers and roads (strokes)...
    for river in scene.rivers() {
        fig2.add_polyline(&river.geometry, (60, 120, 210), 5.0);
    }
    for road in scene.roads() {
        let (color, width) = match road.class {
            RoadClassTag::Motorway => ((230, 120, 30), 5.0),
            RoadClassTag::Primary => ((250, 210, 90), 3.0),
            RoadClassTag::Residential => ((255, 255, 255), 1.5),
        };
        fig2.add_polyline(&road.geometry, color, width);
    }
    // ...and POIs with labels on top.
    for poi in scene.pois() {
        fig2.add_point(&poi.location, (160, 30, 140), 4.0);
        fig2.add_label(
            &lidardb::geom::Point::new(poi.location.x + 8.0, poi.location.y),
            &poi.name,
            11.0,
        );
    }
    fig2.write("out/figure2_osm_ua.svg")?;
    println!(
        "figure 2: {} zones, {} roads, {} rivers, {} POIs -> out/figure2_osm_ua.svg",
        scene.zones().len(),
        scene.roads().len(),
        scene.rivers().len(),
        scene.pois().len()
    );
    Ok(())
}

use lidardb::datagen::RoadClass as RoadClassTag;
