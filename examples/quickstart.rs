//! Quickstart: generate a synthetic LIDAR scan, bulk-load it, and query it
//! through both the native two-step engine and SQL.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use lidardb::prelude::*;
use lidardb::{scene_catalog, write_scene_tiles};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 1 km² synthetic Dutch municipality at 1 pt/m² (≈1M points).
    let scene = Scene::generate(SceneConfig {
        seed: 2015,
        origin: (120_000.0, 480_000.0), // RD-like coordinates, like AHN2
        extent_m: 1000.0,
    });
    println!("scene: {:?}", scene.envelope());

    // 2. Write it out as a directory of laz-lite tiles (the AHN2 shape).
    let dir = std::env::temp_dir().join("lidardb_quickstart_tiles");
    let _ = std::fs::remove_dir_all(&dir);
    let paths = write_scene_tiles(&scene, &dir, 4, 1.0, Compression::LazLite)?;
    println!("wrote {} tiles to {}", paths.len(), dir.display());

    // 3. Bulk-load with the paper's binary loader (parallel decode,
    //    per-column binary dumps, COPY BINARY appends).
    let mut pc = PointCloud::new();
    let stats = Loader::new(LoadMethod::Binary).load_files(&mut pc, &paths)?;
    println!(
        "loaded {} points from {} files in {:.2}s ({:.1} Mpts/s)",
        stats.points,
        stats.files,
        stats.wall_seconds,
        stats.points_per_second() / 1e6
    );

    // 4. A rectangular selection through the two-step engine. The first
    //    query triggers the lazy imprint build on x and y (§3.2 of the
    //    paper).
    let env = scene.envelope();
    let window = Envelope::new(
        env.min_x + 200.0,
        env.min_y + 200.0,
        env.min_x + 450.0,
        env.min_y + 450.0,
    )?;
    let pred = SpatialPredicate::Within(Geometry::Polygon(Polygon::rectangle(&window)));
    let sel = pc.select(&pred)?;
    println!(
        "\nselect points in a 250m x 250m window -> {} points",
        sel.rows.len()
    );
    println!("{}", sel.explain.to_table());

    // 5. Storage accounting: the imprints overhead the paper quotes as
    //    5-12%.
    for (col, s) in pc.imprint_stats() {
        println!(
            "imprints[{col}]: {} bytes over {} ({:.1}% overhead, {:.0}x vector compression)",
            s.index_bytes,
            s.column_bytes,
            s.overhead() * 100.0,
            s.vector_compression()
        );
    }

    // 6. The same question in SQL, plus a thematic twist.
    let catalog = scene_catalog(Arc::new(pc), &scene);
    let sql = format!(
        "SELECT classification, COUNT(*) AS n, AVG(z) AS mean_z \
         FROM points \
         WHERE ST_Contains(ST_MakeEnvelope({}, {}, {}, {}), ST_Point(x, y)) \
         GROUP BY classification ORDER BY n DESC",
        window.min_x, window.min_y, window.max_x, window.max_y
    );
    println!("\n> {sql}");
    let rs = lidardb::sql::query(&catalog, &sql)?;
    print!("{}", rs.render());
    print!("{}", rs.render_trace());
    Ok(())
}
