//! Demonstration scenario 2 (§4.2 of the paper): ad-hoc queries across
//! multiple datasets — LIDAR points, OSM-like roads and Urban-Atlas-like
//! land use — including the two pre-defined queries the paper names and
//! the per-operator EXPLAIN view it shows the audience.
//!
//! Run with: `cargo run --release --example scenario2_adhoc_queries`

use std::sync::Arc;

use lidardb::prelude::*;
use lidardb::scene_catalog;

fn run(catalog: &Catalog, sql: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n> {sql}");
    let rs = lidardb::sql::query(catalog, sql)?;
    print!("{}", rs.render());
    print!("{}", rs.render_trace());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = Scene::generate(SceneConfig {
        seed: 42,
        origin: (0.0, 0.0),
        extent_m: 1000.0,
    });
    let tiles = TileSet::generate(&scene, 3, 1.0);
    let mut pc = PointCloud::new();
    for tile in tiles.tiles() {
        pc.append_records(&tile.records)?;
    }
    println!("loaded {} points + vector layers", pc.num_points());
    let catalog = scene_catalog(Arc::new(pc), &scene);

    // Pre-defined query 1 (verbatim from the paper): "select all LIDAR
    // points that are near a given area that is characterised as a fast
    // transit road according to the Urban Atlas nomenclature".
    run(
        &catalog,
        "SELECT COUNT(*) AS points_near_fast_transit \
         FROM points p, ua z \
         WHERE ST_DWithin(ST_Point(p.x, p.y), z.geom, 25) AND z.code = 12210",
    )?;

    // Pre-defined query 2: "compute the average elevation of the LIDAR
    // points that are near a given area that is characterised as a fast
    // transit road".
    run(
        &catalog,
        "SELECT AVG(p.z) AS avg_elevation, MIN(p.z) AS min_z, MAX(p.z) AS max_z \
         FROM points p, ua z \
         WHERE ST_DWithin(ST_Point(p.x, p.y), z.geom, 25) AND z.code = 12210",
    )?;

    // Thematic + spatial mix: water returns near the river, per the OSM
    // river geometry rather than the UA zone.
    run(
        &catalog,
        "SELECT COUNT(*) AS water_returns \
         FROM points p, rivers r \
         WHERE ST_DWithin(ST_Point(p.x, p.y), r.geom, 12) AND p.classification = 9",
    )?;

    // Land-use profile of the whole scan: which UA class do building
    // returns fall into?
    run(
        &catalog,
        "SELECT z.label, COUNT(*) AS building_returns \
         FROM points p, ua z \
         WHERE ST_Contains(z.geom, ST_Point(p.x, p.y)) AND p.classification = 6 \
         GROUP BY z.label ORDER BY building_returns DESC",
    )?;

    // The demo lets users see the query plan: EXPLAIN shows the pushdown.
    println!("\n> EXPLAIN of the fast-transit query:");
    let rs = lidardb::sql::query(
        &catalog,
        "EXPLAIN SELECT COUNT(*) FROM points p, ua z \
         WHERE ST_DWithin(ST_Point(p.x, p.y), z.geom, 25) AND z.code = 12210",
    )?;
    for row in &rs.rows {
        println!("{}", row[0].render());
    }
    Ok(())
}
