//! Demonstration scenario 1 (§4.1 of the paper): functional and
//! performance comparison of the file-based approach (LAStools-like) and
//! the DBMS approach (flat table + imprints) on the same predefined
//! queries — "select all LIDAR points within a given region" and "select
//! all roads that intersect a given region".
//!
//! Run with: `cargo run --release --example scenario1_file_vs_db`

use std::sync::Arc;
use std::time::Instant;

use lidardb::prelude::*;
use lidardb::{scene_catalog, write_scene_tiles};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = Scene::generate(SceneConfig {
        seed: 41,
        origin: (0.0, 0.0),
        extent_m: 1200.0,
    });
    let dir = std::env::temp_dir().join("lidardb_scenario1_tiles");
    let _ = std::fs::remove_dir_all(&dir);
    let paths = write_scene_tiles(&scene, &dir, 4, 1.0, Compression::LazLite)?;
    println!("dataset: {} laz-lite tiles", paths.len());

    // --- the file-based solution -------------------------------------------
    let mut filestore = FileStore::open(&dir)?;
    let t0 = Instant::now();
    filestore.sort_files(Curve::Morton)?; // lassort
    filestore.build_indexes()?; // lasindex
    println!(
        "file-based ETL (lassort + lasindex): {:.2}s",
        t0.elapsed().as_secs_f64()
    );

    // --- the DBMS ------------------------------------------------------------
    let mut pc = PointCloud::new();
    let t0 = Instant::now();
    Loader::new(LoadMethod::Binary).load_files(&mut pc, &paths)?;
    println!("DBMS binary load: {:.2}s\n", t0.elapsed().as_secs_f64());

    // --- predefined query: points within a region ---------------------------
    let window = Envelope::new(300.0, 300.0, 520.0, 560.0)?;
    println!(
        "Q1: select all LIDAR points within ({}, {}) - ({}, {})",
        window.min_x, window.min_y, window.max_x, window.max_y
    );

    let t0 = Instant::now();
    let (file_hits, fstats) = filestore.query_bbox(&window)?;
    let t_file = t0.elapsed().as_secs_f64();
    println!(
        "  file-based: {} points in {:.4}s (headers pruned {}/{} files, {} records decoded)",
        file_hits.len(),
        t_file,
        fstats.files_total - fstats.files_matched,
        fstats.files_total,
        fstats.records_decoded
    );

    let pred = SpatialPredicate::Within(Geometry::Polygon(Polygon::rectangle(&window)));
    let t0 = Instant::now();
    let sel = pc.select(&pred)?;
    let t_db = t0.elapsed().as_secs_f64();
    println!(
        "  DBMS:       {} points in {:.4}s (imprints kept {} candidates of {})",
        sel.rows.len(),
        t_db,
        sel.explain.after_imprints,
        pc.num_points()
    );
    assert_eq!(file_hits.len(), sel.rows.len(), "engines must agree");

    // --- predefined query: roads intersecting a region ----------------------
    // The file-based solution has no road data at all — §2.2's point about
    // functionality: it answers queries over a single point-cloud source
    // only. The DBMS holds the OSM-like vectors next to the points.
    let catalog = scene_catalog(Arc::new(pc), &scene);
    let sql = format!(
        "SELECT id, name, class FROM roads WHERE \
         ST_Intersects(geom, ST_MakeEnvelope({}, {}, {}, {}))",
        window.min_x, window.min_y, window.max_x, window.max_y
    );
    println!("\nQ2: select all roads that intersect the region");
    println!("  file-based: NOT EXPRESSIBLE (single data source, no SQL)");
    let rs = lidardb::sql::query(&catalog, &sql)?;
    println!("  DBMS:");
    print!("{}", rs.render());

    // --- ad-hoc follow-up the demo audience can type ------------------------
    let sql = "SELECT class, COUNT(*) AS segments FROM roads GROUP BY class ORDER BY segments DESC";
    println!("\nQ3 (ad hoc): {sql}");
    print!("{}", lidardb::sql::query(&catalog, sql)?.render());
    Ok(())
}
