//! # lidardb — GIS navigation boosted by a column store
//!
//! A from-scratch Rust reproduction of *"GIS Navigation Boosted by Column
//! Stores"* (Alvanaki, Goncalves, Ivanova, Kersten, Kyzirakos — PVLDB
//! 8(12), VLDB 2015): a "spatially-enabled" columnar database for massive
//! LIDAR point clouds, where a lightweight cache-conscious secondary index
//! — **column imprints** — plus a regular-grid refinement step replaces
//! the traditional spatial index, over a plain flat 26-column table.
//!
//! The workspace crates, re-exported here:
//!
//! | crate | role |
//! |---|---|
//! | [`storage`] | typed columns, flat tables, scan kernels, RLE/FOR codecs, zonemaps |
//! | [`imprints`] | the column-imprints secondary index (SIGMOD'13) |
//! | [`geom`] | OGC Simple Features subset: types, WKT, predicates, grid classification |
//! | [`sfc`] | Morton + Hilbert space-filling curves |
//! | [`las`] | LAS subset + `laz-lite` compressed point-cloud files |
//! | [`datagen`] | seeded synthetic AHN2 / OSM / Urban Atlas stand-ins |
//! | [`core`] | the paper's system: flat table + lazy imprints + binary loader + two-step queries |
//! | [`baselines`] | LAStools-like file store and pgpointcloud-like block store |
//! | [`sql`] | SQL subset with OGC functions, spatial pushdown and spatial joins |
//! | [`viz`] | PPM/SVG renderer standing in for QGIS |
//!
//! ## Quickstart
//!
//! ```
//! use lidardb::prelude::*;
//! use std::sync::Arc;
//!
//! // Generate a small synthetic municipality and its LIDAR scan.
//! let scene = Scene::generate(SceneConfig { seed: 1, origin: (0.0, 0.0), extent_m: 300.0 });
//! let tiles = TileSet::generate(&scene, 2, 0.2);
//!
//! // Load the flat column store.
//! let mut pc = PointCloud::new();
//! for tile in tiles.tiles() {
//!     pc.append_records(&tile.records).unwrap();
//! }
//!
//! // Ask SQL for the building returns in a region.
//! let catalog = lidardb::scene_catalog(Arc::new(pc), &scene);
//! let rs = lidardb::sql::query(
//!     &catalog,
//!     "SELECT COUNT(*) FROM points WHERE \
//!      ST_Contains(ST_MakeEnvelope(0, 0, 300, 300), ST_Point(x, y)) \
//!      AND classification = 6",
//! ).unwrap();
//! assert_eq!(rs.rows.len(), 1);
//! ```

pub use lidardb_baselines as baselines;
pub use lidardb_core as core;
pub use lidardb_datagen as datagen;
pub use lidardb_geom as geom;
pub use lidardb_imprints as imprints;
pub use lidardb_las as las;
pub use lidardb_sfc as sfc;
pub use lidardb_sql as sql;
pub use lidardb_storage as storage;
pub use lidardb_viz as viz;

/// The names everything in this workspace is usually used with.
pub mod prelude {
    pub use lidardb_baselines::{BlockStore, FileStore};
    pub use lidardb_core::{
        Aggregate, CoreError, Durability, FaultInjector, FaultKind, FaultStage, FileOutcome,
        FileReport, LoadMethod, LoadPolicy, LoadReport, LoadStats, Loader, PointCloud,
        RefineStrategy, SpatialPredicate, TileOptions, TiledCloud,
    };
    pub use lidardb_datagen::{Scene, SceneConfig, Tile, TileSet};
    pub use lidardb_geom::{Envelope, Geometry, LineString, Point, Polygon};
    pub use lidardb_las::{Compression, LasHeader, PointRecord};
    pub use lidardb_sfc::Curve;
    pub use lidardb_sql::{Catalog, SqlValue, VectorTable};
}

use std::path::{Path, PathBuf};
use std::sync::Arc;

use lidardb_datagen::Scene;
use lidardb_geom::Geometry;
use lidardb_sql::catalog::VColumn;
use lidardb_sql::{Catalog, VectorTable};

/// Build the demo catalog for a scene: the point cloud as `points`, the
/// OSM-like features as `roads`, `rivers` and `pois`, and the Urban-Atlas-
/// like zones as `ua`.
pub fn scene_catalog(pc: Arc<lidardb_core::PointCloud>, scene: &Scene) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register_pointcloud("points", pc);

    let roads = VectorTable::new()
        .with_column(
            "id",
            VColumn::Int(scene.roads().iter().map(|r| r.id as i64).collect()),
        )
        .with_column(
            "name",
            VColumn::Str(scene.roads().iter().map(|r| r.name.clone()).collect()),
        )
        .with_column(
            "class",
            VColumn::Str(
                scene
                    .roads()
                    .iter()
                    .map(|r| r.class.tag().to_string())
                    .collect(),
            ),
        )
        .with_column(
            "geom",
            VColumn::Geom(
                scene
                    .roads()
                    .iter()
                    .map(|r| Geometry::LineString(r.geometry.clone()))
                    .collect(),
            ),
        );
    catalog.register_vector("roads", roads);

    let rivers = VectorTable::new()
        .with_column(
            "id",
            VColumn::Int(scene.rivers().iter().map(|r| r.id as i64).collect()),
        )
        .with_column(
            "name",
            VColumn::Str(scene.rivers().iter().map(|r| r.name.clone()).collect()),
        )
        .with_column(
            "geom",
            VColumn::Geom(
                scene
                    .rivers()
                    .iter()
                    .map(|r| Geometry::LineString(r.geometry.clone()))
                    .collect(),
            ),
        );
    catalog.register_vector("rivers", rivers);

    let pois = VectorTable::new()
        .with_column(
            "id",
            VColumn::Int(scene.pois().iter().map(|p| p.id as i64).collect()),
        )
        .with_column(
            "name",
            VColumn::Str(scene.pois().iter().map(|p| p.name.clone()).collect()),
        )
        .with_column(
            "amenity",
            VColumn::Str(scene.pois().iter().map(|p| p.amenity.clone()).collect()),
        )
        .with_column(
            "geom",
            VColumn::Geom(
                scene
                    .pois()
                    .iter()
                    .map(|p| Geometry::Point(p.location))
                    .collect(),
            ),
        );
    catalog.register_vector("pois", pois);

    let ua = VectorTable::new()
        .with_column(
            "id",
            VColumn::Int(scene.zones().iter().map(|z| z.id as i64).collect()),
        )
        .with_column(
            "code",
            VColumn::Int(scene.zones().iter().map(|z| z.class.code() as i64).collect()),
        )
        .with_column(
            "label",
            VColumn::Str(
                scene
                    .zones()
                    .iter()
                    .map(|z| z.class.label().to_string())
                    .collect(),
            ),
        )
        .with_column(
            "geom",
            VColumn::Geom(
                scene
                    .zones()
                    .iter()
                    .map(|z| Geometry::Polygon(z.polygon.clone()))
                    .collect(),
            ),
        );
    catalog.register_vector("ua", ua);

    catalog
}

/// Write the tiles of a scene into a directory as LAS / laz-lite files
/// (the synthetic AHN2 distribution). Returns the file paths in tile order.
pub fn write_scene_tiles(
    scene: &Scene,
    dir: impl AsRef<Path>,
    tiles_per_side: usize,
    density: f64,
    compression: lidardb_las::Compression,
) -> Result<Vec<PathBuf>, lidardb_las::LasError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let env = scene.envelope();
    let template = lidardb_las::LasHeader::builder()
        .scale(0.01, 0.01, 0.01)
        .offset(env.min_x, env.min_y, 0.0)
        .compression(compression)
        .build();
    let tiles = lidardb_datagen::TileSet::generate(scene, tiles_per_side, density);
    let ext = match compression {
        lidardb_las::Compression::None => "las",
        lidardb_las::Compression::LazLite => "lazl",
    };
    let mut paths = Vec::new();
    for tile in tiles.tiles() {
        let path = dir.join(format!("{}.{ext}", tile.name));
        lidardb_las::write_las_file(&path, template, &tile.records)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidardb_datagen::SceneConfig;

    #[test]
    fn scene_catalog_has_all_tables() {
        let scene = Scene::generate(SceneConfig {
            seed: 3,
            origin: (0.0, 0.0),
            extent_m: 500.0,
        });
        let catalog = scene_catalog(Arc::new(lidardb_core::PointCloud::new()), &scene);
        assert_eq!(
            catalog.table_names(),
            vec!["points", "pois", "rivers", "roads", "ua"]
        );
        let rs = lidardb_sql::query(&catalog, "SELECT COUNT(*) FROM roads").unwrap();
        assert!(matches!(rs.rows[0][0], lidardb_sql::SqlValue::Int(n) if n > 3));
        let rs = lidardb_sql::query(
            &catalog,
            "SELECT label FROM ua WHERE code = 12210 LIMIT 1",
        )
        .unwrap();
        assert!(rs.rows[0][0].render().contains("Fast transit"));
    }

    #[test]
    fn write_tiles_roundtrip() {
        let scene = Scene::generate(SceneConfig {
            seed: 4,
            origin: (0.0, 0.0),
            extent_m: 200.0,
        });
        let dir = std::env::temp_dir().join("lidardb_root_tiles");
        let _ = std::fs::remove_dir_all(&dir);
        let paths =
            write_scene_tiles(&scene, &dir, 2, 0.3, lidardb_las::Compression::LazLite).unwrap();
        assert_eq!(paths.len(), 4);
        let (_, recs) = lidardb_las::read_las_file(&paths[0]).unwrap();
        assert!(!recs.is_empty());
    }
}
