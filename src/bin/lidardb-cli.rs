//! `lidardb-cli` — the interactive demo session.
//!
//! The paper's demonstration lets the audience type "pre-defined queries
//! or user defined queries" against the spatially-enabled column store
//! (§1, §4.2). This binary is that session: it generates (or loads) a
//! synthetic municipality, registers the point cloud and the vector
//! layers, and drops into a SQL REPL with `EXPLAIN` and per-operator
//! timings.
//!
//! ```text
//! cargo run --release --bin lidardb-cli                  # default 1 km² scene
//! cargo run --release --bin lidardb-cli -- --extent 2000 --density 2 --seed 7
//! echo "SELECT COUNT(*) FROM points" | cargo run --release --bin lidardb-cli
//! ```

use std::io::{BufRead, Write};
use std::sync::Arc;

use lidardb::prelude::*;
use lidardb::scene_catalog;

struct Opts {
    seed: u64,
    extent: f64,
    density: f64,
    quiet: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        seed: 2015,
        extent: 1000.0,
        density: 1.0,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> Result<f64, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<f64>()
                .map_err(|e| format!("bad value for {name}: {e}"))
        };
        match a.as_str() {
            "--seed" => opts.seed = num("--seed")? as u64,
            "--extent" => opts.extent = num("--extent")?,
            "--density" => opts.density = num("--density")?,
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => {
                println!(
                    "lidardb-cli — interactive SQL over a synthetic LIDAR scene\n\
                     options: --seed N  --extent METRES  --density PTS_PER_M2  --quiet\n\
                     REPL commands: \\tables  \\help  \\quit"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.extent.is_nan() || opts.extent <= 0.0 || opts.density.is_nan() || opts.density <= 0.0 {
        return Err("--extent and --density must be positive".into());
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let scene = Scene::generate(SceneConfig {
        seed: opts.seed,
        origin: (120_000.0, 480_000.0),
        extent_m: opts.extent,
    });
    let tiles_per_side = ((opts.extent / 250.0).round() as usize).clamp(1, 16);
    let tiles = TileSet::generate(&scene, tiles_per_side, opts.density);
    let mut pc = PointCloud::new();
    for tile in tiles.tiles() {
        pc.append_records(&tile.records).expect("append tile");
    }
    let env = *scene.envelope();
    let catalog = scene_catalog(Arc::new(pc), &scene);
    if !opts.quiet {
        println!(
            "lidardb demo session — {} points over {:.0} m x {:.0} m at ({}, {})",
            tiles.num_points(),
            env.width(),
            env.height(),
            env.min_x,
            env.min_y
        );
        println!("tables: points (26 cols), roads, rivers, pois, ua");
        println!("try:    SELECT classification, COUNT(*) FROM points GROUP BY classification");
        println!("        EXPLAIN SELECT ... ;  \\tables ;  \\quit\n");
    }

    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    let mut buf = String::new();
    loop {
        if interactive {
            print!("lidardb> ");
            std::io::stdout().flush().ok();
        }
        buf.clear();
        match stdin.lock().read_line(&mut buf) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = buf.trim().trim_end_matches(';').trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "\\quit" | "\\q" | "exit" | "quit" => break,
            "\\tables" => {
                for t in catalog.table_names() {
                    let cols = catalog.columns_of(t).unwrap_or_default();
                    println!("{t} ({} columns): {}", cols.len(), cols.join(", "));
                }
                continue;
            }
            "\\help" => {
                println!(
                    "SELECT [EXPLAIN] ... FROM points|roads|rivers|pois|ua \
                     [WHERE ...] [GROUP BY ...] [ORDER BY ...] [LIMIT n]\n\
                     functions: ST_Point ST_MakeEnvelope ST_GeomFromText ST_Contains \
                     ST_Within ST_Intersects ST_DWithin ST_Distance ST_X ST_Y ST_Area ST_Length"
                );
                continue;
            }
            _ => {}
        }
        match lidardb::sql::query(&catalog, line) {
            Ok(rs) => {
                print!("{}", rs.render());
                if !rs.trace.is_empty() {
                    print!("{}", rs.render_trace());
                }
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

/// Minimal tty check without a dependency: assume non-interactive when
/// stdin is redirected (heuristic via env; piped runs set no prompt).
fn atty_stdin() -> bool {
    // On Linux, /proc/self/fd/0 points at a tty device when interactive.
    std::fs::read_link("/proc/self/fd/0")
        .map(|p| p.to_string_lossy().contains("/dev/pts") || p.to_string_lossy().contains("tty"))
        .unwrap_or(false)
}
