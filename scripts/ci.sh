#!/usr/bin/env bash
# The full local CI gate: release build, workspace tests, strict lints.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> serial/parallel differential suite (default, 2 and 8 workers)"
cargo test -q -p lidardb-core --test differential -- --test-threads=1
LIDARDB_WORKERS=2 cargo test -q -p lidardb-core --test differential -- --test-threads=1
LIDARDB_WORKERS=8 cargo test -q -p lidardb-core --test differential -- --test-threads=1

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> ci OK"
