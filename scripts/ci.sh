#!/usr/bin/env bash
# The full local CI gate: release build, workspace tests, strict lints.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> ci OK"
