#!/usr/bin/env bash
# The full local CI gate: release build, workspace tests, strict lints.
set -euo pipefail
cd "$(dirname "$0")/.."
REPO="$PWD"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> serial/parallel differential suite (default, 2 and 8 workers; incl. Cancel/Stall faults)"
cargo test -q -p lidardb-core --test differential -- --test-threads=1
LIDARDB_WORKERS=2 cargo test -q -p lidardb-core --test differential -- --test-threads=1
LIDARDB_WORKERS=8 cargo test -q -p lidardb-core --test differential -- --test-threads=1

echo "==> governance suite (admission, cancellation, slow-log storm) debug + release"
cargo test -q -p lidardb-core --test governance -- --test-threads=1
cargo test -q --release -p lidardb-core --test governance -- --test-threads=1

echo "==> metrics smoke (snapshot JSON parses, stage timers within wall-clock)"
cargo test -q -p lidardb-core --test metrics_smoke -- --test-threads=1
# Debug atomics can hide lost-update bugs behind slow interleavings; run
# the concurrency-exactness checks under release codegen too.
cargo test -q --release -p lidardb-core --test metrics_smoke -- --test-threads=1

echo "==> trace smoke (chrome JSON shape, per-cloud toggle, slow-query log)"
cargo test -q -p lidardb-core --test trace_smoke -- --test-threads=1
cargo test -q --release -p lidardb-core --test trace_smoke -- --test-threads=1

echo "==> core builds with tracing compiled out"
cargo check -q -p lidardb-core --no-default-features

echo "==> decoder-hardening and observability regression tests"
cargo test -q -p lidardb-storage huge_declared_counts_are_rejected_without_allocating
cargo test -q -p lidardb-las absurd_point_count_rejected_without_overflow
cargo test -q -p lidardb-core forged_manifest_row_count_rejected_without_overflow
cargo test -q -p lidardb-core to_table_renders_every_explain_field
cargo test -q -p lidardb-sql explain_analyze
cargo test -q -p lidardb-core --test differential differential_span_trees_serial_vs_parallel
cargo test -q -p lidardb-sql set_trace_session_records_spans_and_shows_slow_queries

echo "==> governance regression tests (typed cancellation, SQL session knobs)"
cargo test -q -p lidardb-core --lib review_regressions
cargo test -q -p lidardb-sql session_governance_statements
cargo test -q -p lidardb-sql cancelled_queries_render_in_show_slow_queries

echo "==> WAL crash-recovery torture suite (fault-injected, debug + release)"
cargo test -q -p lidardb-core --test recovery_torture -- --test-threads=1
cargo test -q --release -p lidardb-core --test recovery_torture -- --test-threads=1

echo "==> WAL property tests (arbitrary tail truncation, single-bit corruption)"
cargo test -q -p lidardb-core --test wal_properties -- --test-threads=1

echo "==> streaming-ingest regression tests (mid-ingest snapshot, SQL INSERT/SHOW RECOVERY)"
cargo test -q -p lidardb-core --test differential differential_mid_ingest_snapshot
cargo test -q -p lidardb-sql insert_is_wal_logged_and_queryable
cargo test -q -p lidardb-sql group_commit_inserts_stay_invisible_until_flushed
cargo test -q -p lidardb-sql show_recovery_reports_the_stream_state

echo "==> tiled out-of-core suite (zone-map prune, LRU residency, flat-v2 fallback)"
cargo test -q -p lidardb-core --test tiles -- --test-threads=1
cargo test -q -p lidardb-sql --test tiled

echo "==> snapshot-watermark regression suite (ghost rows invisible on every query path)"
cargo test -q -p lidardb-core --test snapshot_watermark -- --test-threads=1

echo "==> hostile-input panic sweep (parser/executor fuzz regressions)"
cargo test -q -p lidardb-sql --test hostile_inputs

echo "==> wire-protocol suites (frame proptests, loopback integration, disconnect durability)"
cargo test -q -p lidardb-server --lib
cargo test -q -p lidardb-server --test frame_properties
cargo test -q -p lidardb-server --test loopback -- --test-threads=1
cargo test -q -p lidardb-server --test disconnect_durability -- --test-threads=1

echo "==> introspection plane: flight recorder (seqlock ring, delta decode) debug + release"
cargo test -q -p lidardb-core recorder
cargo test -q --release -p lidardb-core recorder

echo "==> introspection plane: sys.* virtual tables (unit + end-to-end SELECTs)"
cargo test -q -p lidardb-sql sys

echo "==> introspection plane: Prometheus exposition (validator, proptests, scrape, healthz)"
cargo test -q -p lidardb-server --test exposition -- --test-threads=1
cargo test -q --release -p lidardb-server --test exposition -- --test-threads=1

echo "==> morsel-split and gate-hardening regression tests"
cargo test -q -p lidardb-imprints split_rows_degenerate_inputs_yield_no_empty_morsels
cargo test -q -p lidardb-core --test differential differential_degenerate_candidate_sets
cargo test -q -p lidardb-bench negative_p50_in_baseline_is_a_typed_error
cargo test -q -p lidardb-bench nan_and_infinite_p50s_are_typed_errors
cargo test -q -p lidardb-bench fresh_extra_cell_is_a_regression

echo "==> E13 out-of-core smoke (reduced scale; asserts row parity + residency budget)"
E13_SCRATCH="$(mktemp -d)"
(cd "$E13_SCRATCH" && LIDARDB_E13_POINTS=500000 cargo run --release --quiet \
    --manifest-path "$REPO/Cargo.toml" -p lidardb-bench --bin harness -- e13)
rm -rf "$E13_SCRATCH"

echo "==> tiles gate (identity: committed baseline vs itself must pass)"
BENCH_GATE_KIND=tiles BENCH_GATE_FRESH=BENCH_tiles.json scripts/bench_gate.sh

echo "==> tiles gate (negative: a 2x degradation must fail)"
SLOWED_TILES="$(mktemp)"
cargo run --release --quiet -p lidardb-bench --bin bench_gate -- \
    --kind tiles --base BENCH_tiles.json --scale 2.0 --out "$SLOWED_TILES"
if BENCH_GATE_KIND=tiles BENCH_GATE_FRESH="$SLOWED_TILES" scripts/bench_gate.sh; then
    echo "ci FAIL: tiles gate accepted a 2x degradation" >&2
    rm -f "$SLOWED_TILES"
    exit 1
else
    echo "gate correctly rejected the degraded tiled run"
fi
rm -f "$SLOWED_TILES"

echo "==> E11 server smoke (reduced scale; asserts typed outcomes + flat-memory streaming)"
E11_SCRATCH="$(mktemp -d)"
(cd "$E11_SCRATCH" && LIDARDB_E11_POINTS=200000 LIDARDB_E11_CLIENTS=16 \
    cargo run --release --quiet \
    --manifest-path "$REPO/Cargo.toml" -p lidardb-bench --bin harness -- e11)
rm -rf "$E11_SCRATCH"

echo "==> server gate (identity: committed baseline vs itself must pass)"
BENCH_GATE_KIND=server BENCH_GATE_FRESH=BENCH_server.json scripts/bench_gate.sh

echo "==> server gate (negative: a 2x degradation must fail)"
SLOWED_SERVER="$(mktemp)"
cargo run --release --quiet -p lidardb-bench --bin bench_gate -- \
    --kind server --base BENCH_server.json --scale 2.0 --out "$SLOWED_SERVER"
if BENCH_GATE_KIND=server BENCH_GATE_FRESH="$SLOWED_SERVER" scripts/bench_gate.sh; then
    echo "ci FAIL: server gate accepted a 2x degradation" >&2
    rm -f "$SLOWED_SERVER"
    exit 1
else
    echo "gate correctly rejected the degraded server run"
fi
rm -f "$SLOWED_SERVER"

echo "==> E14 observability smoke (reduced scale; asserts shed-free burst + live scrapes)"
E14_SCRATCH="$(mktemp -d)"
(cd "$E14_SCRATCH" && LIDARDB_E14_POINTS=200000 LIDARDB_E14_CLIENTS=16 \
    cargo run --release --quiet \
    --manifest-path "$REPO/Cargo.toml" -p lidardb-bench --bin harness -- e14)
rm -rf "$E14_SCRATCH"

echo "==> obs gate (identity: committed baseline vs itself must pass)"
BENCH_GATE_KIND=obs BENCH_GATE_FRESH=BENCH_obs.json scripts/bench_gate.sh

echo "==> obs gate (negative: a 2x-degraded recorder must fail)"
SLOWED_OBS="$(mktemp)"
cargo run --release --quiet -p lidardb-bench --bin bench_gate -- \
    --kind obs --base BENCH_obs.json --scale 2.0 --out "$SLOWED_OBS"
if BENCH_GATE_KIND=obs BENCH_GATE_FRESH="$SLOWED_OBS" scripts/bench_gate.sh; then
    echo "ci FAIL: obs gate accepted a 2x-degraded recorder run" >&2
    rm -f "$SLOWED_OBS"
    exit 1
else
    echo "gate correctly rejected the degraded observability run"
fi
rm -f "$SLOWED_OBS"

echo "==> fault-domain suites (graceful drain, retrying client, idempotency, disk-full)"
cargo test -q -p lidardb-server --test drain -- --test-threads=1
cargo test -q -p lidardb-core --test idempotency_ledger -- --test-threads=1
cargo test -q -p lidardb-core --test disk_full -- --test-threads=1

echo "==> E15 chaos smoke (reduced scale; asserts exactly-once through proxy + drains + disk-full)"
E15_SCRATCH="$(mktemp -d)"
(cd "$E15_SCRATCH" && LIDARDB_E15_CLIENTS=2 LIDARDB_E15_BATCHES=12 LIDARDB_E15_CYCLES=3 \
    cargo run --release --quiet \
    --manifest-path "$REPO/Cargo.toml" -p lidardb-bench --bin harness -- e15)
rm -rf "$E15_SCRATCH"

echo "==> chaos gate (identity: committed baseline vs itself must pass)"
BENCH_GATE_KIND=chaos BENCH_GATE_FRESH=BENCH_chaos.json scripts/bench_gate.sh

echo "==> chaos gate (negative: injected loss + 2x latency must fail)"
SLOWED_CHAOS="$(mktemp)"
cargo run --release --quiet -p lidardb-bench --bin bench_gate -- \
    --kind chaos --base BENCH_chaos.json --scale 2.0 --out "$SLOWED_CHAOS"
if BENCH_GATE_KIND=chaos BENCH_GATE_FRESH="$SLOWED_CHAOS" scripts/bench_gate.sh; then
    echo "ci FAIL: chaos gate accepted lost/duplicated inserts" >&2
    rm -f "$SLOWED_CHAOS"
    exit 1
else
    echo "gate correctly rejected the lossy chaos run"
fi
rm -f "$SLOWED_CHAOS"

echo "==> E12 ingest smoke (reduced scale; asserts snapshot isolation + recovery)"
E12_SCRATCH="$(mktemp -d)"
(cd "$E12_SCRATCH" && LIDARDB_E12_POINTS=30000 cargo run --release --quiet \
    --manifest-path "$REPO/Cargo.toml" -p lidardb-bench --bin harness -- e12)
rm -rf "$E12_SCRATCH"

echo "==> ingest gate (identity: committed baseline vs itself must pass)"
BENCH_GATE_KIND=ingest BENCH_GATE_FRESH=BENCH_ingest.json scripts/bench_gate.sh

echo "==> ingest gate (negative: a 2x degradation must fail)"
SLOWED_INGEST="$(mktemp)"
cargo run --release --quiet -p lidardb-bench --bin bench_gate -- \
    --kind ingest --base BENCH_ingest.json --scale 2.0 --out "$SLOWED_INGEST"
if BENCH_GATE_KIND=ingest BENCH_GATE_FRESH="$SLOWED_INGEST" scripts/bench_gate.sh; then
    echo "ci FAIL: ingest gate accepted a 2x degradation" >&2
    rm -f "$SLOWED_INGEST"
    exit 1
else
    echo "gate correctly rejected the degraded ingest run"
fi
rm -f "$SLOWED_INGEST"

echo "==> perf-regression gate (identity: committed baseline vs itself must pass)"
BENCH_GATE_FRESH=BENCH_query.json scripts/bench_gate.sh

echo "==> perf-regression gate (negative: a 2x slowdown must fail)"
SLOWED="$(mktemp)"
trap 'rm -f "$SLOWED"' EXIT
cargo run --release --quiet -p lidardb-bench --bin bench_gate -- \
    --base BENCH_query.json --scale 2.0 --out "$SLOWED"
if BENCH_GATE_FRESH="$SLOWED" scripts/bench_gate.sh; then
    echo "ci FAIL: bench gate accepted a 2x slowdown" >&2
    exit 1
else
    echo "gate correctly rejected the slowed run"
fi

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> ci OK"
