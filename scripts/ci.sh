#!/usr/bin/env bash
# The full local CI gate: release build, workspace tests, strict lints.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> serial/parallel differential suite (default, 2 and 8 workers)"
cargo test -q -p lidardb-core --test differential -- --test-threads=1
LIDARDB_WORKERS=2 cargo test -q -p lidardb-core --test differential -- --test-threads=1
LIDARDB_WORKERS=8 cargo test -q -p lidardb-core --test differential -- --test-threads=1

echo "==> metrics smoke (snapshot JSON parses, stage timers within wall-clock)"
cargo test -q -p lidardb-core --test metrics_smoke -- --test-threads=1

echo "==> decoder-hardening and observability regression tests"
cargo test -q -p lidardb-storage huge_declared_counts_are_rejected_without_allocating
cargo test -q -p lidardb-las absurd_point_count_rejected_without_overflow
cargo test -q -p lidardb-core forged_manifest_row_count_rejected_without_overflow
cargo test -q -p lidardb-core to_table_renders_every_explain_field
cargo test -q -p lidardb-sql explain_analyze

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> ci OK"
