#!/usr/bin/env bash
# Perf-regression gate: diff a fresh harness run against the committed
# baseline; non-zero exit on >25% regression (see crates/bench/src/gate.rs).
#
#   BENCH_GATE_KIND=query  (default) gates E9 query p50s vs BENCH_query.json
#   BENCH_GATE_KIND=ingest gates E12 ingest throughput + recovery time vs
#                          BENCH_ingest.json
#   BENCH_GATE_KIND=tiles  gates E13 flat-vs-tiled query p50s vs
#                          BENCH_tiles.json (same shape as the query gate)
#   BENCH_GATE_KIND=server gates E11 wire-protocol latency percentiles +
#                          streamed-delivery throughput vs BENCH_server.json
#   BENCH_GATE_KIND=obs    gates E14 flight-recorder overhead (absolute 5%
#                          p99 ceiling + relative percentiles) vs
#                          BENCH_obs.json
#   BENCH_GATE_KIND=chaos  gates E15 chaos-soak integrity (lost/duplicate
#                          inserts at absolute zero) + insert latency vs
#                          BENCH_chaos.json
#
# Usage:
#   scripts/bench_gate.sh                  # full run: rebuild, run harness, diff
#   BENCH_GATE_FRESH=path scripts/bench_gate.sh
#                                          # diff an existing results file
#                                          # (CI uses this to avoid the
#                                          # multi-minute full-scale run)
set -euo pipefail
cd "$(dirname "$0")/.."
REPO="$PWD"
KIND="${BENCH_GATE_KIND:-query}"
case "$KIND" in
    query)  EXPERIMENT=e9;  ARTIFACT=BENCH_query.json ;;
    ingest) EXPERIMENT=e12; ARTIFACT=BENCH_ingest.json ;;
    tiles)  EXPERIMENT=e13; ARTIFACT=BENCH_tiles.json ;;
    server) EXPERIMENT=e11; ARTIFACT=BENCH_server.json ;;
    obs)    EXPERIMENT=e14; ARTIFACT=BENCH_obs.json ;;
    chaos)  EXPERIMENT=e15; ARTIFACT=BENCH_chaos.json ;;
    *) echo "bench_gate.sh: BENCH_GATE_KIND must be query, ingest, tiles, server, obs, or chaos" >&2; exit 2 ;;
esac
BASE="${BENCH_GATE_BASE:-$REPO/$ARTIFACT}"

FRESH="${BENCH_GATE_FRESH:-}"
if [ -z "$FRESH" ]; then
    # Run the harness in a scratch cwd so its BENCH_*.json artifacts don't
    # clobber the committed baselines.
    SCRATCH="$(mktemp -d)"
    trap 'rm -rf "$SCRATCH"' EXIT
    echo "bench_gate.sh: running fresh $EXPERIMENT harness (this may take a few minutes)..."
    (cd "$SCRATCH" && cargo run --release --quiet \
        --manifest-path "$REPO/Cargo.toml" -p lidardb-bench --bin harness -- "$EXPERIMENT")
    FRESH="$SCRATCH/$ARTIFACT"
fi

exec cargo run --release --quiet --manifest-path "$REPO/Cargo.toml" \
    -p lidardb-bench --bin bench_gate -- --kind "$KIND" --base "$BASE" --fresh "$FRESH"
