#!/usr/bin/env bash
# Perf-regression gate: diff a fresh E9 harness run against the committed
# BENCH_query.json baseline; non-zero exit on >25% regression in any
# stage's p50 (see crates/bench/src/gate.rs).
#
# Usage:
#   scripts/bench_gate.sh                  # full run: rebuild, run E9, diff
#   BENCH_GATE_FRESH=path scripts/bench_gate.sh
#                                          # diff an existing results file
#                                          # (CI uses this to avoid the
#                                          # multi-minute 12M-point run)
set -euo pipefail
cd "$(dirname "$0")/.."
REPO="$PWD"
BASE="${BENCH_GATE_BASE:-$REPO/BENCH_query.json}"

FRESH="${BENCH_GATE_FRESH:-}"
if [ -z "$FRESH" ]; then
    # Run harness E9 in a scratch cwd so its BENCH_*.json / BENCH_trace.json
    # artifacts don't clobber the committed baselines.
    SCRATCH="$(mktemp -d)"
    trap 'rm -rf "$SCRATCH"' EXIT
    echo "bench_gate.sh: running fresh E9 harness (this takes a few minutes)..."
    (cd "$SCRATCH" && cargo run --release --quiet \
        --manifest-path "$REPO/Cargo.toml" -p lidardb-bench --bin harness -- e9)
    FRESH="$SCRATCH/BENCH_query.json"
fi

exec cargo run --release --quiet --manifest-path "$REPO/Cargo.toml" \
    -p lidardb-bench --bin bench_gate -- --base "$BASE" --fresh "$FRESH"
